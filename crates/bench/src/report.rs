//! The performance-report harness behind `gnn-bench report`.
//!
//! Runs a canonical slice of the study — the six representative sweep
//! cells plus the serve policy sweep and the fleet routing-policy sweep
//! under the canonical fleet chaos plan — and distills each run into the
//! numbers the regression observatory tracks: per-cell epoch time with its
//! kernel/transfer/idle split and roofline utilization, per-policy serve
//! latency percentiles with SLO attainment, and per-routing-policy fleet
//! resilience counters (sheds, retries, hedges, failover latency). The
//! result serializes to
//! a schema-versioned JSON document (`BENCH_<n>.json` at the repo root)
//! whose every number is *simulated* — no wall-clock anywhere — so a rerun
//! with the same config reproduces the file byte-for-byte. CI runs the
//! report twice and `cmp`s the outputs.
//!
//! [`diff_reports`] compares two documents metric by metric with a
//! configurable regression threshold: time-like metrics regress when they
//! grow past `previous * (1 + threshold)`, attainment-like metrics when
//! they shrink past `previous * (1 - threshold)`.

use std::path::PathBuf;
use std::rc::Rc;

use gnn_datasets::{stratified_kfold, CitationSpec, SuperpixelSpec, TudSpec};
use gnn_faults::FaultPlan;
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{build, graph_hparams, node_hparams, FrameworkKind};
use gnn_obs::{json, Value};
use gnn_sample::RmatGraph;
use gnn_serve::{
    default_endpoints, sample_dataset, BatchPolicy, CellId, FleetConfig, RoutingPolicy,
    ServeConfig, TaskKind,
};
use gnn_train::{
    run_graph_fold, run_node_task, run_sampled_task, GraphTaskConfig, NodeOutcome, NodeTaskConfig,
    SampledTaskConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema tag every report document carries; bumped on breaking change.
/// `v2` added the `fleet` section (per-routing-policy resilience rows);
/// `v3` added the `sample` section (per-sampled-cell training rows with
/// feature-cache hit rates).
pub const REPORT_SCHEMA: &str = "gnn-bench-report/v3";

/// What one report run covers.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Cells to train (the representative six by default).
    pub cells: Vec<CellId>,
    /// Sampled cells to train (`sample/<spec>-<sampler>/...`); reported
    /// in the `sample` section and served alongside `cells` in the serve
    /// policy sweep.
    pub sample_cells: Vec<CellId>,
    /// Dataset scale factor.
    pub scale: f64,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Generation / workload seed.
    pub seed: u64,
    /// Serve batching policies to sweep.
    pub policies: Vec<BatchPolicy>,
    /// Requests per serve policy run.
    pub requests: usize,
    /// Serve arrival rate, requests per simulated second.
    pub rate: f64,
    /// SLO latency target in simulated seconds.
    pub slo_target: f64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            cells: default_endpoints(),
            sample_cells: default_sample_cells(),
            scale: 0.05,
            epochs: 2,
            seed: 0,
            policies: vec![
                BatchPolicy {
                    max_batch: 1,
                    max_delay: 0.0,
                },
                BatchPolicy {
                    max_batch: 4,
                    max_delay: 0.001,
                },
                BatchPolicy {
                    max_batch: 8,
                    max_delay: 0.002,
                },
            ],
            requests: 120,
            rate: 2000.0,
            slo_target: 0.005,
        }
    }
}

/// The sampled cells the report trains by default: the CI-speed RMAT
/// spec under both sampler kinds and both frameworks, so the report
/// tracks each framework's sampling/gather tax separately.
pub fn default_sample_cells() -> Vec<CellId> {
    [
        "sample/rmat-4k-neighbor/SAGE/PyG",
        "sample/rmat-4k-layerwise/SAGE/PyG",
        "sample/rmat-4k-neighbor/SAGE/DGL",
        "sample/rmat-4k-layerwise/SAGE/DGL",
    ]
    .iter()
    .map(|p| CellId::parse(p).expect("default sample cells are valid"))
    .collect()
}

/// One trained cell's distilled performance numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell path, e.g. `table4/Cora/GCN/PyG`.
    pub cell: String,
    /// Mean simulated seconds per epoch.
    pub epoch_time: f64,
    /// Total simulated training seconds.
    pub total_time: f64,
    /// Device time in non-transfer kernels.
    pub kernel_time: f64,
    /// Device time in transfer kernels.
    pub transfer_time: f64,
    /// Simulated time the device sat idle.
    pub idle_time: f64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Total DRAM traffic in bytes.
    pub bytes: u64,
    /// Run-wide arithmetic intensity, FLOPs per byte.
    pub arithmetic_intensity: f64,
    /// Fraction of the nearer roofline ceiling sustained while busy.
    pub roofline_utilization: f64,
    /// Busy / elapsed device utilization.
    pub utilization: f64,
}

/// One serve policy's distilled latency numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePolicyReport {
    /// Policy label, e.g. `b8/d2000us`.
    pub policy: String,
    /// Median enqueue-to-reply latency, simulated seconds.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Served requests per simulated second.
    pub throughput: f64,
    /// Fraction of submitted requests answered within the SLO target.
    pub slo_attainment: f64,
    /// Requests served.
    pub served: usize,
    /// Requests rejected.
    pub rejected: usize,
}

/// One fleet routing policy's distilled resilience numbers, measured
/// under the canonical fleet chaos plan (shard blackout + network
/// straggler + the chaos suite).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPolicyReport {
    /// Routing label, `consistent-hash` or `least-loaded`.
    pub routing: String,
    /// Median enqueue-to-reply latency, simulated seconds.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Served requests per simulated second.
    pub throughput: f64,
    /// Fraction of submitted requests answered within the SLO target.
    pub slo_attainment: f64,
    /// Requests answered.
    pub answered: usize,
    /// Requests shed by admission control or ejection drains.
    pub shed: usize,
    /// Failover retries spent from the token bucket.
    pub retries: usize,
    /// Hedge twins dispatched.
    pub hedges: usize,
    /// 99th-percentile failover latency (seconds), 0 when nothing failed
    /// over.
    pub failover_p99: f64,
}

/// One sampled cell's distilled training numbers (`v3`'s `sample`
/// section): besides the time split, the feature-cache hit rate — the
/// number that decides whether giant-graph training is gather-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCellReport {
    /// Cell path, e.g. `sample/rmat-4k-neighbor/SAGE/PyG`.
    pub cell: String,
    /// Mean simulated seconds per epoch.
    pub epoch_time: f64,
    /// Total simulated training seconds.
    pub total_time: f64,
    /// Device time in non-transfer kernels.
    pub kernel_time: f64,
    /// Device time in transfer kernels (the gather/upload tax).
    pub transfer_time: f64,
    /// End-of-run feature-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Test accuracy at the best-validation epoch, in percent.
    pub test_acc: f64,
}

/// The full report document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Config echo: scale, epochs, seed, requests, rate, SLO target.
    pub config: Vec<(String, f64)>,
    /// One entry per trained cell, in config order.
    pub cells: Vec<CellReport>,
    /// One entry per sampled cell, in config order (`v3`).
    pub sample: Vec<SampleCellReport>,
    /// One entry per serve policy, in config order.
    pub serve: Vec<ServePolicyReport>,
    /// One entry per fleet routing policy, under the canonical fleet
    /// chaos plan.
    pub fleet: Vec<FleetPolicyReport>,
}

/// Trains one cell and returns `(epoch_time, total_time, device_report)`.
/// Shared between the report harness and the causal what-if profiler
/// (`crate::whatif`), which needs the raw device report for roofline
/// attribution and runs under an observability collector to capture the
/// device schedule.
pub(crate) fn train_cell(
    cell: &CellId,
    scale: f64,
    epochs: usize,
    seed: u64,
) -> (f64, f64, gnn_device::DeviceReport) {
    match cell.task {
        TaskKind::Node => {
            let spec = match cell.dataset.as_str() {
                "Cora" => CitationSpec::cora(),
                "PubMed" => CitationSpec::pubmed(),
                other => panic!("unknown node dataset {other}"),
            };
            let ds = spec.scaled(scale).generate(seed);
            let task = NodeTaskConfig {
                max_epochs: epochs,
                lr: node_hparams(cell.model).lr,
            };
            let f = ds.features.cols();
            let c = ds.num_classes;
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let out = match cell.framework {
                FrameworkKind::RustyG => {
                    let stack = build::node_model_rustyg(cell.model, f, c, &mut rng);
                    let batch = rustyg::loader::full_graph_batch(&ds);
                    run_node_task(&stack, &batch, &ds, &task)
                }
                FrameworkKind::Rgl => {
                    let stack = build::node_model_rgl(cell.model, f, c, &mut rng);
                    let batch = rgl::loader::full_graph_batch(&ds);
                    run_node_task(&stack, &batch, &ds, &task)
                }
            };
            (out.epoch_time, out.total_time, out.report)
        }
        TaskKind::Graph => {
            let ds = match cell.dataset.as_str() {
                "ENZYMES" => TudSpec::enzymes().scaled(scale).generate(seed),
                "DD" => TudSpec::dd().scaled(scale).generate(seed),
                "MNIST" => SuperpixelSpec::mnist()
                    .scaled((scale * 0.1).min(1.0))
                    .generate(seed),
                other => panic!("unknown graph dataset {other}"),
            };
            let folds = stratified_kfold(&ds.labels(), 10, seed);
            let fold = &folds[0];
            let mut task = GraphTaskConfig::from_hparams(&graph_hparams(cell.model), epochs, seed);
            task.batch_size = task.batch_size.min((fold.train.len() / 3).max(8));
            let f = ds.feature_dim;
            let c = ds.num_classes;
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let out = match cell.framework {
                FrameworkKind::RustyG => {
                    let stack = build::graph_model_rustyg(cell.model, f, c, &mut rng);
                    let loader = RustygLoader::new(&ds);
                    run_graph_fold(&stack, &loader, fold, &task)
                }
                FrameworkKind::Rgl => {
                    let stack = build::graph_model_rgl(cell.model, f, c, &mut rng);
                    let loader = RglLoader::new(&ds);
                    run_graph_fold(&stack, &loader, fold, &task)
                }
            };
            (out.epoch_time, out.total_time, out.report)
        }
        TaskKind::Sample => {
            let (out, _) = train_sample_cell(cell, epochs, seed);
            (out.epoch_time, out.total_time, out.report)
        }
    }
}

/// Trains one sampled cell with the sweep's conventions (pool salts,
/// arch seed `seed + 1`, pools sized in batches) and returns the outcome
/// plus the loader's end-of-run feature-cache hit rate.
pub(crate) fn train_sample_cell(cell: &CellId, epochs: usize, seed: u64) -> (NodeOutcome, f64) {
    let (spec, kind) = sample_dataset(&cell.dataset)
        .unwrap_or_else(|| panic!("unknown sample dataset {}", cell.dataset));
    let graph = Rc::new(RmatGraph::generate(spec.rmat).expect("catalog specs generate cleanly"));
    let task = SampledTaskConfig {
        max_epochs: epochs,
        lr: node_hparams(cell.model).lr,
        batch_seeds: spec.batch_seeds,
        train_seeds: spec.batch_seeds * 4,
        eval_seeds: spec.batch_seeds,
        seed,
    };
    let f = spec.rmat.feature_dim;
    let c = spec.rmat.num_classes;
    let mut rng = StdRng::seed_from_u64(seed + 1);
    match cell.framework {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(cell.model, f, c, &mut rng);
            let loader = rustyg::sampled::SampledLoader::new(graph, &spec, kind)
                .expect("catalog specs validate");
            let out = run_sampled_task(&stack, &loader, &task);
            let hit = loader.cache_hit_rate();
            (out, hit)
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(cell.model, f, c, &mut rng);
            let loader = rgl::sampled::SampledLoader::new(graph, &spec, kind)
                .expect("catalog specs validate");
            let out = run_sampled_task(&stack, &loader, &task);
            let hit = loader.cache_hit_rate();
            (out, hit)
        }
    }
}

fn run_sample_cell(cell: &CellId, cfg: &ReportConfig) -> SampleCellReport {
    let (out, cache_hit_rate) = train_sample_cell(cell, cfg.epochs, cfg.seed);
    SampleCellReport {
        cell: cell.path(),
        epoch_time: out.epoch_time,
        total_time: out.total_time,
        kernel_time: out.report.kernel_exec_time(),
        transfer_time: out.report.transfer_time(),
        cache_hit_rate,
        test_acc: out.test_acc,
    }
}

fn run_cell(cell: &CellId, cfg: &ReportConfig) -> CellReport {
    let (epoch_time, total_time, dev) = train_cell(cell, cfg.scale, cfg.epochs, cfg.seed);
    CellReport {
        cell: cell.path(),
        epoch_time,
        total_time,
        kernel_time: dev.kernel_exec_time(),
        transfer_time: dev.transfer_time(),
        idle_time: dev.idle_time(),
        flops: dev.total_flops,
        bytes: dev.total_bytes,
        arithmetic_intensity: dev.arithmetic_intensity(),
        roofline_utilization: dev.roofline_utilization(),
        utilization: dev.utilization(),
    }
}

/// Runs the full report: trains every configured cell, then sweeps the
/// serve policies over the same endpoints. Deterministic: every number is
/// simulated, so the same config yields the same [`BenchReport`] —
/// byte-for-byte once rendered.
///
/// # Panics
///
/// Panics if a configured cell names an unknown dataset or serving fails
/// (both indicate a broken config, not a run-time condition).
pub fn run_report(cfg: &ReportConfig) -> BenchReport {
    let cells: Vec<CellReport> = cfg.cells.iter().map(|c| run_cell(c, cfg)).collect();
    let sample: Vec<SampleCellReport> = cfg
        .sample_cells
        .iter()
        .map(|c| run_sample_cell(c, cfg))
        .collect();
    // Sampled endpoints ride the same serve policy sweep as the classic
    // cells: each dispatch samples the union block of its seed batch.
    let endpoints: Vec<CellId> = cfg.cells.iter().chain(&cfg.sample_cells).cloned().collect();
    let mut serve = Vec::with_capacity(cfg.policies.len());
    for policy in &cfg.policies {
        let scfg = ServeConfig {
            endpoints: endpoints.clone(),
            requests: cfg.requests,
            rate: cfg.rate,
            seed: cfg.seed,
            policy: *policy,
            scale: cfg.scale,
            ..ServeConfig::default()
        };
        let report = gnn_serve::serve(&scfg).expect("serve run failed");
        let (p50, p95, p99) = report.latency_percentiles();
        serve.push(ServePolicyReport {
            policy: policy.label(),
            p50,
            p95,
            p99,
            throughput: report.throughput(),
            slo_attainment: report.slo_attainment(cfg.slo_target),
            served: report.answered(),
            rejected: report.rejected(),
        });
    }
    let mut fleet = Vec::with_capacity(2);
    for routing in [RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded] {
        let fcfg = FleetConfig {
            endpoints: cfg.cells.clone(),
            routing,
            requests: cfg.requests,
            rate: cfg.rate,
            seed: cfg.seed,
            scale: cfg.scale,
            slo_target: cfg.slo_target,
            ..FleetConfig::default()
        };
        // Each routing policy runs under its own arming of the canonical
        // fleet plan, so dp-step-indexed faults hit both policies alike.
        let handle =
            (!gnn_faults::is_active()).then(|| gnn_faults::install(FaultPlan::canonical_fleet()));
        let report = gnn_serve::serve_fleet(&fcfg).expect("fleet run failed");
        if let Some(h) = handle {
            gnn_faults::finish(h);
        }
        let (p50, p95, p99) = report.latency_percentiles();
        let stats = report.fleet.as_ref().expect("fleet stats present");
        fleet.push(FleetPolicyReport {
            routing: routing.label().to_owned(),
            p50,
            p95,
            p99,
            throughput: report.throughput(),
            slo_attainment: report.slo_attainment(cfg.slo_target),
            answered: report.answered(),
            shed: report.shed(),
            retries: stats.retries,
            hedges: stats.hedges,
            failover_p99: stats.failover_p99(),
        });
    }
    BenchReport {
        schema: REPORT_SCHEMA.to_owned(),
        config: vec![
            ("scale".to_owned(), cfg.scale),
            ("epochs".to_owned(), cfg.epochs as f64),
            ("seed".to_owned(), cfg.seed as f64),
            ("requests".to_owned(), cfg.requests as f64),
            ("rate".to_owned(), cfg.rate),
            ("slo_target".to_owned(), cfg.slo_target),
        ],
        cells,
        sample,
        serve,
        fleet,
    }
}

impl BenchReport {
    /// The document as a JSON tree (deterministic key order).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::from(self.schema.as_str())),
            (
                "config".into(),
                Value::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "cells".into(),
                Value::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("cell".into(), Value::from(c.cell.as_str())),
                                ("epoch_time".into(), Value::Num(c.epoch_time)),
                                ("total_time".into(), Value::Num(c.total_time)),
                                ("kernel_time".into(), Value::Num(c.kernel_time)),
                                ("transfer_time".into(), Value::Num(c.transfer_time)),
                                ("idle_time".into(), Value::Num(c.idle_time)),
                                ("flops".into(), Value::from(c.flops)),
                                ("bytes".into(), Value::from(c.bytes)),
                                (
                                    "arithmetic_intensity".into(),
                                    Value::Num(c.arithmetic_intensity),
                                ),
                                (
                                    "roofline_utilization".into(),
                                    Value::Num(c.roofline_utilization),
                                ),
                                ("utilization".into(), Value::Num(c.utilization)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sample".into(),
                Value::Arr(
                    self.sample
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("cell".into(), Value::from(c.cell.as_str())),
                                ("epoch_time".into(), Value::Num(c.epoch_time)),
                                ("total_time".into(), Value::Num(c.total_time)),
                                ("kernel_time".into(), Value::Num(c.kernel_time)),
                                ("transfer_time".into(), Value::Num(c.transfer_time)),
                                ("cache_hit_rate".into(), Value::Num(c.cache_hit_rate)),
                                ("test_acc".into(), Value::Num(c.test_acc)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve".into(),
                Value::Arr(
                    self.serve
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("policy".into(), Value::from(s.policy.as_str())),
                                ("p50".into(), Value::Num(s.p50)),
                                ("p95".into(), Value::Num(s.p95)),
                                ("p99".into(), Value::Num(s.p99)),
                                ("throughput".into(), Value::Num(s.throughput)),
                                ("slo_attainment".into(), Value::Num(s.slo_attainment)),
                                ("served".into(), Value::from(s.served)),
                                ("rejected".into(), Value::from(s.rejected)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fleet".into(),
                Value::Arr(
                    self.fleet
                        .iter()
                        .map(|f| {
                            Value::Obj(vec![
                                ("routing".into(), Value::from(f.routing.as_str())),
                                ("p50".into(), Value::Num(f.p50)),
                                ("p95".into(), Value::Num(f.p95)),
                                ("p99".into(), Value::Num(f.p99)),
                                ("throughput".into(), Value::Num(f.throughput)),
                                ("slo_attainment".into(), Value::Num(f.slo_attainment)),
                                ("answered".into(), Value::from(f.answered)),
                                ("shed".into(), Value::from(f.shed)),
                                ("retries".into(), Value::from(f.retries)),
                                ("hedges".into(), Value::from(f.hedges)),
                                ("failover_p99".into(), Value::Num(f.failover_p99)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the document as pretty-stable JSON (one trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json();
        s.push('\n');
        s
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "cell", "epoch ms", "kernel%", "xfer%", "idle%", "roofline"
        );
        for c in &self.cells {
            let total = c.kernel_time + c.transfer_time + c.idle_time;
            let pct = |v: f64| if total > 0.0 { 100.0 * v / total } else { 0.0 };
            let _ = writeln!(
                s,
                "{:<28} {:>10.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                c.cell,
                c.epoch_time * 1e3,
                pct(c.kernel_time),
                pct(c.transfer_time),
                pct(c.idle_time),
                c.roofline_utilization * 100.0,
            );
        }
        if !self.sample.is_empty() {
            let _ = writeln!(
                s,
                "{:<34} {:>10} {:>9} {:>8} {:>8}",
                "sampled cell", "epoch ms", "xfer ms", "cache%", "test%"
            );
            for c in &self.sample {
                let _ = writeln!(
                    s,
                    "{:<34} {:>10.3} {:>9.3} {:>7.1}% {:>7.1}%",
                    c.cell,
                    c.epoch_time * 1e3,
                    c.transfer_time * 1e3,
                    c.cache_hit_rate * 100.0,
                    c.test_acc,
                );
            }
        }
        let _ = writeln!(
            s,
            "{:<14} {:>9} {:>9} {:>9} {:>11} {:>8}",
            "policy", "p50 ms", "p95 ms", "p99 ms", "thru req/s", "SLO"
        );
        for p in &self.serve {
            let _ = writeln!(
                s,
                "{:<14} {:>9.3} {:>9.3} {:>9.3} {:>11.1} {:>7.1}%",
                p.policy,
                p.p50 * 1e3,
                p.p95 * 1e3,
                p.p99 * 1e3,
                p.throughput,
                p.slo_attainment * 100.0,
            );
        }
        if !self.fleet.is_empty() {
            let _ = writeln!(
                s,
                "{:<16} {:>9} {:>9} {:>7} {:>6} {:>7} {:>7} {:>10}",
                "fleet routing", "p50 ms", "p99 ms", "SLO", "shed", "retry", "hedge", "failover"
            );
            for f in &self.fleet {
                let _ = writeln!(
                    s,
                    "{:<16} {:>9.3} {:>9.3} {:>6.1}% {:>6} {:>7} {:>7} {:>7.3}ms",
                    f.routing,
                    f.p50 * 1e3,
                    f.p99 * 1e3,
                    f.slo_attainment * 100.0,
                    f.shed,
                    f.retries,
                    f.hedges,
                    f.failover_p99 * 1e3,
                );
            }
        }
        s
    }
}

/// Parses a report document, validating the schema tag.
///
/// # Errors
///
/// Returns a diagnostic on malformed JSON, a wrong schema tag, or missing
/// fields.
pub fn parse_bench_report(text: &str) -> Result<BenchReport, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing schema tag")?;
    if schema != REPORT_SCHEMA {
        return Err(format!(
            "schema mismatch: file is `{schema}`, this build reads `{REPORT_SCHEMA}`"
        ));
    }
    let config = doc
        .get("config")
        .and_then(|c| c.as_obj())
        .ok_or("missing config object")?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("config.{k} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    let num = |obj: &Value, key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let text_field = |obj: &Value, key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let cells = doc
        .get("cells")
        .and_then(|c| c.as_arr())
        .ok_or("missing cells array")?
        .iter()
        .map(|c| {
            Ok(CellReport {
                cell: text_field(c, "cell")?,
                epoch_time: num(c, "epoch_time")?,
                total_time: num(c, "total_time")?,
                kernel_time: num(c, "kernel_time")?,
                transfer_time: num(c, "transfer_time")?,
                idle_time: num(c, "idle_time")?,
                flops: num(c, "flops")? as u64,
                bytes: num(c, "bytes")? as u64,
                arithmetic_intensity: num(c, "arithmetic_intensity")?,
                roofline_utilization: num(c, "roofline_utilization")?,
                utilization: num(c, "utilization")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let sample = doc
        .get("sample")
        .and_then(|s| s.as_arr())
        .ok_or("missing sample array")?
        .iter()
        .map(|c| {
            Ok(SampleCellReport {
                cell: text_field(c, "cell")?,
                epoch_time: num(c, "epoch_time")?,
                total_time: num(c, "total_time")?,
                kernel_time: num(c, "kernel_time")?,
                transfer_time: num(c, "transfer_time")?,
                cache_hit_rate: num(c, "cache_hit_rate")?,
                test_acc: num(c, "test_acc")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let serve = doc
        .get("serve")
        .and_then(|s| s.as_arr())
        .ok_or("missing serve array")?
        .iter()
        .map(|s| {
            Ok(ServePolicyReport {
                policy: text_field(s, "policy")?,
                p50: num(s, "p50")?,
                p95: num(s, "p95")?,
                p99: num(s, "p99")?,
                throughput: num(s, "throughput")?,
                slo_attainment: num(s, "slo_attainment")?,
                served: num(s, "served")? as usize,
                rejected: num(s, "rejected")? as usize,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let fleet = doc
        .get("fleet")
        .and_then(|f| f.as_arr())
        .ok_or("missing fleet array")?
        .iter()
        .map(|f| {
            Ok(FleetPolicyReport {
                routing: text_field(f, "routing")?,
                p50: num(f, "p50")?,
                p95: num(f, "p95")?,
                p99: num(f, "p99")?,
                throughput: num(f, "throughput")?,
                slo_attainment: num(f, "slo_attainment")?,
                answered: num(f, "answered")? as usize,
                shed: num(f, "shed")? as usize,
                retries: num(f, "retries")? as usize,
                hedges: num(f, "hedges")? as usize,
                failover_p99: num(f, "failover_p99")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchReport {
        schema: schema.to_owned(),
        config,
        cells,
        sample,
        serve,
        fleet,
    })
}

/// One metric compared between two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Metric path, e.g. `table4/Cora/GCN/PyG epoch_time` or
    /// `serve b8/d2000us p95`.
    pub metric: String,
    /// Baseline value.
    pub previous: f64,
    /// Current value.
    pub current: f64,
    /// Whether the change crossed the regression threshold.
    pub regression: bool,
}

impl DiffLine {
    /// Relative change, `current / previous - 1` (0 when previous is 0).
    pub fn delta(&self) -> f64 {
        if self.previous == 0.0 {
            0.0
        } else {
            self.current / self.previous - 1.0
        }
    }
}

fn compare(
    metric: String,
    previous: f64,
    current: f64,
    threshold: f64,
    higher_is_worse: bool,
    out: &mut Vec<DiffLine>,
) {
    let regression = if higher_is_worse {
        current > previous * (1.0 + threshold)
    } else {
        current < previous * (1.0 - threshold)
    };
    out.push(DiffLine {
        metric,
        previous,
        current,
        regression,
    });
}

/// Compares `current` against `previous` metric by metric. Time-like
/// metrics (epoch time, latency percentiles) regress when they grow past
/// the threshold; attainment regresses when it shrinks past it. Metrics
/// present on only one side are skipped — the diff tracks drift, not
/// coverage.
pub fn diff_reports(
    previous: &BenchReport,
    current: &BenchReport,
    threshold: f64,
) -> Vec<DiffLine> {
    let mut out = Vec::new();
    for cur in &current.cells {
        let Some(prev) = previous.cells.iter().find(|c| c.cell == cur.cell) else {
            continue;
        };
        compare(
            format!("{} epoch_time", cur.cell),
            prev.epoch_time,
            cur.epoch_time,
            threshold,
            true,
            &mut out,
        );
        compare(
            format!("{} roofline_utilization", cur.cell),
            prev.roofline_utilization,
            cur.roofline_utilization,
            threshold,
            false,
            &mut out,
        );
    }
    for cur in &current.sample {
        let Some(prev) = previous.sample.iter().find(|c| c.cell == cur.cell) else {
            continue;
        };
        compare(
            format!("{} epoch_time", cur.cell),
            prev.epoch_time,
            cur.epoch_time,
            threshold,
            true,
            &mut out,
        );
        compare(
            format!("{} cache_hit_rate", cur.cell),
            prev.cache_hit_rate,
            cur.cache_hit_rate,
            threshold,
            false,
            &mut out,
        );
    }
    for cur in &current.serve {
        let Some(prev) = previous.serve.iter().find(|s| s.policy == cur.policy) else {
            continue;
        };
        compare(
            format!("serve {} p95", cur.policy),
            prev.p95,
            cur.p95,
            threshold,
            true,
            &mut out,
        );
        compare(
            format!("serve {} p99", cur.policy),
            prev.p99,
            cur.p99,
            threshold,
            true,
            &mut out,
        );
        compare(
            format!("serve {} slo_attainment", cur.policy),
            prev.slo_attainment,
            cur.slo_attainment,
            threshold,
            false,
            &mut out,
        );
    }
    for cur in &current.fleet {
        let Some(prev) = previous.fleet.iter().find(|f| f.routing == cur.routing) else {
            continue;
        };
        compare(
            format!("fleet {} p99", cur.routing),
            prev.p99,
            cur.p99,
            threshold,
            true,
            &mut out,
        );
        compare(
            format!("fleet {} slo_attainment", cur.routing),
            prev.slo_attainment,
            cur.slo_attainment,
            threshold,
            false,
            &mut out,
        );
        compare(
            format!("fleet {} failover_p99", cur.routing),
            prev.failover_p99,
            cur.failover_p99,
            threshold,
            true,
            &mut out,
        );
    }
    out
}

/// Renders the diff lines; regressions are prefixed `REGRESSION`.
pub fn render_diff(lines: &[DiffLine]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for l in lines {
        let _ = writeln!(
            s,
            "{} {:<44} {:>14.6} -> {:>14.6} ({:+.1}%)",
            if l.regression {
                "REGRESSION"
            } else {
                "        ok"
            },
            l.metric,
            l.previous,
            l.current,
            l.delta() * 100.0,
        );
    }
    s
}

/// Resolves the first readable baseline among `candidates`, in order,
/// returning it alongside one warning line per candidate skipped. A
/// candidate fails (and falls through to the next) when the file is
/// unreadable or the document does not parse — most commonly an older
/// schema version still checked in for history, e.g. a `v2` report from
/// before the `sample` section existed. Falling through instead of
/// erroring lets a report trajectory cross schema bumps without manual
/// baseline surgery.
pub fn resolve_baseline(candidates: &[PathBuf]) -> (Option<(PathBuf, BenchReport)>, Vec<String>) {
    let mut warnings = Vec::new();
    for p in candidates {
        match std::fs::read_to_string(p)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_bench_report(&text))
        {
            Ok(r) => return (Some((p.clone(), r)), warnings),
            Err(e) => warnings.push(format!("baseline {} unreadable: {e}", p.display())),
        }
    }
    (None, warnings)
}

/// A single-cell, single-policy config for tests and smoke runs.
pub fn tiny_report_config() -> ReportConfig {
    ReportConfig {
        cells: vec![CellId {
            task: TaskKind::Node,
            dataset: "Cora".into(),
            model: gnn_models::ModelKind::Gcn,
            framework: FrameworkKind::RustyG,
        }],
        sample_cells: vec![
            CellId::parse("sample/rmat-4k-neighbor/SAGE/PyG").expect("tiny sample cell is valid")
        ],
        epochs: 1,
        policies: vec![BatchPolicy {
            max_batch: 4,
            max_delay: 0.001,
        }],
        requests: 40,
        ..ReportConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: REPORT_SCHEMA.to_owned(),
            config: vec![("scale".into(), 0.05), ("epochs".into(), 2.0)],
            cells: vec![CellReport {
                cell: "table4/Cora/GCN/PyG".into(),
                epoch_time: 0.010,
                total_time: 0.020,
                kernel_time: 0.012,
                transfer_time: 0.003,
                idle_time: 0.005,
                flops: 1_000_000,
                bytes: 4_000_000,
                arithmetic_intensity: 0.25,
                roofline_utilization: 0.42,
                utilization: 0.75,
            }],
            sample: vec![SampleCellReport {
                cell: "sample/rmat-4k-neighbor/SAGE/PyG".into(),
                epoch_time: 0.030,
                total_time: 0.060,
                kernel_time: 0.020,
                transfer_time: 0.015,
                cache_hit_rate: 0.65,
                test_acc: 40.0,
            }],
            serve: vec![ServePolicyReport {
                policy: "b4/d1000us".into(),
                p50: 0.001,
                p95: 0.002,
                p99: 0.003,
                throughput: 800.0,
                slo_attainment: 0.95,
                served: 118,
                rejected: 2,
            }],
            fleet: vec![FleetPolicyReport {
                routing: "consistent-hash".into(),
                p50: 0.0012,
                p95: 0.0025,
                p99: 0.004,
                throughput: 750.0,
                slo_attainment: 0.9,
                answered: 110,
                shed: 10,
                retries: 6,
                hedges: 3,
                failover_p99: 0.008,
            }],
        }
    }

    #[test]
    fn document_round_trips() {
        let r = sample();
        let text = r.to_json();
        let back = parse_bench_report(&text).expect("parse own output");
        assert_eq!(back, r);
        // And the rendering is stable through a round trip.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parser_rejects_wrong_schema() {
        let text = sample().to_json().replace(REPORT_SCHEMA, "bogus/v9");
        let err = parse_bench_report(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn diff_flags_time_growth_and_attainment_drop() {
        let prev = sample();
        let mut cur = sample();
        cur.cells[0].epoch_time *= 1.20; // +20% over a 5% threshold
        cur.serve[0].slo_attainment = 0.80; // attainment drop
        cur.fleet[0].failover_p99 *= 2.0; // failover latency growth
        let lines = diff_reports(&prev, &cur, 0.05);
        let regressions: Vec<&DiffLine> = lines.iter().filter(|l| l.regression).collect();
        assert_eq!(regressions.len(), 3, "{}", render_diff(&lines));
        assert!(regressions[0].metric.contains("epoch_time"));
        assert!(regressions[1].metric.contains("slo_attainment"));
        assert!(regressions[2].metric.contains("failover_p99"));
        // Identical reports never regress.
        assert!(diff_reports(&prev, &prev, 0.05)
            .iter()
            .all(|l| !l.regression));
    }

    #[test]
    fn diff_skips_unmatched_metrics() {
        let prev = sample();
        let mut cur = sample();
        cur.cells[0].cell = "table4/PubMed/GCN/PyG".into();
        let lines = diff_reports(&prev, &cur, 0.05);
        assert!(lines.iter().all(|l| {
            l.metric.starts_with("sample/")
                || l.metric.starts_with("serve ")
                || l.metric.starts_with("fleet ")
        }));
        cur.sample[0].cell = "sample/rmat-64k-neighbor/SAGE/PyG".into();
        cur.fleet[0].routing = "least-loaded".into();
        let lines = diff_reports(&prev, &cur, 0.05);
        assert!(lines.iter().all(|l| l.metric.starts_with("serve ")));
    }

    #[test]
    fn diff_flags_sampled_cache_and_time_drift() {
        let prev = sample();
        let mut cur = sample();
        cur.sample[0].epoch_time *= 1.20;
        cur.sample[0].cache_hit_rate = 0.40; // hit-rate collapse
        let lines = diff_reports(&prev, &cur, 0.05);
        let regressions: Vec<&DiffLine> = lines.iter().filter(|l| l.regression).collect();
        assert_eq!(regressions.len(), 2, "{}", render_diff(&lines));
        assert!(regressions[0].metric.contains("epoch_time"));
        assert!(regressions[1].metric.contains("cache_hit_rate"));
    }

    #[test]
    fn baseline_resolution_falls_through_old_schemas() {
        let dir = std::env::temp_dir().join("gnn_bench_baseline_fallthrough");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("BENCH_9.json");
        let new = dir.join("BENCH_10.json");
        // A v2-era document: no `sample` section, old schema tag.
        let v2 = sample()
            .to_json()
            .replace(REPORT_SCHEMA, "gnn-bench-report/v2");
        std::fs::write(&old, v2).unwrap();
        std::fs::write(&new, sample().to_json()).unwrap();
        let missing = dir.join("nope.json");
        let (found, warnings) = resolve_baseline(&[missing.clone(), old.clone(), new.clone()]);
        let (path, report) = found.expect("v3 candidate resolves");
        assert_eq!(path, new);
        assert_eq!(report, sample());
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("nope.json"), "{}", warnings[0]);
        assert!(
            warnings[1].contains("schema mismatch"),
            "old-schema candidates fall through with a warning: {}",
            warnings[1]
        );
        // Nothing readable: no baseline, all candidates warned about.
        let (none, warnings) = resolve_baseline(&[missing, old]);
        assert!(none.is_none());
        assert_eq!(warnings.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_report_is_deterministic() {
        let cfg = tiny_report_config();
        let a = run_report(&cfg);
        let b = run_report(&cfg);
        assert_eq!(a.to_json(), b.to_json(), "report must be bit-identical");
        assert_eq!(a.cells.len(), 1);
        assert_eq!(a.sample.len(), 1);
        assert_eq!(a.serve.len(), 1);
        let sc = &a.sample[0];
        assert_eq!(sc.cell, "sample/rmat-4k-neighbor/SAGE/PyG");
        assert!(sc.epoch_time > 0.0 && sc.total_time > 0.0);
        assert!(sc.transfer_time > 0.0, "sampled gather always uploads");
        assert!((0.0..=1.0).contains(&sc.cache_hit_rate));
        assert!((0.0..=100.0).contains(&sc.test_acc));
        let c = &a.cells[0];
        assert!(c.epoch_time > 0.0);
        assert!(c.flops > 0 && c.bytes > 0);
        assert!(c.kernel_time > 0.0 && c.transfer_time >= 0.0 && c.idle_time >= 0.0);
        assert!(
            (c.kernel_time + c.transfer_time + c.idle_time - c.total_time).abs()
                < 1e-9 * c.total_time.max(1.0),
            "split must sum to total"
        );
        assert!((0.0..=1.0).contains(&c.roofline_utilization));
        assert!(a.serve[0].p50 > 0.0);
        assert!((0.0..=1.0).contains(&a.serve[0].slo_attainment));
        // Both routing policies ran under the canonical fleet chaos plan
        // and every request reached a terminal outcome.
        assert_eq!(a.fleet.len(), 2);
        assert_eq!(a.fleet[0].routing, "consistent-hash");
        assert_eq!(a.fleet[1].routing, "least-loaded");
        for f in &a.fleet {
            assert!(f.p50 > 0.0 && f.p50 <= f.p99);
            assert!((0.0..=1.0).contains(&f.slo_attainment));
            assert!(f.answered + f.shed <= cfg.requests);
            assert!(f.answered > 0, "the fleet must answer under chaos");
        }
    }
}
