//! The `gnn-bench sample` sweep: giant-graph sampled training over
//! fan-out and cache policies, exported as `sample_metrics.csv`.
//!
//! Each sweep point is one (spec, fanouts, cache_rows) variant trained
//! under both sampler kinds and both frameworks with the fault-tolerant
//! supervised runner, so an armed `--faults` plan exercises the same
//! OOM/retry/poison machinery the main sweep does. The RMAT graph is
//! generated once per spec and shared read-only by every variant and
//! cell — the million-node headline spec pays generation exactly once.
//!
//! Every number is simulated and every sampler draw is seeded, so a rerun
//! with the same flags reproduces the CSV byte-for-byte; CI enforces this
//! with `cmp`.

use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use gnn_models::build;
use gnn_models::config::{node_hparams, FrameworkKind, ModelKind, ALL_FRAMEWORKS};
use gnn_sample::{RmatGraph, SampleSpec, SamplerKind};
use gnn_train::{run_sampled_task_supervised, SampledTaskConfig, Supervisor, TrainError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema tag stamped into `sample_metrics.csv` as a leading `# schema:`
/// comment. Bump on any column change so consumers fail loudly instead of
/// misreading shifted fields.
pub const SAMPLE_METRICS_SCHEMA: &str = "gnn-sample-metrics/v1";

/// Column header of `sample_metrics.csv`.
pub const SAMPLE_CSV_HEADER: &str = "spec,fanouts,cache_rows,sampler,framework,batch_seeds,\
     epochs,epoch_time,total_time,kernel_time,transfer_time,cache_hit_rate,test_acc,\
     peak_memory,retries,degraded";

/// One sweep variant: a catalog spec with its fan-out schedule and/or
/// feature-cache size overridden.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleVariant {
    /// The spec with overrides applied (`name` stays the catalog name).
    pub spec: SampleSpec,
}

impl SampleVariant {
    /// `AxB` rendering of the variant's fan-out schedule (CSV-safe).
    pub fn fanout_label(&self) -> String {
        self.spec
            .fanouts
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

/// Expands `specs` × `fanouts` × `cache_rows` into the sweep's variants.
/// Empty override lists mean "the spec's own value", so the default run
/// still sweeps something: the catalog point plus each single-axis
/// override.
pub fn expand_variants(
    specs: &[SampleSpec],
    fanouts: &[Vec<usize>],
    cache_rows: &[usize],
) -> Vec<SampleVariant> {
    let mut variants = Vec::new();
    for spec in specs {
        let fanout_axis: Vec<Vec<usize>> = if fanouts.is_empty() {
            vec![spec.fanouts.clone()]
        } else {
            fanouts.to_vec()
        };
        let cache_axis: Vec<usize> = if cache_rows.is_empty() {
            vec![spec.cache_rows]
        } else {
            cache_rows.to_vec()
        };
        for fo in &fanout_axis {
            for &cr in &cache_axis {
                let mut s = spec.clone();
                s.fanouts = fo.clone();
                s.cache_rows = cr;
                variants.push(SampleVariant { spec: s });
            }
        }
    }
    variants
}

/// One finished cell of the sample sweep: a CSV row of `sample_metrics.csv`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRunRow {
    /// Catalog spec name.
    pub spec: String,
    /// Fan-out schedule, `AxB` form.
    pub fanouts: String,
    /// Feature-cache rows of the variant.
    pub cache_rows: usize,
    /// Sampler kind label.
    pub sampler: &'static str,
    /// Framework label.
    pub framework: &'static str,
    /// Seed nodes per mini-batch.
    pub batch_seeds: usize,
    /// Epochs trained.
    pub epochs: usize,
    /// Mean simulated seconds per epoch.
    pub epoch_time: f64,
    /// Total simulated seconds.
    pub total_time: f64,
    /// Simulated kernel-execution seconds.
    pub kernel_time: f64,
    /// Simulated PCIe/NVLink transfer seconds (the sampled gather tax).
    pub transfer_time: f64,
    /// Lifetime feature-cache hit rate in [0, 1].
    pub cache_hit_rate: f64,
    /// Test accuracy (%) at the best validation epoch.
    pub test_acc: f64,
    /// Allocator high-water mark in bytes.
    pub peak_memory: u64,
    /// Fault retries the supervisor absorbed.
    pub retries: usize,
    /// Whether the supervisor degraded (halved the seed batch).
    pub degraded: bool,
}

impl SampleRunRow {
    /// The row as a CSV line (no trailing newline). Fixed-precision float
    /// formatting keeps equal runs byte-identical.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.4},{:.2},{},{},{}",
            self.spec,
            self.fanouts,
            self.cache_rows,
            self.sampler,
            self.framework,
            self.batch_seeds,
            self.epochs,
            self.epoch_time,
            self.total_time,
            self.kernel_time,
            self.transfer_time,
            self.cache_hit_rate,
            self.test_acc,
            self.peak_memory,
            self.retries,
            self.degraded,
        )
    }
}

/// Trains one sampled cell with the fault-tolerant supervised runner and
/// distills it into a CSV row.
///
/// # Errors
///
/// Propagates [`TrainError`] when the supervisor gives up (exhausted
/// retries, unsurvivable ceiling).
pub fn run_sample_variant_cell(
    variant: &SampleVariant,
    graph: &Rc<RmatGraph>,
    kind: SamplerKind,
    framework: FrameworkKind,
    epochs: usize,
    seed: u64,
) -> Result<SampleRunRow, TrainError> {
    let spec = &variant.spec;
    let model = ModelKind::Sage;
    let cell = format!(
        "sample/{}-{}/{}/{}",
        spec.name,
        kind.label(),
        model.label(),
        framework.label()
    );
    gnn_faults::set_cell(&cell);
    let task = SampledTaskConfig {
        max_epochs: epochs,
        lr: node_hparams(model).lr,
        batch_seeds: spec.batch_seeds,
        train_seeds: spec.batch_seeds * 4,
        eval_seeds: spec.batch_seeds,
        seed,
    };
    let sup = Supervisor::default();
    let f = spec.rmat.feature_dim;
    let c = spec.rmat.num_classes;
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let (run, hit_rate) = match framework {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(model, f, c, &mut rng);
            let loader = rustyg::sampled::SampledLoader::new(graph.clone(), spec, kind)
                .expect("variants are linted before cells run");
            let run = run_sampled_task_supervised(&stack, &loader, &task, &sup)?;
            let hit = loader.cache_hit_rate();
            (run, hit)
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(model, f, c, &mut rng);
            let loader = rgl::sampled::SampledLoader::new(graph.clone(), spec, kind)
                .expect("variants are linted before cells run");
            let run = run_sampled_task_supervised(&stack, &loader, &task, &sup)?;
            let hit = loader.cache_hit_rate();
            (run, hit)
        }
    };
    Ok(SampleRunRow {
        spec: spec.name.to_owned(),
        fanouts: variant.fanout_label(),
        cache_rows: spec.cache_rows,
        sampler: kind.label(),
        framework: framework.label(),
        batch_seeds: spec.batch_seeds,
        epochs: run.outcome.epochs,
        epoch_time: run.outcome.epoch_time,
        total_time: run.outcome.total_time,
        kernel_time: run.outcome.report.kernel_exec_time(),
        transfer_time: run.outcome.report.transfer_time(),
        cache_hit_rate: hit_rate,
        test_acc: run.outcome.test_acc,
        peak_memory: run.outcome.report.peak_memory,
        retries: run.retries,
        degraded: run.degraded,
    })
}

/// Runs the whole sample sweep: every variant × sampler kind × framework,
/// generating each catalog spec's RMAT graph exactly once. Cells that die
/// (the supervisor gave up) are reported as errors alongside the rows
/// that finished.
pub fn run_sample_sweep(
    variants: &[SampleVariant],
    epochs: usize,
    seed: u64,
) -> (Vec<SampleRunRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    let mut graphs: Vec<(gnn_sample::RmatConfig, Rc<RmatGraph>)> = Vec::new();
    for variant in variants {
        let graph = match graphs.iter().find(|(cfg, _)| *cfg == variant.spec.rmat) {
            Some((_, g)) => g.clone(),
            None => match RmatGraph::generate(variant.spec.rmat) {
                Ok(g) => {
                    let g = Rc::new(g);
                    graphs.push((variant.spec.rmat, g.clone()));
                    g
                }
                Err(e) => {
                    errors.push(format!("{}: {e}", variant.spec.name));
                    continue;
                }
            },
        };
        for kind in SamplerKind::all() {
            for framework in ALL_FRAMEWORKS {
                match run_sample_variant_cell(variant, &graph, kind, framework, epochs, seed) {
                    Ok(row) => rows.push(row),
                    Err(e) => errors.push(format!(
                        "sample/{}-{}/SAGE/{} (fanouts {}, cache {}): {e}",
                        variant.spec.name,
                        kind.label(),
                        framework.label(),
                        variant.fanout_label(),
                        variant.spec.cache_rows,
                    )),
                }
            }
        }
    }
    (rows, errors)
}

/// Validates a `sample_metrics.csv` text: the `# schema:` stamp followed
/// by [`SAMPLE_CSV_HEADER`], with every data row carrying the header's
/// column count.
///
/// # Errors
///
/// Human-readable message naming the first malformed line.
pub fn check_sample_metrics_schema(text: &str) -> Result<(), String> {
    let expected = format!("# schema: {SAMPLE_METRICS_SCHEMA}");
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first == expected => {}
        Some(first) => return Err(format!("schema mismatch: `{first}` (want `{expected}`)")),
        None => return Err("empty file".into()),
    }
    let cols = SAMPLE_CSV_HEADER.split(',').count();
    match lines.next() {
        Some(h) if h == SAMPLE_CSV_HEADER => {}
        Some(h) => return Err(format!("header mismatch: `{h}`")),
        None => return Err("missing header".into()),
    }
    for (i, line) in lines.enumerate() {
        let n = line.split(',').count();
        if n != cols {
            return Err(format!(
                "row {} has {n} column(s), want {cols}: `{line}`",
                i + 1
            ));
        }
    }
    Ok(())
}

/// Writes `sample_metrics.csv` to `path` (parent directories created),
/// self-checking the written text against the schema first.
///
/// # Errors
///
/// I/O errors from directory creation or the write.
pub fn write_sample_metrics(path: &Path, rows: &[SampleRunRow]) -> io::Result<PathBuf> {
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut csv = format!("# schema: {SAMPLE_METRICS_SCHEMA}\n{SAMPLE_CSV_HEADER}\n");
    for row in rows {
        csv.push_str(&row.to_csv());
        csv.push('\n');
    }
    check_sample_metrics_schema(&csv).expect("writer stamped a malformed schema header");
    std::fs::write(path, csv)?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_variant() -> SampleVariant {
        SampleVariant {
            spec: SampleSpec::get("rmat-4k").unwrap(),
        }
    }

    #[test]
    fn variant_expansion_covers_both_axes() {
        let specs = [SampleSpec::get("rmat-4k").unwrap()];
        let base = expand_variants(&specs, &[], &[]);
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].spec, specs[0]);
        let grid = expand_variants(&specs, &[vec![4, 2], vec![2, 2]], &[512, 64]);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].fanout_label(), "4x2");
        assert_eq!(grid[3].fanout_label(), "2x2");
        assert_eq!(grid[3].spec.cache_rows, 64);
        assert_eq!(grid[3].spec.name, "rmat-4k");
    }

    #[test]
    fn sweep_rows_are_deterministic_and_schema_clean() {
        let variants = [tiny_variant()];
        let (rows, errors) = run_sample_sweep(&variants, 2, 11);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(rows.len(), 4, "2 kinds x 2 frameworks");
        for row in &rows {
            assert!(row.epoch_time > 0.0);
            assert!(row.transfer_time > 0.0, "sampled gather tax must show");
            assert!((0.0..=1.0).contains(&row.cache_hit_rate));
            assert!((0.0..=100.0).contains(&row.test_acc));
            assert!(row.peak_memory > 0);
        }
        let (again, _) = run_sample_sweep(&variants, 2, 11);
        assert_eq!(rows, again, "same flags, same rows");

        let dir = std::env::temp_dir().join(format!("gnn_sample_csv_{}", std::process::id()));
        let path = dir.join("sample_metrics.csv");
        write_sample_metrics(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        check_sample_metrics_schema(&text).unwrap();
        assert_eq!(text.lines().count(), 2 + rows.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_check_rejects_drift() {
        assert!(check_sample_metrics_schema("").is_err());
        assert!(check_sample_metrics_schema("# schema: gnn-sample-metrics/v0\n").is_err());
        let good = format!("# schema: {SAMPLE_METRICS_SCHEMA}\n{SAMPLE_CSV_HEADER}\n");
        check_sample_metrics_schema(&good).unwrap();
        let bad_row = format!("{good}a,b,c\n");
        let err = check_sample_metrics_schema(&bad_row).unwrap_err();
        assert!(err.contains("row 1"), "{err}");
    }

    #[test]
    fn failed_generation_is_reported_not_panicked() {
        let mut v = tiny_variant();
        v.spec.rmat.scale = 0;
        let (rows, errors) = run_sample_sweep(&[v], 1, 3);
        assert!(rows.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("rmat-4k"), "{errors:?}");
    }
}
