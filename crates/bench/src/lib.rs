//! # gnn-bench
//!
//! Reproduction binaries — one per table/figure of the paper — plus the
//! shared command-line plumbing. Each binary prints the same rows/series
//! the paper reports, at a configurable scale:
//!
//! | Binary    | Reproduces |
//! |-----------|------------|
//! | `table1`  | Table I — dataset statistics |
//! | `table4`  | Table IV — node classification time/accuracy |
//! | `table5`  | Table V — graph classification time/accuracy |
//! | `fig1_2`  | Figs. 1–2 — epoch-time breakdown (`--dataset enzymes|dd`) |
//! | `fig3`    | Fig. 3 — layer-wise execution time on ENZYMES |
//! | `fig4_5`  | Figs. 4–5 — peak memory + GPU utilization |
//! | `fig6`    | Fig. 6 — multi-GPU scaling of GCN/GAT on MNIST |
//! | `sweep`   | Fault-isolated sweep over all 60 cells |
//! | `serve`   | Inference serving: batching-policy sweep over trained cells |
//! | `sample`  | Giant-graph sampled training: fan-out/cache sweep over seeded RMAT graphs → `sample_metrics.csv` |
//! | `fleet`   | Fleet serving: routing-policy sweep over sharded endpoints under chaos |
//! | `report`  | Regression observatory: canonical cells + serve policies → `BENCH_<n>.json`, diffed against the previous report |
//! | `whatif`  | Causal profiler: virtual-speedup experiments over the recorded timeline → ranked opportunities in `whatif.json` (`--conformance` re-runs the top predictions for real) |
//!
//! Common flags: `--quick` (default), `--full` (paper scale), `--smoke`,
//! `--scale <f>`, `--seed <n>`, `--epochs <n>`, `--folds <n>`,
//! `--trace <dir>` to write `trace.json` (Chrome trace-event format) and
//! `metrics.jsonl` (one record per training epoch) into `<dir>`, and
//! `--lint` to run the `gnn-lint` static analyzer over the configured sweep
//! first and refuse to execute on any finding (with `--trace`, the findings
//! also land in `<dir>/lint.json`).
//!
//! Robustness flags (see the `gnn-faults` crate and the `sweep` binary):
//! `--faults <plan>` arms a deterministic fault-injection plan around the
//! run, where `<plan>` is `canonical` (the fixed chaos-suite plan),
//! `canonical-fleet` (the chaos suite plus a shard blackout and a network
//! straggler for fleet runs), `seeded:<n>` (a plan derived from seed `n`),
//! or a path to a plan file;
//! `--ckpt <dir>` writes per-cell training checkpoints into `<dir>`; and
//! `--resume` restores cells from those checkpoints, so a killed run
//! continues where it stopped with bit-identical metrics (`--resume`
//! implies `--ckpt out/ckpt` unless a directory was given).
//!
//! The Criterion benches (`cargo bench -p gnn-bench`) measure the *library
//! itself* (real CPU time of the tensor kernels, message-passing lowerings,
//! and the two frameworks' collation paths) rather than the simulated
//! device.

pub mod report;
pub mod sample;
pub mod whatif;

use gnn_core::RunConfig;
use gnn_faults::FaultPlan;

/// Parses a `--faults` operand: `canonical`, `canonical-fleet`,
/// `seeded:<n>`, or a plan file.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    match spec {
        "canonical" => Ok(FaultPlan::canonical()),
        "canonical-fleet" => Ok(FaultPlan::canonical_fleet()),
        s => {
            if let Some(seed) = s.strip_prefix("seeded:") {
                seed.parse::<u64>()
                    .map(FaultPlan::seeded)
                    .map_err(|e| format!("--faults seeded:<n>: {e}"))
            } else {
                FaultPlan::load(std::path::Path::new(s))
            }
        }
    }
}

/// Parses and validates an artifact-directory flag value: the destination
/// must be creatable and writable ([`gnn_core::validate_artifact_dir`]),
/// so a doomed `--trace`/`--ckpt` path fails at parse time with a typed
/// diagnostic naming the path, instead of after the training run.
fn artifact_dir(
    name: &str,
    value_of: &mut impl FnMut(&str) -> Result<String, String>,
) -> Result<std::path::PathBuf, String> {
    let dir = std::path::PathBuf::from(value_of(name)?);
    gnn_core::validate_artifact_dir(&dir).map_err(|e| format!("{name}: {e}"))?;
    Ok(dir)
}

/// Parsed command-line options shared by the reproduction binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Scaled run configuration.
    pub config: RunConfig,
    /// Value of `--dataset`, if given.
    pub dataset: Option<String>,
    /// Value of `--metric`, if given.
    pub metric: Option<String>,
}

/// Parses `args` (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown flags or unparsable values.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut config = RunConfig::quick();
    let mut dataset = None;
    let mut metric = None;
    // Tracked outside `config` so these hold regardless of flag order
    // (preset flags rebuild the config).
    let mut lint = false;
    let mut faults = None;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => config = RunConfig::quick().with_seed(config.seed),
            "--full" | "--paper" => config = RunConfig::paper().with_seed(config.seed),
            "--smoke" => config = RunConfig::smoke().with_seed(config.seed),
            "--scale" => {
                let v: f64 = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(format!("--scale {v} out of (0, 1]"));
                }
                config.scale = v;
            }
            "--seed" => {
                config.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--epochs" => {
                let v: usize = value_of("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
                config.node_epochs = v;
                config.graph_epochs = v;
            }
            "--folds" => {
                config.folds = value_of("--folds")?
                    .parse()
                    .map_err(|e| format!("--folds: {e}"))?;
            }
            "--seeds" => {
                config.seeds = value_of("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--trace" => {
                config.trace = gnn_core::TraceConfig::to(artifact_dir("--trace", &mut value_of)?);
            }
            "--lint" => lint = true,
            "--faults" => faults = Some(parse_fault_plan(&value_of("--faults")?)?),
            "--ckpt" => ckpt_dir = Some(artifact_dir("--ckpt", &mut value_of)?),
            "--resume" => resume = true,
            "--dataset" => dataset = Some(value_of("--dataset")?.to_lowercase()),
            "--metric" => metric = Some(value_of("--metric")?.to_lowercase()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    config.lint_first = lint;
    config.faults = faults;
    if resume && ckpt_dir.is_none() {
        // Resuming is meaningless without somewhere to find checkpoints.
        ckpt_dir = Some("out/ckpt".into());
    }
    config.ckpt_dir = ckpt_dir;
    config.resume = resume;
    Ok(CliOptions {
        config,
        dataset,
        metric,
    })
}

/// Parsed command-line options of the `serve` binary.
#[derive(Debug, Clone)]
pub struct ServeCliOptions {
    /// Base serving config; `policy` holds the first entry of `policies`.
    pub serve: gnn_serve::ServeConfig,
    /// Batching policies to sweep, in declaration order.
    pub policies: Vec<gnn_serve::BatchPolicy>,
    /// Raw endpoint paths as given (pre-parse, for the serve-config lint).
    pub endpoints_raw: Vec<String>,
    /// Run the `serve-config` lint first and refuse to serve on findings.
    pub lint: bool,
    /// Fault plan to arm around the run.
    pub faults: Option<FaultPlan>,
    /// Directory for trace artifacts and `serve_metrics.csv`.
    pub trace: Option<std::path::PathBuf>,
}

/// Parses a `--policies` entry: `<max_batch>@<delay_us>`, e.g. `8@2000`.
fn parse_policy(spec: &str) -> Result<gnn_serve::BatchPolicy, String> {
    let (batch, delay) = spec
        .split_once('@')
        .ok_or_else(|| format!("policy `{spec}` must be <max_batch>@<delay_us>"))?;
    let max_batch: usize = batch
        .parse()
        .map_err(|e| format!("policy `{spec}` max_batch: {e}"))?;
    let delay_us: f64 = delay
        .parse()
        .map_err(|e| format!("policy `{spec}` delay_us: {e}"))?;
    Ok(gnn_serve::BatchPolicy {
        max_batch,
        max_delay: delay_us * 1e-6,
    })
}

/// Parses the `serve` binary's arguments (without the program name).
///
/// Flags: `--endpoints <cell,cell,...>` (default: the representative
/// six-cell set), `--all-endpoints` (all 60 sweep cells),
/// `--policies <b@us,b@us,...>` (default `1@0,4@1000,8@2000`),
/// `--requests <n>`, `--rate <req/s>`, `--seed <n>`, `--scale <f>`,
/// `--queue-cap <n>`, `--replicas <n>`, `--ckpt <dir>`, `--trace <dir>`,
/// `--lint`, `--faults canonical|seeded:<n>|<path>`.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags or unparsable values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeCliOptions, String> {
    let mut serve = gnn_serve::ServeConfig::default();
    let mut policies = vec![
        gnn_serve::BatchPolicy {
            max_batch: 1,
            max_delay: 0.0,
        },
        gnn_serve::BatchPolicy {
            max_batch: 4,
            max_delay: 0.001,
        },
        gnn_serve::BatchPolicy {
            max_batch: 8,
            max_delay: 0.002,
        },
    ];
    let mut endpoints_raw: Vec<String> = serve.endpoints.iter().map(|c| c.path()).collect();
    let mut lint = false;
    let mut faults = None;
    let mut trace = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--endpoints" => {
                endpoints_raw = value_of("--endpoints")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--all-endpoints" => {
                endpoints_raw = gnn_serve::CellId::all().iter().map(|c| c.path()).collect();
            }
            "--policies" => {
                policies = value_of("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<_, _>>()?;
                if policies.is_empty() {
                    return Err("--policies needs at least one policy".into());
                }
            }
            "--requests" => {
                serve.requests = value_of("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rate" => {
                serve.rate = value_of("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--seed" => {
                serve.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                let v: f64 = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(format!("--scale {v} out of (0, 1]"));
                }
                serve.scale = v;
            }
            "--queue-cap" => {
                serve.queue_cap = value_of("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--replicas" => {
                serve.replicas = value_of("--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?;
            }
            "--ckpt" => serve.ckpt_dir = Some(artifact_dir("--ckpt", &mut value_of)?),
            "--trace" => trace = Some(artifact_dir("--trace", &mut value_of)?),
            "--lint" => lint = true,
            "--faults" => faults = Some(parse_fault_plan(&value_of("--faults")?)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    // Endpoint parse errors surface through the lint (when enabled) or the
    // registry build; keep whatever parses so `serve` holds a usable config.
    serve.endpoints = endpoints_raw
        .iter()
        .filter_map(|p| gnn_serve::CellId::parse(p).ok())
        .collect();
    serve.policy = policies[0];
    Ok(ServeCliOptions {
        serve,
        policies,
        endpoints_raw,
        lint,
        faults,
        trace,
    })
}

/// Parsed command-line options of the `fleet` binary.
#[derive(Debug, Clone)]
pub struct FleetCliOptions {
    /// Base fleet config; `routing` holds the first entry of `routings`.
    pub fleet: gnn_serve::FleetConfig,
    /// Routing policies to sweep, in declaration order.
    pub routings: Vec<gnn_serve::RoutingPolicy>,
    /// Raw endpoint paths as given (pre-parse, for the fleet-config lint).
    pub endpoints_raw: Vec<String>,
    /// Run the `fleet-config` lint first and refuse to serve on findings.
    pub lint: bool,
    /// Fault plan to arm around each routing-policy run.
    pub faults: Option<FaultPlan>,
    /// Directory for trace artifacts and `serve_metrics.csv`.
    pub trace: Option<std::path::PathBuf>,
}

/// Parses a `--workload` operand into a fleet arrival process:
/// `open`, `diurnal[:<period_ms>@<amplitude>]`,
/// `flash[:<at_ms>@<width_ms>@<factor>]`, or
/// `closed:<clients>@<think_us>`.
fn parse_fleet_workload(spec: &str) -> Result<gnn_serve::FleetWorkload, String> {
    use gnn_serve::{FleetWorkload, WorkloadKind};
    let bad = |what: &str| format!("--workload `{spec}`: {what}");
    match spec {
        "open" => return Ok(FleetWorkload::Open(WorkloadKind::OpenLoop)),
        "diurnal" => {
            return Ok(FleetWorkload::Open(WorkloadKind::Diurnal {
                period: 0.05,
                amplitude: 0.5,
            }))
        }
        "flash" => {
            return Ok(FleetWorkload::Open(WorkloadKind::FlashCrowd {
                at: 0.02,
                width: 0.02,
                factor: 4.0,
            }))
        }
        _ => {}
    }
    let (kind, params) = spec
        .split_once(':')
        .ok_or_else(|| bad("unknown workload (open|diurnal|flash|closed:<c>@<us>)"))?;
    let parts: Vec<&str> = params.split('@').collect();
    let num = |s: &str| -> Result<f64, String> { s.parse().map_err(|e| bad(&format!("{e}"))) };
    match (kind, parts.as_slice()) {
        ("diurnal", [period_ms, amplitude]) => Ok(FleetWorkload::Open(WorkloadKind::Diurnal {
            period: num(period_ms)? * 1e-3,
            amplitude: num(amplitude)?,
        })),
        ("flash", [at_ms, width_ms, factor]) => Ok(FleetWorkload::Open(WorkloadKind::FlashCrowd {
            at: num(at_ms)? * 1e-3,
            width: num(width_ms)? * 1e-3,
            factor: num(factor)?,
        })),
        ("closed", [clients, think_us]) => Ok(FleetWorkload::Closed {
            clients: clients.parse().map_err(|e| bad(&format!("clients: {e}")))?,
            think_time: num(think_us)? * 1e-6,
        }),
        _ => Err(bad(
            "expected diurnal:<period_ms>@<amplitude>, flash:<at_ms>@<width_ms>@<factor>, \
             or closed:<clients>@<think_us>",
        )),
    }
}

/// Parses the `fleet` binary's arguments (without the program name).
///
/// Flags: `--endpoints <cell,cell,...>` (default: the representative
/// six-cell set), `--all-endpoints`, `--shards <n>`, `--replicas <n>`
/// (per shard), `--routing <policy,policy,...>` (default: both
/// `consistent-hash` and `least-loaded`), `--policy <b@us>`,
/// `--requests <n>`, `--rate <req/s>`, `--seed <n>`, `--scale <f>`,
/// `--queue-cap <n>`, `--admission-cap <n>`, `--retry-budget <frac>`,
/// `--hedge-after <us|off>`, `--no-autoscale`, `--slo-ms <ms>`,
/// `--workload open|diurnal|flash|closed:<c>@<us>` (see
/// [`gnn_serve::FleetWorkload`]), `--ckpt <dir>`, `--trace <dir>`,
/// `--lint`, `--faults canonical|canonical-fleet|seeded:<n>|<path>`.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags or unparsable values.
pub fn parse_fleet_args(args: &[String]) -> Result<FleetCliOptions, String> {
    let mut fleet = gnn_serve::FleetConfig::default();
    let mut routings = vec![
        gnn_serve::RoutingPolicy::ConsistentHash,
        gnn_serve::RoutingPolicy::LeastLoaded,
    ];
    let mut endpoints_raw: Vec<String> = fleet.endpoints.iter().map(|c| c.path()).collect();
    let mut lint = false;
    let mut faults = None;
    let mut trace = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--endpoints" => {
                endpoints_raw = value_of("--endpoints")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--all-endpoints" => {
                endpoints_raw = gnn_serve::CellId::all().iter().map(|c| c.path()).collect();
            }
            "--shards" => {
                fleet.shards = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--replicas" => {
                fleet.replicas_per_shard = value_of("--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?;
            }
            "--routing" => {
                routings = value_of("--routing")?
                    .split(',')
                    .map(|s| {
                        gnn_serve::RoutingPolicy::parse(s).ok_or_else(|| {
                            format!("--routing `{s}` (consistent-hash|least-loaded)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if routings.is_empty() {
                    return Err("--routing needs at least one policy".into());
                }
            }
            "--policy" => fleet.policy = parse_policy(&value_of("--policy")?)?,
            "--requests" => {
                fleet.requests = value_of("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rate" => {
                fleet.rate = value_of("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--seed" => {
                fleet.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                let v: f64 = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(format!("--scale {v} out of (0, 1]"));
                }
                fleet.scale = v;
            }
            "--queue-cap" => {
                fleet.queue_cap = value_of("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--admission-cap" => {
                fleet.admission_cap = value_of("--admission-cap")?
                    .parse()
                    .map_err(|e| format!("--admission-cap: {e}"))?;
            }
            "--retry-budget" => {
                fleet.retry_budget = value_of("--retry-budget")?
                    .parse()
                    .map_err(|e| format!("--retry-budget: {e}"))?;
            }
            "--hedge-after" => {
                let v = value_of("--hedge-after")?;
                fleet.hedge_after = if v == "off" {
                    None
                } else {
                    let us: f64 = v.parse().map_err(|e| format!("--hedge-after: {e}"))?;
                    Some(us * 1e-6)
                };
            }
            "--no-autoscale" => fleet.autoscale = None,
            "--slo-ms" => {
                let ms: f64 = value_of("--slo-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-ms: {e}"))?;
                fleet.slo_target = ms * 1e-3;
            }
            "--workload" => fleet.workload = parse_fleet_workload(&value_of("--workload")?)?,
            "--ckpt" => fleet.ckpt_dir = Some(artifact_dir("--ckpt", &mut value_of)?),
            "--trace" => trace = Some(artifact_dir("--trace", &mut value_of)?),
            "--lint" => lint = true,
            "--faults" => faults = Some(parse_fault_plan(&value_of("--faults")?)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    // Endpoint parse errors surface through the lint (when enabled) or the
    // registry build; keep whatever parses so the config stays usable.
    fleet.endpoints = endpoints_raw
        .iter()
        .filter_map(|p| gnn_serve::CellId::parse(p).ok())
        .collect();
    fleet.routing = routings[0];
    Ok(FleetCliOptions {
        fleet,
        routings,
        endpoints_raw,
        lint,
        faults,
        trace,
    })
}

/// Parsed command-line options of the `sample` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCliOptions {
    /// Catalog spec names to sweep (default: the million-node headline).
    pub specs: Vec<String>,
    /// Fan-out schedule overrides (`--fanouts 10x5,5x3`); empty = each
    /// spec's own schedule.
    pub fanouts: Vec<Vec<usize>>,
    /// Feature-cache size overrides in rows; empty = each spec's own.
    pub cache_rows: Vec<usize>,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Destination of `sample_metrics.csv`.
    pub out: std::path::PathBuf,
    /// Run the `sample-config` lint + memory certification first and
    /// refuse to run on findings.
    pub lint: bool,
    /// Fault plan to arm around the run.
    pub faults: Option<FaultPlan>,
}

/// Parses a `--fanouts` entry: hop counts joined by `x`, e.g. `10x5`.
fn parse_fanout(spec: &str) -> Result<Vec<usize>, String> {
    spec.split('x')
        .map(|h| {
            h.parse::<usize>()
                .map_err(|e| format!("fan-out `{spec}`: {e}"))
        })
        .collect()
}

/// Parses the `sample` binary's arguments (without the program name).
///
/// Flags: `--specs <name,name,...>` (default `rmat-1m`),
/// `--fanouts <AxB,AxB,...>` (fan-out variants; default: each spec's own
/// schedule), `--cache-rows <n,n,...>` (cache variants; default: each
/// spec's own), `--epochs <n>` (default 2), `--seed <n>`,
/// `--out <path>` (default `sample_metrics.csv`), `--lint`,
/// `--faults canonical|seeded:<n>|<path>`.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags or unparsable values.
pub fn parse_sample_args(args: &[String]) -> Result<SampleCliOptions, String> {
    let mut o = SampleCliOptions {
        specs: vec!["rmat-1m".to_owned()],
        fanouts: Vec::new(),
        cache_rows: Vec::new(),
        epochs: 2,
        seed: 0,
        out: std::path::PathBuf::from("sample_metrics.csv"),
        lint: false,
        faults: None,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--specs" => {
                o.specs = value_of("--specs")?.split(',').map(str::to_owned).collect();
                if o.specs.iter().any(String::is_empty) {
                    return Err("--specs entries must be non-empty".into());
                }
            }
            "--fanouts" => {
                o.fanouts = value_of("--fanouts")?
                    .split(',')
                    .map(parse_fanout)
                    .collect::<Result<_, _>>()?;
            }
            "--cache-rows" => {
                o.cache_rows = value_of("--cache-rows")?
                    .split(',')
                    .map(|n| n.parse().map_err(|e| format!("--cache-rows: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--epochs" => {
                o.epochs = value_of("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
                if o.epochs == 0 {
                    return Err("--epochs must be positive".into());
                }
            }
            "--seed" => {
                o.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => o.out = value_of("--out")?.into(),
            "--lint" => o.lint = true,
            "--faults" => o.faults = Some(parse_fault_plan(&value_of("--faults")?)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(o)
}

/// When the config asks for it (`--lint`), statically verifies the whole
/// configured sweep with `gnn-lint` before anything executes and refuses to
/// run on any finding. With `--trace <dir>` the findings are also written to
/// `<dir>/lint.json`. A no-op when `lint_first` is unset.
pub fn lint_gate(cfg: &RunConfig) {
    if !cfg.lint_first {
        return;
    }
    let report = gnn_lint::lint_and_export(cfg);
    print!("{report}");
    if !report.is_clean() {
        eprintln!("error: gnn-lint found problems; refusing to run");
        std::process::exit(1);
    }
}

/// Runs `f` under a `gnn-obs` collector when the config enables tracing
/// (`--trace <dir>`), then writes `trace.json` + `metrics.jsonl` into the
/// directory and prints a run-wide summary. When the config carries a fault
/// plan (`--faults <plan>`), the plan is armed around `f` and the faults
/// that fired are printed afterwards. Without `--trace` and `--faults` this
/// is exactly `f()` (after the [`lint_gate`], if `--lint` was given).
pub fn traced<T>(cfg: &RunConfig, f: impl FnOnce() -> T) -> T {
    lint_gate(cfg);
    // Arm the fault plan for the whole run; code that arms its own plan
    // (e.g. `gnn_core::sweep`) detects the active injector and reuses it.
    let fault_handle = match &cfg.faults {
        Some(plan) if !gnn_faults::is_active() => Some(gnn_faults::install(plan.clone())),
        _ => None,
    };
    let report_faults = |handle: Option<gnn_faults::InjectorHandle>| {
        if let Some(h) = handle {
            let log = gnn_faults::finish(h);
            if !log.is_empty() {
                println!("faults fired ({}):", log.len());
                for line in log.summary().lines() {
                    println!("  {line}");
                }
            }
        }
    };
    let Some(dir) = cfg.trace.dir() else {
        let out = f();
        report_faults(fault_handle);
        return out;
    };
    let handle = gnn_obs::install(gnn_obs::Collector::new());
    let out = f();
    report_faults(fault_handle);
    let trace = gnn_obs::finish(handle);
    match trace.save(dir) {
        Ok((trace_path, metrics_path)) => {
            println!();
            println!("trace:   {}", trace_path.display());
            println!("metrics: {}", metrics_path.display());
        }
        Err(e) => eprintln!("error: writing trace artifacts to {}: {e}", dir.display()),
    }
    print!("{}", gnn_core::report::run_summary(&trace));
    out
}

/// Parses the process arguments, exiting with usage on error.
pub fn cli_options() -> CliOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--quick|--full|--smoke] [--scale f] [--seed n] [--epochs n] \
                 [--folds n] [--seeds n] [--dataset enzymes|dd] [--metric memory|utilization] \
                 [--trace dir] [--lint] [--faults canonical|seeded:n|path] [--ckpt dir] \
                 [--resume]"
            );
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_to_quick() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.config, RunConfig::quick());
        assert!(o.dataset.is_none());
    }

    #[test]
    fn full_and_overrides() {
        let o = parse_args(&s(&["--full", "--scale", "0.5", "--seed", "7"])).unwrap();
        assert_eq!(o.config.scale, 0.5);
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.config.folds, 10);
    }

    #[test]
    fn dataset_and_metric_lowercased() {
        let o = parse_args(&s(&["--dataset", "DD", "--metric", "Memory"])).unwrap();
        assert_eq!(o.dataset.as_deref(), Some("dd"));
        assert_eq!(o.metric.as_deref(), Some("memory"));
    }

    #[test]
    fn epochs_sets_both_task_caps() {
        let o = parse_args(&s(&["--epochs", "9"])).unwrap();
        assert_eq!(o.config.node_epochs, 9);
        assert_eq!(o.config.graph_epochs, 9);
    }

    #[test]
    fn trace_flag_sets_directory() {
        let o = parse_args(&s(&["--trace", "out/run1"])).unwrap();
        assert!(o.config.trace.enabled());
        assert_eq!(o.config.trace.dir(), Some(std::path::Path::new("out/run1")));
        assert!(parse_args(&s(&["--trace"])).is_err());
    }

    #[test]
    fn artifact_dir_flags_reject_unusable_paths() {
        let dir = std::env::temp_dir().join(format!("gnn_bench_artifact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain.txt");
        std::fs::write(&file, "x").unwrap();
        let blocked = file.join("nested").display().to_string();

        for flag in ["--trace", "--ckpt"] {
            let err = parse_args(&s(&[flag, &blocked])).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains(&blocked), "error must name the path: {err}");
            assert!(err.contains("not a directory"), "{err}");
            let err = parse_serve_args(&s(&[flag, &blocked])).unwrap_err();
            assert!(err.contains(&blocked), "{err}");
        }
        // Good paths still parse, and validation creates nothing.
        let fresh = dir.join("fresh/run");
        let o = parse_args(&s(&["--trace", fresh.to_str().unwrap()])).unwrap();
        assert_eq!(o.config.trace.dir(), Some(fresh.as_path()));
        assert!(!fresh.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lint_flag_is_order_robust() {
        let o = parse_args(&s(&["--lint"])).unwrap();
        assert!(o.config.lint_first);
        let o = parse_args(&s(&["--full", "--lint"])).unwrap();
        assert!(o.config.lint_first);
        assert_eq!(o.config.folds, 10);
        // Preset flags rebuild the config, but --lint survives either way.
        let o = parse_args(&s(&["--lint", "--smoke"])).unwrap();
        assert!(o.config.lint_first);
        assert!(!parse_args(&s(&["--full"])).unwrap().config.lint_first);
    }

    #[test]
    fn faults_flag_parses_all_plan_forms() {
        let o = parse_args(&s(&["--faults", "canonical"])).unwrap();
        assert_eq!(o.config.faults, Some(FaultPlan::canonical()));
        let o = parse_args(&s(&["--faults", "seeded:42"])).unwrap();
        assert_eq!(o.config.faults, Some(FaultPlan::seeded(42)));
        // Plan files round-trip through the plan's own text format.
        let dir = std::env::temp_dir().join("gnn_bench_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        std::fs::write(&path, FaultPlan::seeded(7).to_text()).unwrap();
        let o = parse_args(&s(&["--faults", path.to_str().unwrap()])).unwrap();
        assert_eq!(o.config.faults, Some(FaultPlan::seeded(7)));
        let _ = std::fs::remove_dir_all(&dir);

        assert!(parse_args(&s(&["--faults"])).is_err());
        assert!(parse_args(&s(&["--faults", "seeded:x"])).is_err());
        assert!(parse_args(&s(&["--faults", "/no/such/plan"])).is_err());
        // Order-robust across preset rebuilds, like --lint.
        let o = parse_args(&s(&["--faults", "canonical", "--smoke"])).unwrap();
        assert_eq!(o.config.faults, Some(FaultPlan::canonical()));
    }

    #[test]
    fn resume_implies_a_checkpoint_dir() {
        let o = parse_args(&s(&["--resume"])).unwrap();
        assert!(o.config.resume);
        assert_eq!(
            o.config.ckpt_dir.as_deref(),
            Some(std::path::Path::new("out/ckpt"))
        );
        let o = parse_args(&s(&["--ckpt", "my/ckpts", "--resume"])).unwrap();
        assert_eq!(
            o.config.ckpt_dir.as_deref(),
            Some(std::path::Path::new("my/ckpts"))
        );
        let o = parse_args(&s(&["--ckpt", "my/ckpts"])).unwrap();
        assert!(!o.config.resume, "--ckpt alone must not imply --resume");
    }

    #[test]
    fn serve_args_defaults_and_overrides() {
        let o = parse_serve_args(&[]).unwrap();
        assert_eq!(o.serve.endpoints.len(), 6);
        assert_eq!(o.policies.len(), 3);
        assert_eq!(o.serve.policy, o.policies[0]);
        assert!(!o.lint);
        assert!(o.faults.is_none());

        let o = parse_serve_args(&s(&[
            "--endpoints",
            "table4/Cora/GCN/PyG,table5/DD/MoNet/DGL",
            "--policies",
            "16@4000",
            "--requests",
            "250",
            "--rate",
            "1500",
            "--seed",
            "9",
            "--replicas",
            "3",
            "--queue-cap",
            "64",
            "--lint",
            "--faults",
            "canonical",
            "--trace",
            "out/serve",
        ]))
        .unwrap();
        assert_eq!(o.serve.endpoints.len(), 2);
        assert_eq!(o.endpoints_raw.len(), 2);
        assert_eq!(o.policies.len(), 1);
        assert_eq!(o.serve.policy.max_batch, 16);
        assert!((o.serve.policy.max_delay - 0.004).abs() < 1e-12);
        assert_eq!(o.serve.requests, 250);
        assert_eq!(o.serve.rate, 1500.0);
        assert_eq!(o.serve.seed, 9);
        assert_eq!(o.serve.replicas, 3);
        assert_eq!(o.serve.queue_cap, 64);
        assert!(o.lint);
        assert_eq!(o.faults, Some(FaultPlan::canonical()));
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("out/serve")));

        let o = parse_serve_args(&s(&["--all-endpoints"])).unwrap();
        assert_eq!(o.serve.endpoints.len(), 60);
    }

    #[test]
    fn serve_args_keep_raw_unknown_endpoints_for_lint() {
        let o = parse_serve_args(&s(&["--endpoints", "table4/Cora/GCN/PyG,bogus/cell"])).unwrap();
        assert_eq!(o.endpoints_raw.len(), 2, "raw list keeps the bad entry");
        assert_eq!(o.serve.endpoints.len(), 1, "config keeps what parses");
    }

    #[test]
    fn serve_args_reject_malformed_values() {
        assert!(parse_serve_args(&s(&["--policies", "8"])).is_err());
        assert!(parse_serve_args(&s(&["--policies", "x@10"])).is_err());
        assert!(parse_serve_args(&s(&["--policies", ""])).is_err());
        assert!(parse_serve_args(&s(&["--rate"])).is_err());
        assert!(parse_serve_args(&s(&["--scale", "2.0"])).is_err());
        assert!(parse_serve_args(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn fleet_args_defaults_and_overrides() {
        let o = parse_fleet_args(&[]).unwrap();
        assert_eq!(o.fleet.endpoints.len(), 6);
        assert_eq!(
            o.routings,
            vec![
                gnn_serve::RoutingPolicy::ConsistentHash,
                gnn_serve::RoutingPolicy::LeastLoaded
            ]
        );
        assert_eq!(o.fleet.routing, o.routings[0]);
        assert!(o.fleet.autoscale.is_some());
        assert!(!o.lint);
        assert!(o.faults.is_none());

        let o = parse_fleet_args(&s(&[
            "--endpoints",
            "table4/Cora/GCN/PyG,table5/DD/MoNet/DGL",
            "--shards",
            "4",
            "--replicas",
            "3",
            "--routing",
            "least-loaded",
            "--policy",
            "16@4000",
            "--requests",
            "250",
            "--rate",
            "1500",
            "--seed",
            "9",
            "--queue-cap",
            "64",
            "--admission-cap",
            "96",
            "--retry-budget",
            "0.25",
            "--hedge-after",
            "8000",
            "--no-autoscale",
            "--slo-ms",
            "10",
            "--workload",
            "closed:12@500",
            "--lint",
            "--faults",
            "canonical-fleet",
            "--trace",
            "out/fleet",
        ]))
        .unwrap();
        assert_eq!(o.fleet.endpoints.len(), 2);
        assert_eq!(o.fleet.shards, 4);
        assert_eq!(o.fleet.replicas_per_shard, 3);
        assert_eq!(o.routings, vec![gnn_serve::RoutingPolicy::LeastLoaded]);
        assert_eq!(o.fleet.policy.max_batch, 16);
        assert_eq!(o.fleet.requests, 250);
        assert_eq!(o.fleet.rate, 1500.0);
        assert_eq!(o.fleet.seed, 9);
        assert_eq!(o.fleet.queue_cap, 64);
        assert_eq!(o.fleet.admission_cap, 96);
        assert!((o.fleet.retry_budget - 0.25).abs() < 1e-12);
        assert!((o.fleet.hedge_after.unwrap() - 0.008).abs() < 1e-12);
        assert!(o.fleet.autoscale.is_none());
        assert!((o.fleet.slo_target - 0.010).abs() < 1e-12);
        assert!(matches!(
            o.fleet.workload,
            gnn_serve::FleetWorkload::Closed { clients: 12, .. }
        ));
        assert!(o.lint);
        assert_eq!(o.faults, Some(FaultPlan::canonical_fleet()));
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("out/fleet")));

        let o = parse_fleet_args(&s(&["--hedge-after", "off"])).unwrap();
        assert!(o.fleet.hedge_after.is_none());
    }

    #[test]
    fn fleet_workloads_parse_all_forms() {
        use gnn_serve::{FleetWorkload, WorkloadKind};
        assert_eq!(
            parse_fleet_workload("open").unwrap(),
            FleetWorkload::Open(WorkloadKind::OpenLoop)
        );
        let FleetWorkload::Open(WorkloadKind::Diurnal { period, amplitude }) =
            parse_fleet_workload("diurnal:40@0.8").unwrap()
        else {
            panic!("expected diurnal")
        };
        assert!((period - 0.04).abs() < 1e-12);
        assert!((amplitude - 0.8).abs() < 1e-12);
        let FleetWorkload::Open(WorkloadKind::FlashCrowd { at, width, factor }) =
            parse_fleet_workload("flash:10@5@6").unwrap()
        else {
            panic!("expected flash crowd")
        };
        assert!((at - 0.01).abs() < 1e-12);
        assert!((width - 0.005).abs() < 1e-12);
        assert!((factor - 6.0).abs() < 1e-12);
        assert!(matches!(
            parse_fleet_workload("diurnal").unwrap(),
            FleetWorkload::Open(WorkloadKind::Diurnal { .. })
        ));
        assert!(matches!(
            parse_fleet_workload("flash").unwrap(),
            FleetWorkload::Open(WorkloadKind::FlashCrowd { .. })
        ));
        assert!(parse_fleet_workload("bogus").is_err());
        assert!(parse_fleet_workload("closed:x@500").is_err());
        assert!(parse_fleet_workload("flash:1@2").is_err());
    }

    #[test]
    fn fleet_faults_flag_accepts_the_fleet_plan() {
        let o = parse_fleet_args(&s(&["--faults", "canonical-fleet"])).unwrap();
        assert_eq!(o.faults, Some(FaultPlan::canonical_fleet()));
        let o = parse_args(&s(&["--faults", "canonical-fleet"])).unwrap();
        assert_eq!(o.config.faults, Some(FaultPlan::canonical_fleet()));
        assert!(parse_fleet_args(&s(&["--routing", "random"])).is_err());
        assert!(parse_fleet_args(&s(&["--routing", ""])).is_err());
        assert!(parse_fleet_args(&s(&["--retry-budget"])).is_err());
    }

    #[test]
    fn sample_args_defaults_and_overrides() {
        let o = parse_sample_args(&[]).unwrap();
        assert_eq!(o.specs, vec!["rmat-1m".to_owned()]);
        assert!(o.fanouts.is_empty());
        assert!(o.cache_rows.is_empty());
        assert_eq!(o.epochs, 2);
        assert_eq!(o.out, std::path::PathBuf::from("sample_metrics.csv"));
        assert!(!o.lint);
        assert!(o.faults.is_none());

        let o = parse_sample_args(&s(&[
            "--specs",
            "rmat-4k,rmat-64k",
            "--fanouts",
            "10x5,4x2",
            "--cache-rows",
            "512,64",
            "--epochs",
            "3",
            "--seed",
            "7",
            "--out",
            "out/sample/sample_metrics.csv",
            "--lint",
            "--faults",
            "canonical",
        ]))
        .unwrap();
        assert_eq!(o.specs.len(), 2);
        assert_eq!(o.fanouts, vec![vec![10, 5], vec![4, 2]]);
        assert_eq!(o.cache_rows, vec![512, 64]);
        assert_eq!(o.epochs, 3);
        assert_eq!(o.seed, 7);
        assert!(o.lint);
        assert_eq!(o.faults, Some(FaultPlan::canonical()));
    }

    #[test]
    fn sample_args_reject_malformed_values() {
        assert!(parse_sample_args(&s(&["--fanouts", "10@5"])).is_err());
        assert!(parse_sample_args(&s(&["--fanouts", "axb"])).is_err());
        assert!(parse_sample_args(&s(&["--cache-rows", "x"])).is_err());
        assert!(parse_sample_args(&s(&["--epochs", "0"])).is_err());
        assert!(parse_sample_args(&s(&["--specs", ""])).is_err());
        assert!(parse_sample_args(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--scale", "2.0"])).is_err());
        assert!(parse_args(&s(&["--scale"])).is_err());
    }
}
