//! Reproduces Table IV: node classification on Cora and PubMed — per-epoch
//! and total training time plus test accuracy for six models under both
//! frameworks.

use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    println!(
        "Table IV — node classification (scale = {}, epochs = {}, seeds = {})\n",
        opts.config.scale, opts.config.node_epochs, opts.config.seeds
    );
    let rows = gnn_bench::traced(&opts.config, || runner::table4(&opts.config));
    print!("{}", report::table4_report(&rows));
}
