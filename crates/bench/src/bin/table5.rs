//! Reproduces Table V: graph classification on ENZYMES and DD — per-epoch
//! and total training time plus cross-validated test accuracy.

use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    println!(
        "Table V — graph classification (scale = {}, epoch cap = {}, folds = {})\n",
        opts.config.scale, opts.config.graph_epochs, opts.config.folds
    );
    let rows = gnn_bench::traced(&opts.config, || runner::table5(&opts.config));
    print!("{}", report::table5_report(&rows));
}
