//! Reproduces Figs. 1 and 2: execution-time breakdown per epoch (data
//! loading / forward / backward / update / other) for six models under both
//! frameworks at batch sizes 64/128/256. `--dataset enzymes` gives Fig. 1,
//! `--dataset dd` gives Fig. 2.

use gnn_core::runner::GraphDs;
use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    let (ds, fig) = match opts.dataset.as_deref() {
        None | Some("enzymes") => (GraphDs::Enzymes, "Fig. 1 (ENZYMES)"),
        Some("dd") => (GraphDs::Dd, "Fig. 2 (DD)"),
        Some(other) => {
            eprintln!("error: unknown dataset {other}; use enzymes or dd");
            std::process::exit(2);
        }
    };
    println!(
        "{fig} — epoch-time breakdown (scale = {})\n",
        opts.config.scale
    );
    let rows = gnn_bench::traced(&opts.config, || runner::profile_sweep(&opts.config, ds));
    print!("{}", report::breakdown_report(&rows));
    if let Some(dir) = opts.config.trace.dir() {
        let path = dir.join("kernel_counts.csv");
        match gnn_core::export::write_csv(&path, &gnn_core::export::kernel_counts_csv(&rows)) {
            Ok(()) => println!("kernel counts: {}", path.display()),
            Err(e) => eprintln!("error: writing {}: {e}", path.display()),
        }
    }
}
