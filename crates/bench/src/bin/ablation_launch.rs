//! Ablation: kernel-launch overhead vs GPU utilization.
//!
//! The paper's Section IV-D asks why GNN utilization is so low. This
//! ablation holds the workload fixed (one GCN training batch on ENZYMES)
//! and sweeps the host's kernel-launch overhead in the cost model: GNN
//! training is *launch-bound* — utilization rises sharply as launches get
//! cheaper, which is exactly why kernel fusion and CUDA-graph-style
//! batched launch are the optimizations that matter for GNNs.

use gnn_core::RunConfig;
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, Loader, ModelKind};
use gnn_tensor::cross_entropy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = gnn_bench::cli_options();
    let cfg: RunConfig = opts.config;
    let ds = gnn_core::runner::GraphDs::Enzymes.generate(&cfg);
    let loader = RustygLoader::new(&ds);
    let idx: Vec<u32> = (0..64u32.min(ds.samples.len() as u32)).collect();

    println!("Ablation — launch overhead vs utilization (GCN, one training batch)\n");
    println!(
        "{:>12} {:>12} {:>10}",
        "launch cost", "batch time", "gpu util"
    );

    for launch_us in [0.5f64, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0] {
        let model = gnn_device::CostModel::builder()
            .launch_overhead(launch_us * 1e-6)
            .build();
        let handle = gnn_device::session::install(gnn_device::Session::new(model));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let stack =
            build::graph_model_rustyg(ModelKind::Gcn, ds.feature_dim, ds.num_classes, &mut rng);
        let batch = loader.load(&idx);
        let logits = stack.forward(&batch, true);
        cross_entropy(&logits, &batch.labels).backward();
        let report = gnn_device::session::finish(handle);
        println!(
            "{launch_us:>10.1}us {:>10.2}ms {:>9.1}%",
            report.total_time * 1e3,
            report.utilization() * 100.0
        );
    }
    println!();
    println!("Same kernels, same math — only the launch cost moves. GNN training");
    println!("is launch-bound at CUDA's ~6us, which caps utilization (Fig. 5).");
}
