//! Runs the full fault-isolated paper sweep: every Table IV/V cell (60 in
//! all) under supervised training, finishing the remaining cells even when
//! some fail.
//!
//! This is the chaos-suite entry point: `sweep --faults canonical` must end
//! with every cell `ok` or `degraded`, and `--ckpt <dir>` + `--resume`
//! lets a killed run continue bit-identically. With `--trace <dir>`, the
//! per-cell outcomes are also exported to `<dir>/cell_outcomes.csv` next to
//! the usual trace artifacts.
//!
//! Exits nonzero if any cell failed.

use gnn_core::export::{
    cell_outcomes_csv, check_csv_schema, table4_csv, table5_csv, write_csv, CELL_OUTCOMES_SCHEMA,
};
use gnn_core::report::{sweep_report, table4_report, table5_report};

fn main() {
    let opts = gnn_bench::cli_options();
    let cfg = &opts.config;
    println!(
        "Fault-isolated sweep (scale = {}, node epochs = {}, graph epochs = {}, faults = {})\n",
        cfg.scale,
        cfg.node_epochs,
        cfg.graph_epochs,
        if cfg.faults.is_some() { "armed" } else { "off" },
    );
    let out = gnn_bench::traced(cfg, || gnn_core::sweep(cfg));
    print!("{}", table4_report(&out.table4));
    println!();
    print!("{}", table5_report(&out.table5));
    println!();
    print!("{}", sweep_report(&out));
    if let Some(dir) = cfg.trace.dir() {
        let path = dir.join("cell_outcomes.csv");
        match write_csv(&path, &cell_outcomes_csv(&out.cells)) {
            // Parse the artifact back and assert its schema stamp, so a
            // column drift fails the run here rather than in a consumer.
            Ok(()) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| check_csv_schema(&text, CELL_OUTCOMES_SCHEMA))
            {
                Ok(()) => println!("cells:   {}", path.display()),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    std::process::exit(1);
                }
            },
            Err(e) => eprintln!("error: writing {}: {e}", path.display()),
        }
        let _ = write_csv(&dir.join("table4.csv"), &table4_csv(&out.table4));
        let _ = write_csv(&dir.join("table5.csv"), &table5_csv(&out.table5));
    }
    if !out.all_survived() {
        std::process::exit(1);
    }
}
