//! Ablation: fused GSpMM vs gather+scatter as a function of feature width.
//!
//! DGL's key design bet is kernel fusion; PyG's is thin composable ops with
//! minimal dispatch. This ablation sweeps the feature width of one
//! aggregation over a fixed graph and reports where each lowering wins on
//! the simulated device: at narrow features the extra launch + dispatch
//! dominates (PyG-style wins); at wide features the fused kernel's lower
//! memory traffic wins — until DGL's dispatch overhead eats the margin.

use gnn_graph::Graph;
use gnn_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let _ = gnn_bench::cli_options();
    let mut rng = StdRng::seed_from_u64(0);
    let nodes = 4096;
    let edges = 16384;
    let src: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
    let dst: Vec<u32> = (0..edges).map(|_| rng.gen_range(0..nodes as u32)).collect();
    let g = Graph::new(nodes, src, dst);

    println!("Ablation — aggregation lowering vs feature width");
    println!("(graph: {nodes} nodes, {edges} edges; simulated device time)\n");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "width", "gather+scatter", "fused gspmm", "winner"
    );

    for width in [4usize, 16, 64, 128, 256, 512] {
        let feats = NdArray::from_vec(
            nodes,
            width,
            (0..nodes * width)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let pyg = rustyg::Batch::from_parts(&g, feats.clone(), vec![0; nodes], 1, vec![0]);
        let dgl = rgl::HeteroBatch::from_parts(&g, feats, vec![0; nodes], 1, vec![0]);

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let x = Tensor::new(pyg.x.data().clone());
        let _ = x
            .gather_rows(&pyg.src)
            .scatter_add_rows(&pyg.dst, pyg.num_nodes);
        let t_pyg = gnn_device::session::finish(h).total_time;

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let x = Tensor::new(dgl.x.data().clone());
        let _ = rgl::kernels::gspmm_copy_sum(&dgl, &x);
        let t_dgl = gnn_device::session::finish(h).total_time;

        println!(
            "{width:>6} {:>12.1}us {:>12.1}us {:>8}",
            t_pyg * 1e6,
            t_dgl * 1e6,
            if t_pyg < t_dgl { "unfused" } else { "fused" }
        );
    }
    println!();
    println!("The fused kernel's device-side win grows with width, but DGL's");
    println!("per-op dispatch keeps a fixed tax — the paper's observation that");
    println!("DGL's *key operations* can be faster while its layers are slower.");
}
