//! The regression observatory: runs the canonical performance report and
//! diffs it against the previous checked-in baseline.
//!
//! Trains the six representative sweep cells at a fixed small scale plus
//! the default sampled cells (RMAT neighbor/layer-wise under both
//! frameworks), sweeps the serve batching policies over the same
//! endpoints (sampled ones included), sweeps the fleet routing policies
//! under the canonical fleet chaos plan, and
//! writes a schema-versioned `BENCH_<n>.json` (default `BENCH_10.json`)
//! whose every number is simulated — a rerun with the same flags
//! reproduces the file byte-for-byte, which CI enforces with `cmp`. When
//! a baseline exists (`--baseline <path>`, the highest-numbered other
//! `BENCH_*.json` next to the output, or the output itself before it is
//! overwritten; unreadable candidates — e.g. an older schema version —
//! fall through to the next), the two documents are diffed metric by
//! metric and the process exits nonzero on any regression past
//! `--threshold` (default 5%).
//!
//! Flags: `--out <path>`, `--baseline <path>`, `--threshold <frac>`,
//! `--scale <f>`, `--epochs <n>`, `--seed <n>`, `--requests <n>`,
//! `--rate <req/s>`, `--slo-ms <ms>`, `--no-diff`.

use std::path::{Path, PathBuf};

use gnn_bench::report::{diff_reports, render_diff, resolve_baseline, run_report, ReportConfig};

struct Options {
    cfg: ReportConfig,
    out: PathBuf,
    baseline: Option<PathBuf>,
    threshold: f64,
    diff: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        cfg: ReportConfig::default(),
        out: PathBuf::from("BENCH_10.json"),
        baseline: None,
        threshold: 0.05,
        diff: true,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => o.out = value_of("--out")?.into(),
            "--baseline" => o.baseline = Some(value_of("--baseline")?.into()),
            "--threshold" => {
                o.threshold = value_of("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if o.threshold < 0.0 {
                    return Err("--threshold must be non-negative".into());
                }
            }
            "--scale" => {
                let v: f64 = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(format!("--scale {v} out of (0, 1]"));
                }
                o.cfg.scale = v;
            }
            "--epochs" => {
                o.cfg.epochs = value_of("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--seed" => {
                o.cfg.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--requests" => {
                o.cfg.requests = value_of("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rate" => {
                o.cfg.rate = value_of("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--slo-ms" => {
                let ms: f64 = value_of("--slo-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-ms: {e}"))?;
                o.cfg.slo_target = ms * 1e-3;
            }
            "--no-diff" => o.diff = false,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(o)
}

/// The highest-numbered `BENCH_<n>.json` in `dir` other than `out` —
/// the natural baseline for a report trajectory.
fn discover_baseline(out: &Path) -> Option<PathBuf> {
    // A bare `BENCH_10.json` has an empty parent: scan the current dir.
    let dir = out
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."));
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        if path.file_name() == out.file_name() {
            continue;
        }
        let n = path
            .file_name()
            .and_then(|s| s.to_str())
            .and_then(|name| name.strip_prefix("BENCH_")?.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok());
        let Some(n) = n else { continue };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: report [--out path] [--baseline path] [--threshold frac] \
                 [--scale f] [--epochs n] [--seed n] [--requests n] [--rate req/s] \
                 [--slo-ms ms] [--no-diff]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "Performance report: {} cell(s), {} serve policy(ies), scale {}, {} epoch(s), seed {}\n",
        opts.cfg.cells.len(),
        opts.cfg.policies.len(),
        opts.cfg.scale,
        opts.cfg.epochs,
        opts.cfg.seed,
    );

    // The previous document must be read before the new one overwrites it
    // in place (the usual CI flow regenerates BENCH_10.json on top of the
    // checked-in baseline). Candidates that fail to read or parse —
    // typically an older schema version (a `v2` report without the
    // sampled rows) still checked in for history — fall through to the
    // next one.
    let candidates: Vec<PathBuf> = opts
        .baseline
        .clone()
        .into_iter()
        .chain(discover_baseline(&opts.out))
        .chain(opts.out.exists().then(|| opts.out.clone()))
        .collect();
    let (baseline, warnings) = resolve_baseline(&candidates);
    for w in &warnings {
        eprintln!("warning: {w}");
    }

    let report = run_report(&opts.cfg);
    print!("{}", report.summary());

    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    println!("\nreport: {}", opts.out.display());

    if !opts.diff {
        return;
    }
    let Some((path, previous)) = baseline else {
        println!("no baseline found — skipping diff");
        return;
    };
    println!(
        "diff vs {} (threshold {:.1}%):",
        path.display(),
        opts.threshold * 100.0
    );
    let lines = diff_reports(&previous, &report, opts.threshold);
    print!("{}", render_diff(&lines));
    let regressions = lines.iter().filter(|l| l.regression).count();
    if regressions > 0 {
        eprintln!("error: {regressions} metric(s) regressed past the threshold");
        std::process::exit(1);
    }
    println!("no regressions");
}
