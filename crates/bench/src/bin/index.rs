//! Prints the experiment index: every table/figure of the paper mapped to
//! its workload, implementing modules, and regenerating command.

use gnn_core::experiments::EXPERIMENTS;

fn main() {
    println!("Experiment index — \"Performance Analysis of GNN Frameworks\" (ISPASS 2021)\n");
    for e in &EXPERIMENTS {
        println!("{:?} ({})", e.id, e.paper_ref);
        println!("  workload: {}", e.workload);
        println!("  modules:  {}", e.modules);
        println!("  command:  {}", e.command);
        println!();
    }
}
