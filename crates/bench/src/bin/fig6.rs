//! Reproduces Fig. 6: per-epoch time of data-parallel GCN and GAT training
//! on MNIST superpixels across 1/2/4/8 simulated GPUs, batch 128/256/512.

use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    println!(
        "Fig. 6 — multi-GPU scaling on MNIST (scale = {})\n",
        opts.config.scale
    );
    let rows = gnn_bench::traced(&opts.config, || runner::multi_gpu(&opts.config));
    print!("{}", report::fig6_report(&rows));
}
