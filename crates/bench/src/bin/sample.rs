//! Giant-graph sampled training: sweeps fan-out schedules and feature-cache
//! sizes over seeded RMAT graphs, in both frameworks under both sampler
//! kinds.
//!
//! Each catalog spec (`--specs`, default the million-node `rmat-1m`) is
//! generated once; every (fanouts, cache_rows) variant then trains a
//! GraphSAGE cell per sampler kind per framework with the fault-tolerant
//! supervised runner — `--faults canonical` exercises the same OOM
//! split/retry/poison machinery as the main sweep. Results land in a
//! schema-stamped `sample_metrics.csv` (`--out`); a rerun with the same
//! flags reproduces the file byte-for-byte, which CI enforces with `cmp`.
//!
//! `--lint` audits every variant first (the `sample-config` pass plus IR
//! lowering, tape audit, and closed-form memory certification at the
//! fan-out union bounds) and refuses to run on any finding.
//!
//! Exits nonzero on lint findings, dead cells, or a malformed CSV.

use gnn_bench::sample::{
    check_sample_metrics_schema, expand_variants, run_sample_sweep, write_sample_metrics,
    SampleVariant,
};
use gnn_lint::{audit_tape, certify_sample_cell, check_sample_spec, lower_stack, StackPlan};
use gnn_models::config::{ModelKind, ALL_FRAMEWORKS};
use gnn_sample::{SampleSpec, SamplerKind};

/// Audits every variant: all `sample-config` defects at once, the SAGE
/// lowering's shape/tape findings, and the closed-form memory certificates
/// against both device capacities. Returns the lint report.
fn lint_variants(variants: &[SampleVariant]) -> gnn_lint::LintReport {
    let mut report = gnn_lint::LintReport::default();
    for variant in variants {
        let spec = &variant.spec;
        check_sample_spec(spec, &mut report.findings);
        report.datasets_checked += 1;
        let clean = spec.validate().is_ok();
        for kind in SamplerKind::all() {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::node(
                    ModelKind::Sage,
                    fw,
                    spec.rmat.feature_dim,
                    spec.rmat.num_classes,
                );
                let path = format!(
                    "sample/{}-{}/{}/{}",
                    spec.name,
                    kind.label(),
                    ModelKind::Sage.label(),
                    fw.label()
                );
                let g = lower_stack(&plan, &path);
                report.findings.extend(g.findings.iter().cloned());
                audit_tape(&g, &mut report.findings);
                report.ops_checked += g.nodes.len();
                report.cells_checked += 1;
                // Certify only specs whose parameters make sense — the
                // union bounds of a broken fan-out schedule are garbage.
                if clean {
                    let cert = certify_sample_cell(fw, spec, kind);
                    gnn_lint::memory::check_device_fit(&cert, &mut report.findings);
                }
            }
        }
    }
    report
}

fn resolve_specs(names: &[String]) -> Result<Vec<SampleSpec>, String> {
    names
        .iter()
        .map(|n| SampleSpec::get(n).map_err(|e| e.to_string()))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match gnn_bench::parse_sample_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: sample [--specs name,name,...] [--fanouts AxB,AxB,...] \
                 [--cache-rows n,n,...] [--epochs n] [--seed n] [--out path] \
                 [--lint] [--faults canonical|seeded:n|path]"
            );
            std::process::exit(2);
        }
    };

    let specs = match resolve_specs(&opts.specs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e} (catalog: {})", SampleSpec::names().join(", "));
            std::process::exit(2);
        }
    };
    let variants = expand_variants(&specs, &opts.fanouts, &opts.cache_rows);

    if opts.lint {
        let report = lint_variants(&variants);
        print!("{report}");
        if !report.is_clean() {
            eprintln!("error: gnn-lint found sample-config problems; refusing to run");
            std::process::exit(1);
        }
    }

    println!(
        "Sampled training: {} spec(s), {} variant(s), {} epoch(s), seed {}, faults {}\n",
        specs.len(),
        variants.len(),
        opts.epochs,
        opts.seed,
        if opts.faults.is_some() {
            "armed"
        } else {
            "off"
        },
    );

    let fault_handle = match &opts.faults {
        Some(plan) if !gnn_faults::is_active() => Some(gnn_faults::install(plan.clone())),
        _ => None,
    };

    let (rows, errors) = run_sample_sweep(&variants, opts.epochs, opts.seed);

    println!(
        "{:<9} {:>7} {:>7} {:>10} {:>5} {:>10} {:>8} {:>7} {:>7}",
        "spec", "fanouts", "cache", "sampler", "fw", "epoch ms", "xfer ms", "cache%", "test%"
    );
    for row in &rows {
        println!(
            "{:<9} {:>7} {:>7} {:>10} {:>5} {:>10.2} {:>8.2} {:>7.1} {:>7.1}",
            row.spec,
            row.fanouts,
            row.cache_rows,
            row.sampler,
            row.framework,
            row.epoch_time * 1e3,
            row.transfer_time * 1e3,
            row.cache_hit_rate * 100.0,
            row.test_acc,
        );
    }

    if let Some(h) = fault_handle {
        let log = gnn_faults::finish(h);
        if !log.is_empty() {
            println!("\nfaults fired ({}):", log.len());
            for line in log.summary().lines() {
                println!("  {line}");
            }
        }
    }

    let mut failed = false;
    for e in &errors {
        eprintln!("error: {e}");
        failed = true;
    }

    // Self-check the artifact before declaring success: a column drift
    // fails here rather than in a consumer.
    match write_sample_metrics(&opts.out, &rows) {
        Ok(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| check_sample_metrics_schema(&text))
        {
            Ok(()) => println!("\nmetrics: {}", path.display()),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                failed = true;
            }
        },
        Err(e) => {
            eprintln!("error: writing {}: {e}", opts.out.display());
            failed = true;
        }
    }

    let expected = variants.len() * SamplerKind::all().len() * ALL_FRAMEWORKS.len();
    if rows.len() != expected {
        eprintln!("error: {} of {expected} cell(s) produced rows", rows.len());
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
}
