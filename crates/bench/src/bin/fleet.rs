//! Fleet serving: sweeps routing policies over a sharded fleet of
//! endpoint replicas under a seeded workload and a chaos plan.
//!
//! For each `--routing` entry the engine builds the configured fleet
//! (shards × replicas, health checking, admission control, retry budget,
//! hedging, autoscaling), replays the same seeded arrival process through
//! the router, and prints latency percentiles, SLO attainment, and the
//! resilience counters (sheds, retries, hedges, ejections, failover
//! latency). The same fault plan is re-armed around every policy run, so
//! the policies are compared under identical chaos. With `--trace <dir>`
//! the spans land on the `serve`/`fleet` obs tracks and
//! `<dir>/serve_metrics.csv` gets one aggregate + one per-endpoint row
//! per routing policy.
//!
//! Exits nonzero if any request misses its terminal typed outcome
//! (answered + rejected + shed must equal submitted — zero drops), if the
//! `--lint` gate found a degenerate fleet config, or if the fault plan
//! audit found a spec that can never fire.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match gnn_bench::parse_fleet_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: fleet [--endpoints cell,cell,...] [--all-endpoints] [--shards n] \
                 [--replicas n] [--routing p,p] [--policy b@us] [--requests n] \
                 [--rate req/s] [--seed n] [--scale f] [--queue-cap n] [--admission-cap n] \
                 [--retry-budget frac] [--hedge-after us|off] [--no-autoscale] [--slo-ms ms] \
                 [--workload open|diurnal|flash|closed:c@us] [--ckpt dir] [--trace dir] \
                 [--lint] [--faults canonical|canonical-fleet|seeded:n|path]"
            );
            std::process::exit(2);
        }
    };

    if opts.lint {
        let mut findings = Vec::new();
        gnn_lint::check_fleet_config(&opts.endpoints_raw, &opts.fleet, &mut findings);
        if let Some(plan) = &opts.faults {
            gnn_lint::check_fleet_fault_plan(plan, &opts.fleet, &mut findings);
        }
        let report = gnn_lint::LintReport {
            findings,
            ..Default::default()
        };
        print!("{report}");
        if let Some(dir) = &opts.trace {
            if let Err(e) = report.save(dir) {
                eprintln!("error: writing lint.json to {}: {e}", dir.display());
            }
        }
        if !report.is_clean() {
            eprintln!("error: gnn-lint found fleet-config problems; refusing to serve");
            std::process::exit(1);
        }
    }

    println!(
        "Fleet serving: {} endpoint(s), {} shard(s) x {} replica(s), {} request(s) at \
         {} req/s, seed {}, routing {}, faults {}\n",
        opts.fleet.endpoints.len(),
        opts.fleet.shards,
        opts.fleet.replicas_per_shard,
        opts.fleet.requests,
        opts.fleet.rate,
        opts.fleet.seed,
        opts.routings
            .iter()
            .map(|r| r.label())
            .collect::<Vec<_>>()
            .join(","),
        if opts.faults.is_some() {
            "armed"
        } else {
            "off"
        },
    );

    let obs_handle = opts
        .trace
        .as_ref()
        .map(|_| gnn_obs::install(gnn_obs::Collector::new()));

    let mut reports = Vec::with_capacity(opts.routings.len());
    let mut failed = false;
    for routing in &opts.routings {
        let mut cfg = opts.fleet.clone();
        cfg.routing = *routing;
        // Re-arm the same plan around every policy run: dp-step-indexed
        // faults (replica death) count steps from arming, so each policy
        // faces identical chaos and the comparison stays fair.
        let fault_handle = match &opts.faults {
            Some(plan) if !gnn_faults::is_active() => Some(gnn_faults::install(plan.clone())),
            _ => None,
        };
        let outcome = gnn_serve::serve_fleet(&cfg);
        let log = fault_handle.map(gnn_faults::finish);
        match outcome {
            Ok(report) => {
                print!("{}", report.summary());
                let terminal = report.answered() + report.rejected() + report.shed();
                if terminal != cfg.requests {
                    eprintln!(
                        "error: routing {} dropped {} request(s)",
                        routing.label(),
                        cfg.requests - terminal
                    );
                    failed = true;
                }
                if let Some(fleet) = &report.fleet {
                    let bound = (1.0 + fleet.retry_budget) * fleet.submitted as f64;
                    if fleet.dispatched as f64 > bound + 1e-9 {
                        eprintln!(
                            "error: routing {} amplified: {} dispatched > (1 + {}) x {}",
                            routing.label(),
                            fleet.dispatched,
                            fleet.retry_budget,
                            fleet.submitted
                        );
                        failed = true;
                    }
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("error: routing {}: {e}", routing.label());
                failed = true;
            }
        }
        if let Some(log) = log {
            if !log.is_empty() {
                println!("faults fired ({}):", log.len());
                for line in log.summary().lines() {
                    println!("  {line}");
                }
            }
        }
        println!();
    }

    if let Some(report) = reports.first() {
        if report.restored_endpoints < opts.fleet.endpoints.len() {
            println!(
                "note: {}/{} endpoint(s) restored from checkpoints; the rest serve \
                 their deterministic initialization weights",
                report.restored_endpoints,
                opts.fleet.endpoints.len()
            );
        }
    }

    if let Some(dir) = &opts.trace {
        match gnn_serve::write_serve_metrics(dir, &reports) {
            // Parse the artifact back and assert its schema stamp, so a
            // column drift fails the run here rather than in a consumer.
            Ok(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| gnn_serve::check_serve_metrics_schema(&text))
            {
                Ok(()) => println!("serve:   {}", path.display()),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("error: writing serve_metrics.csv to {}: {e}", dir.display());
                failed = true;
            }
        }
        if let Some(h) = obs_handle {
            let trace = gnn_obs::finish(h);
            match trace.save(dir) {
                Ok((trace_path, metrics_path)) => {
                    println!("trace:   {}", trace_path.display());
                    println!("metrics: {}", metrics_path.display());
                }
                Err(e) => {
                    eprintln!("error: writing trace artifacts to {}: {e}", dir.display());
                    failed = true;
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
