//! Reproduces Fig. 3: layer-wise execution time of training one ENZYMES
//! batch (conv1..conv4 + readout) for six models under both frameworks.

use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    println!(
        "Fig. 3 — layer-wise execution time, one ENZYMES batch (scale = {})\n",
        opts.config.scale
    );
    let rows = gnn_bench::traced(&opts.config, || runner::layer_times(&opts.config));
    print!("{}", report::layer_report(&rows));
}
