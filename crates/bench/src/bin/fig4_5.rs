//! Reproduces Figs. 4 and 5: peak device memory and GPU compute utilization
//! of six models under both frameworks on ENZYMES and DD, batch 64/128/256.
//! `--metric memory` or `--metric utilization` filters the columns.

use gnn_core::report::ResourceMetric;
use gnn_core::runner::GraphDs;
use gnn_core::{report, runner};

fn main() {
    let opts = gnn_bench::cli_options();
    let metric = opts.metric.as_deref().unwrap_or("both");
    let which = match metric {
        "memory" => ResourceMetric::Memory,
        "utilization" => ResourceMetric::Utilization,
        _ => ResourceMetric::Both,
    };
    println!(
        "Figs. 4/5 — {metric} (scale = {}, batch sizes = {:?})\n",
        opts.config.scale, opts.config.batch_sizes
    );
    let rows = gnn_bench::traced(&opts.config, || {
        let mut rows = runner::profile_sweep(&opts.config, GraphDs::Enzymes);
        rows.extend(runner::profile_sweep(&opts.config, GraphDs::Dd));
        rows
    });
    print!("{}", report::resources_report_filtered(&rows, which));
    if let Some(dir) = opts.config.trace.dir() {
        let path = dir.join("kernel_counts.csv");
        match gnn_core::export::write_csv(&path, &gnn_core::export::kernel_counts_csv(&rows)) {
            Ok(()) => println!("kernel counts: {}", path.display()),
            Err(e) => eprintln!("error: writing {}: {e}", path.display()),
        }
    }
}
