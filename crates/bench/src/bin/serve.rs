//! Inference serving: sweeps batching policies over trained sweep cells
//! under a seeded open-loop client workload.
//!
//! For each `--policies` entry the engine loads the configured endpoints
//! (restoring `gnn-ckpt v1` weights from `--ckpt <dir>` when present),
//! replays the same seeded request stream through the dynamic batcher onto
//! the device replicas, and prints latency percentiles, throughput, batch
//! occupancy, and queue depths. With `--trace <dir>` the per-request spans
//! land on the `serve` obs track and `<dir>/serve_metrics.csv` gets one
//! aggregate + one per-endpoint row per policy. `--faults <plan>` arms a
//! fault plan around the whole run: the engine answers every request
//! anyway (OOM split-and-retry, kernel retries, replica shedding).
//!
//! Exits nonzero if any request went unanswered (dropped — must never
//! happen) or the `--lint` gate found a degenerate config.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match gnn_bench::parse_serve_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: serve [--endpoints cell,cell,...] [--all-endpoints] \
                 [--policies b@us,b@us,...] [--requests n] [--rate req/s] [--seed n] \
                 [--scale f] [--queue-cap n] [--replicas n] [--ckpt dir] [--trace dir] \
                 [--lint] [--faults canonical|seeded:n|path]"
            );
            std::process::exit(2);
        }
    };

    if opts.lint {
        let mut findings = Vec::new();
        gnn_lint::check_serve_config(&opts.endpoints_raw, &opts.serve, &mut findings);
        let report = gnn_lint::LintReport {
            findings,
            ..Default::default()
        };
        print!("{report}");
        if let Some(dir) = &opts.trace {
            if let Err(e) = report.save(dir) {
                eprintln!("error: writing lint.json to {}: {e}", dir.display());
            }
        }
        if !report.is_clean() {
            eprintln!("error: gnn-lint found serve-config problems; refusing to serve");
            std::process::exit(1);
        }
    }

    println!(
        "Inference serving: {} endpoint(s), {} request(s) at {} req/s, seed {}, \
         {} replica(s), faults {}\n",
        opts.serve.endpoints.len(),
        opts.serve.requests,
        opts.serve.rate,
        opts.serve.seed,
        opts.serve.replicas,
        if opts.faults.is_some() {
            "armed"
        } else {
            "off"
        },
    );

    let fault_handle = match &opts.faults {
        Some(plan) if !gnn_faults::is_active() => Some(gnn_faults::install(plan.clone())),
        _ => None,
    };
    let obs_handle = opts
        .trace
        .as_ref()
        .map(|_| gnn_obs::install(gnn_obs::Collector::new()));

    let mut reports = Vec::with_capacity(opts.policies.len());
    let mut failed = false;
    for policy in &opts.policies {
        let mut cfg = opts.serve.clone();
        cfg.policy = *policy;
        match gnn_serve::serve(&cfg) {
            Ok(report) => {
                print!("{}", report.summary());
                if report.answered() + report.rejected() != cfg.requests {
                    eprintln!(
                        "error: policy {} dropped {} request(s)",
                        policy.label(),
                        cfg.requests - report.answered() - report.rejected()
                    );
                    failed = true;
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("error: policy {}: {e}", policy.label());
                failed = true;
            }
        }
        println!();
    }

    if let Some(report) = reports.first() {
        if report.restored_endpoints < opts.serve.endpoints.len() {
            println!(
                "note: {}/{} endpoint(s) restored from checkpoints; the rest serve \
                 their deterministic initialization weights",
                report.restored_endpoints,
                opts.serve.endpoints.len()
            );
        }
    }

    if let Some(h) = fault_handle {
        let log = gnn_faults::finish(h);
        if !log.is_empty() {
            println!("faults fired ({}):", log.len());
            for line in log.summary().lines() {
                println!("  {line}");
            }
        }
    }

    if let Some(dir) = &opts.trace {
        match gnn_serve::write_serve_metrics(dir, &reports) {
            // Parse the artifact back and assert its schema stamp, so a
            // column drift fails the run here rather than in a consumer.
            Ok(path) => match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| gnn_serve::check_serve_metrics_schema(&text))
            {
                Ok(()) => println!("serve:   {}", path.display()),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("error: writing serve_metrics.csv to {}: {e}", dir.display());
                failed = true;
            }
        }
        if let Some(h) = obs_handle {
            let trace = gnn_obs::finish(h);
            match trace.save(dir) {
                Ok((trace_path, metrics_path)) => {
                    println!("trace:   {}", trace_path.display());
                    println!("metrics: {}", metrics_path.display());
                }
                Err(e) => {
                    eprintln!("error: writing trace artifacts to {}: {e}", dir.display());
                    failed = true;
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
