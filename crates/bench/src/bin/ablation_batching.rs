//! Ablation: standard per-epoch collation vs pre-collated (cached) batches.
//!
//! The paper's conclusion argues "more efficient graph batching strategies
//! will greatly speed up GNN training". This ablation quantifies the claim:
//! the same GCN trained on ENZYMES with the ordinary PyG-style loader and
//! with a pre-collating loader that replays device-resident batches. The
//! data-loading phase collapses, epoch time drops by its share, and GPU
//! utilization rises.

use gnn_core::RunConfig;
use gnn_datasets::stratified_kfold;
use gnn_models::adapt::{CachedRustygLoader, RustygLoader};
use gnn_models::{build, ModelKind};
use gnn_train::{run_graph_fold, GraphTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = gnn_bench::cli_options();
    let cfg: RunConfig = opts.config;
    let ds = gnn_core::runner::GraphDs::Enzymes.generate(&cfg);
    let folds = stratified_kfold(&ds.labels(), 10, cfg.seed);
    let fold = &folds[0];

    println!(
        "Ablation — batching strategy (GCN on ENZYMES, scale = {})\n",
        cfg.scale
    );
    println!(
        "{:<14} {:>10} {:>11} {:>10} {:>9}",
        "loader", "epoch", "data_load", "compute", "gpu util"
    );

    let task = GraphTaskConfig {
        batch_size: 64.min(fold.train.len().max(1)),
        init_lr: 1e-3,
        patience: 1000,
        decay_factor: 0.5,
        min_lr: 1e-9,
        max_epochs: cfg.graph_epochs.clamp(2, 4),
        seed: cfg.seed,
        shuffle: true,
    };

    let mut standard_epoch = 0.0;
    for (name, cached) in [("standard", false), ("pre-collated", true)] {
        let mut rng = StdRng::seed_from_u64(cfg.seed + 1);
        let model =
            build::graph_model_rustyg(ModelKind::Gcn, ds.feature_dim, ds.num_classes, &mut rng);
        let out = if cached {
            let loader = CachedRustygLoader::new(&ds);
            run_graph_fold(&model, &loader, fold, &task)
        } else {
            let loader = RustygLoader::new(&ds);
            run_graph_fold(&model, &loader, fold, &task)
        };
        let e = out.epochs.max(1) as f64;
        let load = out.report.phase_times[0] / e;
        let compute = (out.report.phase_times[1] + out.report.phase_times[2]) / e;
        println!(
            "{name:<14} {:>8.1}ms {:>9.1}ms {:>8.1}ms {:>8.1}%",
            out.epoch_time * 1e3,
            load * 1e3,
            compute * 1e3,
            out.report.utilization() * 100.0
        );
        if !cached {
            standard_epoch = out.epoch_time;
        } else {
            println!(
                "\npre-collation speeds the epoch up {:.2}x — the paper's suggested win.",
                standard_epoch / out.epoch_time
            );
        }
    }
}
