//! Ablation: overlapping data loading with device compute.
//!
//! The paper's Section IV-D points out that low GPU utilization means
//! "further improvement can be achieved by overlapping CPU runtime or data
//! communication with GPU execution". This ablation measures each model's
//! per-batch load and compute cost on ENZYMES under both frameworks and
//! reports the epoch time with and without a double-buffered prefetch
//! pipeline.

use gnn_core::runner::GraphDs;
use gnn_core::RunConfig;
use gnn_device::pipeline::{pipeline_speedup, pipelined_epoch_time, serial_epoch_time};
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{build, FrameworkKind, Loader, ModelBatch};
use gnn_tensor::cross_entropy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure<L: Loader>(
    stack: &gnn_models::GnnStack<L::Batch>,
    loader: &L,
    idx: &[u32],
) -> (f64, f64) {
    let h =
        gnn_device::session::install(gnn_device::Session::new(gnn_device::CostModel::rtx2080ti()));
    let batch = loader.load(idx);
    let mut load = 0.0;
    gnn_device::with(|s| load = s.now());
    let logits = stack.forward(&batch, true);
    cross_entropy(&logits, batch.labels()).backward();
    let report = gnn_device::session::finish(h);
    for p in stack.params() {
        p.zero_grad();
    }
    (load, report.total_time - load)
}

fn main() {
    let opts = gnn_bench::cli_options();
    let cfg: RunConfig = opts.config;
    let ds = GraphDs::Enzymes.generate(&cfg);
    let batch: Vec<u32> = (0..64u32.min(ds.samples.len() as u32)).collect();
    let n_batches = 8;

    println!(
        "Ablation — prefetch overlap on ENZYMES (batch {}, {} batches/epoch)\n",
        batch.len(),
        n_batches
    );
    println!(
        "{:<10} {:<5} {:>9} {:>10} {:>11} {:>11} {:>8}",
        "model", "fw", "load", "compute", "serial", "pipelined", "speedup"
    );
    for model in gnn_models::config::ALL_MODELS {
        for fw in gnn_models::config::ALL_FRAMEWORKS {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let (load, compute) = match fw {
                FrameworkKind::RustyG => {
                    let stack =
                        build::graph_model_rustyg(model, ds.feature_dim, ds.num_classes, &mut rng);
                    measure(&stack, &RustygLoader::new(&ds), &batch)
                }
                FrameworkKind::Rgl => {
                    let stack =
                        build::graph_model_rgl(model, ds.feature_dim, ds.num_classes, &mut rng);
                    measure(&stack, &RglLoader::new(&ds), &batch)
                }
            };
            println!(
                "{:<10} {:<5} {:>7.1}ms {:>8.1}ms {:>9.1}ms {:>9.1}ms {:>7.2}x",
                model.label(),
                fw.label(),
                load * 1e3,
                compute * 1e3,
                serial_epoch_time(load, compute, n_batches) * 1e3,
                pipelined_epoch_time(load, compute, n_batches) * 1e3,
                pipeline_speedup(load, compute, n_batches)
            );
        }
    }
    println!();
    println!("Loading dominates, so the pipeline hides most of the compute — but");
    println!("the loader itself remains the bottleneck: pre-collation (see");
    println!("ablation_batching) attacks the root cause, prefetch only the overlap.");
}
