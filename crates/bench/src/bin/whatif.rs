//! The causal what-if profiler: virtual-speedup experiments over the
//! recorded device timeline, with ranked optimization opportunities.
//!
//! Trains the configured cells once under an observability collector,
//! replays every (component, speedup) experiment over the captured
//! schedule, re-simulates every serve policy under every speedup through
//! the discrete-event engine, and writes a schema-versioned, byte-
//! reproducible `whatif.json` plus a ranked opportunity table on stdout.
//! The predictions pass the `gnn-lint` what-if audit before anything is
//! published, and `--conformance` really re-runs sampled experiments
//! under overlaid cost models and refuses to pass unless predictions
//! match measurements exactly.
//!
//! Flags: `--out <path>` (default `out/whatif/whatif.json`),
//! `--cells <cell,cell,...>`, `--all-cells` (the full 60-cell sweep),
//! `--scale <f>`, `--epochs <n>`, `--seed <n>`,
//! `--policies <b@us,b@us,...>`, `--requests <n>`, `--rate <req/s>`,
//! `--slo-ms <ms>`, `--conformance`.

use std::path::PathBuf;

use gnn_bench::whatif::{
    audit_whatif, run_conformance, run_serve_conformance, run_whatif, ConformanceRecord,
    WhatIfConfig,
};
use gnn_device::component_label;
use gnn_serve::CellId;

struct Options {
    cfg: WhatIfConfig,
    out: PathBuf,
    conformance: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        cfg: WhatIfConfig::default(),
        out: PathBuf::from("out/whatif/whatif.json"),
        conformance: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => o.out = value_of("--out")?.into(),
            "--cells" => {
                o.cfg.cells = value_of("--cells")?
                    .split(',')
                    .map(|p| CellId::parse(p).map_err(|e| format!("--cells: {e}")))
                    .collect::<Result<_, _>>()?;
                if o.cfg.cells.is_empty() {
                    return Err("--cells needs at least one cell".into());
                }
            }
            "--all-cells" => o.cfg.cells = CellId::all().to_vec(),
            "--scale" => {
                let v: f64 = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(format!("--scale {v} out of (0, 1]"));
                }
                o.cfg.scale = v;
            }
            "--epochs" => {
                o.cfg.epochs = value_of("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--seed" => {
                o.cfg.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--policies" => {
                o.cfg.policies = value_of("--policies")?
                    .split(',')
                    .map(parse_policy)
                    .collect::<Result<_, _>>()?;
                if o.cfg.policies.is_empty() {
                    return Err("--policies needs at least one policy".into());
                }
            }
            "--requests" => {
                o.cfg.requests = value_of("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rate" => {
                o.cfg.rate = value_of("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--slo-ms" => {
                let ms: f64 = value_of("--slo-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-ms: {e}"))?;
                o.cfg.slo_target = ms * 1e-3;
            }
            "--conformance" => o.conformance = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(o)
}

fn parse_policy(spec: &str) -> Result<gnn_serve::BatchPolicy, String> {
    let (batch, delay) = spec
        .split_once('@')
        .ok_or_else(|| format!("policy `{spec}` must be <max_batch>@<delay_us>"))?;
    let max_batch: usize = batch
        .parse()
        .map_err(|e| format!("policy `{spec}` max_batch: {e}"))?;
    let delay_us: f64 = delay
        .parse()
        .map_err(|e| format!("policy `{spec}` delay_us: {e}"))?;
    Ok(gnn_serve::BatchPolicy {
        max_batch,
        max_delay: delay_us * 1e-6,
    })
}

/// Prints a conformance table and returns how many records missed.
fn gate_conformance(title: &str, records: &[ConformanceRecord]) -> usize {
    println!("{title}:");
    let mut misses = 0;
    for r in records {
        let err = r.relative_error();
        // The replay is exact; anything past float-noise scale is a miss
        // (the acceptance bar is 1%, the engine holds itself to 1e-9).
        let ok = err <= 1e-9;
        if !ok {
            misses += 1;
        }
        println!(
            "  {} {:<28} {:<12} {:>5}x predicted {:.9e} actual {:.9e} (rel err {:.2e})",
            if ok { "ok  " } else { "MISS" },
            r.subject,
            component_label(r.component),
            r.speedup,
            r.predicted,
            r.actual,
            err,
        );
    }
    misses
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: whatif [--out path] [--cells c,c,...|--all-cells] [--scale f] \
                 [--epochs n] [--seed n] [--policies b@us,...] [--requests n] \
                 [--rate req/s] [--slo-ms ms] [--conformance]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = gnn_core::ensure_artifact_path(&opts.out) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }

    println!(
        "Causal what-if profile: {} cell(s), {} serve policy(ies), scale {}, {} epoch(s), seed {}\n",
        opts.cfg.cells.len(),
        opts.cfg.policies.len(),
        opts.cfg.scale,
        opts.cfg.epochs,
        opts.cfg.seed,
    );

    let report = run_whatif(&opts.cfg);

    let findings = audit_whatif(&report);
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "error: {} what-if prediction(s) violate their own physics; refusing to publish",
            findings.len()
        );
        std::process::exit(1);
    }

    print!("{}", report.summary());
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    println!("\nwhatif: {}", opts.out.display());

    if !opts.conformance {
        return;
    }
    println!();
    let misses = gate_conformance(
        "conformance (cells: predicted vs re-trained total time)",
        &run_conformance(&opts.cfg, &report),
    ) + gate_conformance(
        "conformance (serve: predicted vs re-served p95)",
        &run_serve_conformance(&opts.cfg, &report),
    );
    if misses > 0 {
        eprintln!("error: {misses} conformance record(s) diverged from reality");
        std::process::exit(1);
    }
    println!("conformance: every prediction matched its re-run");
}
