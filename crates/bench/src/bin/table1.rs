//! Reproduces Table I: dataset statistics.

use gnn_core::runner;

fn main() {
    let opts = gnn_bench::cli_options();
    // table1 never enters a traced run, so apply the --lint gate directly.
    gnn_bench::lint_gate(&opts.config);
    println!(
        "Table I — dataset statistics (scale = {})\n",
        opts.config.scale
    );
    let rows = runner::table1(&opts.config);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.num_graphs.to_string(),
                format!("{:.2}", r.avg_nodes),
                format!("{:.2}", r.avg_edges),
                r.feature_dim.to_string(),
                r.num_classes.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        gnn_core::render_table(
            &[
                "Dataset",
                "#Graph",
                "#Nodes(Avg.)",
                "#Edges(Avg.)",
                "#Feature",
                "#Classes"
            ],
            &body
        )
    );
}
