//! The causal what-if profiler behind `gnn-bench whatif`.
//!
//! A coz-style profiler answers "what would speeding component X up by k×
//! do to the *end-to-end* number?" — which is not proportional to X's
//! share of the time, because components overlap (kernels hide behind
//! host work and vice versa) and queues re-equilibrate. This harness runs
//! virtual-speedup experiments over the study's deterministic timeline:
//!
//! - **Training cells**: each configured sweep cell trains once under an
//!   observability collector, capturing the device session's full
//!   schedule ([`gnn_obs::whatif::SchedOp`] stream). For every what-if
//!   component (the 11 priced kernel kinds, the launch overhead, and pure
//!   host work) and every factor in [`SPEEDUP_GRID`], the schedule is
//!   replayed with that component's costs divided by the factor.
//! - **Serve policies**: latency percentiles under a speedup cannot be
//!   scaled naively — faster service drains queues sooner, changing batch
//!   compositions. Each policy's what-if goes through
//!   [`gnn_serve::predict`], which re-simulates the real dispatch loop
//!   with replayed-from-capture service times.
//!
//! Because the cost model applies an overlaid speedup as the same final
//! division the replay performs (`gnn_device::CostModel::with_speedups`),
//! every prediction is **bit-identical** to actually re-running with the
//! overlay — not a model, a replay. [`run_conformance`] and
//! [`run_serve_conformance`] hold the published numbers to that by really
//! re-running cells and policies under overlaid cost models.
//!
//! The resulting [`WhatIfReport`] renders to a schema-versioned,
//! byte-reproducible `whatif.json` ([`WHATIF_SCHEMA`]); speedup factors
//! are encoded as string labels because `inf` is not a JSON number. A
//! ranked opportunity table ([`Opportunity`]) orders components by their
//! predicted end-to-end win at the reference 2× speedup, with each
//! component's roofline bound attributed from the aggregate hardware
//! counters. Before publishing, predictions pass the `gnn-lint` what-if
//! audit ([`audit_whatif`]): never slower than base, monotone in the
//! factor, savings within critical-path budgets.

use gnn_device::{
    component_label, CostModel, Speedups, COMPONENT_HOST, COMPONENT_LAUNCH, PRICED_KINDS,
    WHATIF_COMPONENTS,
};
use gnn_lint::report::Finding;
use gnn_lint::whatif_check::{check_whatif, WhatIfCellAudit};
use gnn_obs::whatif::{component_budgets, replay_schedule, SchedEntry};
use gnn_obs::{self as obs, json, Value};
use gnn_serve::{BatchPolicy, CellId, ServeConfig, ServeReport};

use crate::report::train_cell;

/// Schema tag every what-if document carries; bumped on breaking change.
pub const WHATIF_SCHEMA: &str = "gnn-whatif/v1";

/// The virtual speedup factors every component is tried at. `INFINITY`
/// removes the component entirely — the theoretical ceiling.
pub const SPEEDUP_GRID: [f64; 5] = [1.1, 1.25, 1.5, 2.0, f64::INFINITY];

/// The grid factor opportunities are ranked at: 2× is the conventional
/// "what a focused optimization effort plausibly buys" reference point.
pub const REFERENCE_SPEEDUP: f64 = 2.0;

/// Stable string label of a grid factor (`inf` for `INFINITY`) — the JSON
/// encoding, since infinity is not a valid JSON number.
///
/// # Panics
///
/// Panics on a factor outside [`SPEEDUP_GRID`].
pub fn speedup_label(k: f64) -> &'static str {
    if k == 1.1 {
        "1.1"
    } else if k == 1.25 {
        "1.25"
    } else if k == 1.5 {
        "1.5"
    } else if k == 2.0 {
        "2"
    } else if k == f64::INFINITY {
        "inf"
    } else {
        panic!("speedup {k} is not on the what-if grid")
    }
}

/// Inverse of [`speedup_label`].
pub fn parse_speedup(label: &str) -> Option<f64> {
    SPEEDUP_GRID
        .iter()
        .copied()
        .find(|&k| speedup_label(k) == label)
}

/// Component index of a [`component_label`] string.
pub fn component_from_label(label: &str) -> Option<usize> {
    (0..WHATIF_COMPONENTS).find(|&c| component_label(c) == label)
}

/// What one what-if profiling run covers. Mirrors the report harness's
/// knobs: the same cells, scale, and serve sweep, so predictions line up
/// with the regression observatory's numbers.
#[derive(Debug, Clone)]
pub struct WhatIfConfig {
    /// Cells to profile (the representative six by default; `--all-cells`
    /// covers the full 60-cell sweep).
    pub cells: Vec<CellId>,
    /// Dataset scale factor.
    pub scale: f64,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Generation / workload seed.
    pub seed: u64,
    /// Serve batching policies to what-if.
    pub policies: Vec<BatchPolicy>,
    /// Requests per serve policy simulation.
    pub requests: usize,
    /// Serve arrival rate, requests per simulated second.
    pub rate: f64,
    /// SLO latency target in simulated seconds.
    pub slo_target: f64,
}

impl Default for WhatIfConfig {
    fn default() -> Self {
        WhatIfConfig {
            cells: gnn_serve::default_endpoints(),
            scale: 0.05,
            epochs: 2,
            seed: 0,
            policies: vec![
                BatchPolicy {
                    max_batch: 1,
                    max_delay: 0.0,
                },
                BatchPolicy {
                    max_batch: 4,
                    max_delay: 0.001,
                },
                BatchPolicy {
                    max_batch: 8,
                    max_delay: 0.002,
                },
            ],
            requests: 120,
            rate: 2000.0,
            slo_target: 0.005,
        }
    }
}

/// One virtual-speedup experiment's outcome for a training cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPrediction {
    /// What-if component index (see [`component_label`]).
    pub component: usize,
    /// Virtual speedup factor (a [`SPEEDUP_GRID`] entry).
    pub speedup: f64,
    /// Predicted end-to-end session time in simulated seconds.
    pub predicted_total: f64,
    /// Predicted per-epoch time (`predicted_total / epochs`).
    pub predicted_epoch: f64,
}

/// One cell's what-if profile: base measurement, per-component budgets,
/// and the full grid of predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct CellWhatIf {
    /// Cell path, e.g. `table4/Cora/GCN/PyG`.
    pub cell: String,
    /// Epochs trained (the divisor behind per-epoch numbers).
    pub epochs: usize,
    /// Measured end-to-end session time under the base cost model. This
    /// is the device session horizon — setup included — which is what the
    /// replay predicts exactly; it differs from the report harness's
    /// epoch-sum by the pre-loop setup time.
    pub base_total_time: f64,
    /// `base_total_time / epochs`.
    pub base_epoch_time: f64,
    /// Total recorded base cost per component: the ceiling on any
    /// speedup's achievable saving.
    pub budgets: [f64; WHATIF_COMPONENTS],
    /// Predictions in (component, grid) order: 13 × 5 entries.
    pub predictions: Vec<CellPrediction>,
}

/// Latency/SLO numbers of one (real or predicted) serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLatency {
    /// Median enqueue-to-reply latency, simulated seconds.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Fraction of submitted requests answered within the SLO target.
    pub slo_attainment: f64,
    /// Served requests per simulated second.
    pub throughput: f64,
    /// End-to-end simulated makespan of the serve run.
    pub makespan: f64,
}

impl ServeLatency {
    fn of(report: &ServeReport, slo_target: f64) -> Self {
        let (p50, p95, p99) = report.latency_percentiles();
        ServeLatency {
            p50,
            p95,
            p99,
            slo_attainment: report.slo_attainment(slo_target),
            throughput: report.throughput(),
            makespan: report.makespan,
        }
    }
}

/// One virtual-speedup experiment's outcome for a serve policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePrediction {
    /// What-if component index.
    pub component: usize,
    /// Virtual speedup factor.
    pub speedup: f64,
    /// Predicted latency/SLO numbers with queue dynamics re-simulated.
    pub latency: ServeLatency,
}

/// One serve policy's what-if profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWhatIf {
    /// Policy label, e.g. `b8/d2000us`.
    pub policy: String,
    /// The identity prediction — bit-identical to the real run.
    pub base: ServeLatency,
    /// Predictions in (component, grid) order: 13 × 5 entries.
    pub predictions: Vec<ServePrediction>,
}

/// One ranked optimization opportunity: what optimizing a component is
/// predicted to buy end-to-end, and what physically limits the component.
#[derive(Debug, Clone, PartialEq)]
pub struct Opportunity {
    /// What-if component index.
    pub component: usize,
    /// The reference factor the ranking uses ([`REFERENCE_SPEEDUP`]).
    pub speedup: f64,
    /// Predicted end-to-end seconds saved across all profiled cells at
    /// the reference speedup.
    pub predicted_win: f64,
    /// `predicted_win` as a fraction of total base time.
    pub win_fraction: f64,
    /// Seconds saved at infinite speedup — the theoretical ceiling.
    pub ceiling: f64,
    /// Roofline bound of the component from the aggregate hardware
    /// counters: `compute`, `bandwidth`, or `overhead` for kernel kinds
    /// (per-kernel fixed cost dominating), `host` for the launch and
    /// host-work levers (they are host-side by construction).
    pub bound: String,
}

/// The full what-if document.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// Schema tag ([`WHATIF_SCHEMA`]).
    pub schema: String,
    /// Config echo: scale, epochs, seed, requests, rate, SLO target.
    pub config: Vec<(String, f64)>,
    /// One entry per profiled cell, in config order.
    pub cells: Vec<CellWhatIf>,
    /// One entry per serve policy, in config order.
    pub serve: Vec<ServeWhatIf>,
    /// Opportunities ranked by `predicted_win`, descending.
    pub opportunities: Vec<Opportunity>,
}

/// Per-kind aggregate counters across all profiled cells, for roofline
/// attribution of the opportunity table.
#[derive(Debug, Clone, Copy, Default)]
struct KindAggregate {
    flops: u64,
    bytes: u64,
    launches: u64,
}

/// Captures one cell: trains it under an observability collector with the
/// base cost model and returns the recorded schedule plus the device
/// report. The capture must not run inside another collector (it installs
/// its own).
fn capture_cell(cell: &CellId, cfg: &WhatIfConfig) -> (Vec<SchedEntry>, gnn_device::DeviceReport) {
    let handle = obs::install(obs::Collector::new());
    let (_, _, dev) = train_cell(cell, cfg.scale, cfg.epochs, cfg.seed);
    let trace = obs::finish(handle);
    (trace.schedule, dev)
}

/// Roofline bound of one kernel-kind component from its aggregate
/// counters under `model`.
fn kind_bound(model: &CostModel, component: usize, agg: &KindAggregate) -> &'static str {
    let kind = PRICED_KINDS[component];
    let (flops_eff, bw_eff) = model.efficiency(kind);
    let compute = agg.flops as f64 / (model.peak_flops * flops_eff);
    let traffic = agg.bytes as f64 / (model.peak_bw * bw_eff);
    let overhead = agg.launches as f64 * model.kernel_overhead;
    if overhead >= compute.max(traffic) {
        "overhead"
    } else if compute >= traffic {
        "compute"
    } else {
        "bandwidth"
    }
}

/// Runs the full what-if profile: captures every configured cell once,
/// replays all virtual-speedup experiments, re-simulates every serve
/// policy under every speedup, and ranks the opportunities.
/// Deterministic: every number is simulated or replayed, so the same
/// config yields the same report — byte-for-byte once rendered.
///
/// # Panics
///
/// Panics if a configured cell names an unknown dataset, a serve
/// prediction fails (both indicate a broken config), or a captured
/// schedule fails its identity cross-check against the measured session
/// horizon (which would indicate the capture ran inside another
/// collector, or a session the runner did not report).
pub fn run_whatif(cfg: &WhatIfConfig) -> WhatIfReport {
    let identity = Speedups::identity();
    let mut cells = Vec::with_capacity(cfg.cells.len());
    let mut aggregates = [KindAggregate::default(); PRICED_KINDS.len()];
    for cell in &cfg.cells {
        let (schedule, dev) = capture_cell(cell, cfg);
        // The whole method stands on this: replaying the capture with no
        // speedup must reproduce the measured horizon bit for bit.
        let replay_base = replay_schedule(&schedule, &identity);
        assert_eq!(
            replay_base.total.to_bits(),
            dev.total_time.to_bits(),
            "{}: identity replay diverged from the measured session horizon",
            cell.path()
        );
        for profile in &dev.profile {
            if let Some(i) = PRICED_KINDS.iter().position(|&k| k == profile.kind) {
                aggregates[i].flops += profile.flops;
                aggregates[i].bytes += profile.bytes;
                aggregates[i].launches += profile.launches;
            }
        }
        let epochs = cfg.epochs.max(1);
        let mut predictions = Vec::with_capacity(WHATIF_COMPONENTS * SPEEDUP_GRID.len());
        for component in 0..WHATIF_COMPONENTS {
            for k in SPEEDUP_GRID {
                let replayed = replay_schedule(&schedule, &Speedups::component(component, k));
                predictions.push(CellPrediction {
                    component,
                    speedup: k,
                    predicted_total: replayed.total,
                    predicted_epoch: replayed.total / epochs as f64,
                });
            }
        }
        cells.push(CellWhatIf {
            cell: cell.path(),
            epochs,
            base_total_time: dev.total_time,
            base_epoch_time: dev.total_time / epochs as f64,
            budgets: component_budgets(&schedule),
            predictions,
        });
    }

    let mut serve = Vec::with_capacity(cfg.policies.len());
    for policy in &cfg.policies {
        let scfg = serve_config(cfg, *policy);
        let base_report =
            gnn_serve::predict(&scfg, &identity).expect("serve what-if base run failed");
        let mut predictions = Vec::with_capacity(WHATIF_COMPONENTS * SPEEDUP_GRID.len());
        for component in 0..WHATIF_COMPONENTS {
            for k in SPEEDUP_GRID {
                let report = gnn_serve::predict(&scfg, &Speedups::component(component, k))
                    .expect("serve what-if prediction failed");
                predictions.push(ServePrediction {
                    component,
                    speedup: k,
                    latency: ServeLatency::of(&report, cfg.slo_target),
                });
            }
        }
        serve.push(ServeWhatIf {
            policy: policy.label(),
            base: ServeLatency::of(&base_report, cfg.slo_target),
            predictions,
        });
    }

    let opportunities = rank_opportunities(&cells, &aggregates);
    WhatIfReport {
        schema: WHATIF_SCHEMA.to_owned(),
        config: vec![
            ("scale".to_owned(), cfg.scale),
            ("epochs".to_owned(), cfg.epochs as f64),
            ("seed".to_owned(), cfg.seed as f64),
            ("requests".to_owned(), cfg.requests as f64),
            ("rate".to_owned(), cfg.rate),
            ("slo_target".to_owned(), cfg.slo_target),
        ],
        cells,
        serve,
        opportunities,
    }
}

/// The serve config one policy's what-ifs run under: the profiled cells
/// as endpoints, same seed and scale.
pub fn serve_config(cfg: &WhatIfConfig, policy: BatchPolicy) -> ServeConfig {
    ServeConfig {
        endpoints: cfg.cells.clone(),
        requests: cfg.requests,
        rate: cfg.rate,
        seed: cfg.seed,
        policy,
        scale: cfg.scale,
        ..ServeConfig::default()
    }
}

fn rank_opportunities(cells: &[CellWhatIf], aggregates: &[KindAggregate]) -> Vec<Opportunity> {
    let model = gnn_device::default_cost_model();
    let total_base: f64 = cells.iter().map(|c| c.base_total_time).sum();
    let saving_at = |component: usize, k: f64| -> f64 {
        cells
            .iter()
            .map(|c| {
                let p = c
                    .predictions
                    .iter()
                    .find(|p| p.component == component && p.speedup == k)
                    .expect("prediction grid is complete");
                c.base_total_time - p.predicted_total
            })
            .sum()
    };
    let mut opportunities: Vec<Opportunity> = (0..WHATIF_COMPONENTS)
        .map(|component| {
            let predicted_win = saving_at(component, REFERENCE_SPEEDUP);
            let bound = if component == COMPONENT_LAUNCH || component == COMPONENT_HOST {
                "host".to_owned()
            } else {
                kind_bound(&model, component, &aggregates[component]).to_owned()
            };
            Opportunity {
                component,
                speedup: REFERENCE_SPEEDUP,
                predicted_win,
                win_fraction: if total_base > 0.0 {
                    predicted_win / total_base
                } else {
                    0.0
                },
                ceiling: saving_at(component, f64::INFINITY),
                bound,
            }
        })
        .collect();
    // Descending by win; component index breaks exact ties so the order —
    // and therefore the rendered document — is total and reproducible.
    opportunities.sort_by(|a, b| {
        b.predicted_win
            .partial_cmp(&a.predicted_win)
            .expect("wins are finite")
            .then(a.component.cmp(&b.component))
    });
    opportunities
}

/// Distills a report into the plain-data form the `gnn-lint` what-if
/// audit consumes and runs the audit: predictions must never be slower
/// than base, must be monotone in the factor, and must not claim savings
/// past critical-path budgets. An empty result means the report passed.
pub fn audit_whatif(report: &WhatIfReport) -> Vec<Finding> {
    let cells: Vec<WhatIfCellAudit> = report
        .cells
        .iter()
        .map(|c| WhatIfCellAudit {
            cell: c.cell.clone(),
            base_total: c.base_total_time,
            budgets: c.budgets,
            predictions: c
                .predictions
                .iter()
                .map(|p| (p.component, p.speedup, p.predicted_total))
                .collect(),
        })
        .collect();
    let mut findings = Vec::new();
    check_whatif(&cells, &mut findings);
    findings
}

/// One prediction-vs-reality comparison from a conformance pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceRecord {
    /// Cell path or serve policy label.
    pub subject: String,
    /// What-if component index.
    pub component: usize,
    /// Virtual speedup factor.
    pub speedup: f64,
    /// What the profiler predicted.
    pub predicted: f64,
    /// What a real re-run under the overlaid cost model measured.
    pub actual: f64,
}

impl ConformanceRecord {
    /// Relative error of the prediction (0 when both are 0).
    pub fn relative_error(&self) -> f64 {
        if self.actual == 0.0 {
            self.predicted.abs()
        } else {
            (self.predicted - self.actual).abs() / self.actual.abs()
        }
    }
}

/// Conformance pass over the training cells: for each cell, picks one
/// (component, factor) experiment — rotating through the grid by cell
/// index, so a full 60-cell run samples every component and factor
/// several times over — really re-trains the cell under the overlaid
/// cost model, and records predicted vs measured end-to-end time. The
/// replay is exact, so the two must agree to the bit; the binary gates on
/// [`ConformanceRecord::relative_error`].
pub fn run_conformance(cfg: &WhatIfConfig, report: &WhatIfReport) -> Vec<ConformanceRecord> {
    let mut records = Vec::with_capacity(cfg.cells.len());
    for (i, cell) in cfg.cells.iter().enumerate() {
        let component = i % WHATIF_COMPONENTS;
        let k = SPEEDUP_GRID[(i / WHATIF_COMPONENTS) % SPEEDUP_GRID.len()];
        let profiled = report
            .cells
            .iter()
            .find(|c| c.cell == cell.path())
            .expect("conformance config matches the profiled cells");
        let predicted = profiled
            .predictions
            .iter()
            .find(|p| p.component == component && p.speedup == k)
            .expect("prediction grid is complete")
            .predicted_total;
        let overlaid =
            gnn_device::default_cost_model().with_speedups(&Speedups::component(component, k));
        let (_, _, dev) = gnn_device::with_default_cost_model(overlaid, || {
            train_cell(cell, cfg.scale, cfg.epochs, cfg.seed)
        });
        records.push(ConformanceRecord {
            subject: cell.path(),
            component,
            speedup: k,
            predicted,
            actual: dev.total_time,
        });
    }
    records
}

/// Conformance pass over the serve policies: for each policy, picks one
/// (component, factor) experiment, really re-serves under the overlaid
/// cost model, and records predicted vs measured p95 latency.
pub fn run_serve_conformance(cfg: &WhatIfConfig, report: &WhatIfReport) -> Vec<ConformanceRecord> {
    let mut records = Vec::with_capacity(cfg.policies.len());
    for (i, policy) in cfg.policies.iter().enumerate() {
        let component = i % WHATIF_COMPONENTS;
        let k = SPEEDUP_GRID[(i + 1) % SPEEDUP_GRID.len()];
        let profiled = report
            .serve
            .iter()
            .find(|s| s.policy == policy.label())
            .expect("conformance config matches the profiled policies");
        let predicted = profiled
            .predictions
            .iter()
            .find(|p| p.component == component && p.speedup == k)
            .expect("prediction grid is complete")
            .latency
            .p95;
        let mut scfg = serve_config(cfg, *policy);
        scfg.cost = scfg.cost.with_speedups(&Speedups::component(component, k));
        let actual = gnn_serve::serve(&scfg).expect("serve conformance re-run failed");
        let (_, p95, _) = actual.latency_percentiles();
        records.push(ConformanceRecord {
            subject: policy.label(),
            component,
            speedup: k,
            predicted,
            actual: p95,
        });
    }
    records
}

fn latency_value(l: &ServeLatency) -> Value {
    Value::Obj(vec![
        ("p50".into(), Value::Num(l.p50)),
        ("p95".into(), Value::Num(l.p95)),
        ("p99".into(), Value::Num(l.p99)),
        ("slo_attainment".into(), Value::Num(l.slo_attainment)),
        ("throughput".into(), Value::Num(l.throughput)),
        ("makespan".into(), Value::Num(l.makespan)),
    ])
}

impl WhatIfReport {
    /// The document as a JSON tree (deterministic key order).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::from(self.schema.as_str())),
            (
                "config".into(),
                Value::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "speedups".into(),
                Value::Arr(
                    SPEEDUP_GRID
                        .iter()
                        .map(|&k| Value::from(speedup_label(k)))
                        .collect(),
                ),
            ),
            (
                "cells".into(),
                Value::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("cell".into(), Value::from(c.cell.as_str())),
                                ("epochs".into(), Value::from(c.epochs)),
                                ("base_total_time".into(), Value::Num(c.base_total_time)),
                                ("base_epoch_time".into(), Value::Num(c.base_epoch_time)),
                                (
                                    "budgets".into(),
                                    Value::Obj(
                                        c.budgets
                                            .iter()
                                            .enumerate()
                                            .map(|(i, &b)| {
                                                (component_label(i).to_owned(), Value::Num(b))
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "predictions".into(),
                                    Value::Arr(
                                        c.predictions
                                            .iter()
                                            .map(|p| {
                                                Value::Obj(vec![
                                                    (
                                                        "component".into(),
                                                        Value::from(component_label(p.component)),
                                                    ),
                                                    (
                                                        "speedup".into(),
                                                        Value::from(speedup_label(p.speedup)),
                                                    ),
                                                    (
                                                        "predicted_total".into(),
                                                        Value::Num(p.predicted_total),
                                                    ),
                                                    (
                                                        "predicted_epoch".into(),
                                                        Value::Num(p.predicted_epoch),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve".into(),
                Value::Arr(
                    self.serve
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("policy".into(), Value::from(s.policy.as_str())),
                                ("base".into(), latency_value(&s.base)),
                                (
                                    "predictions".into(),
                                    Value::Arr(
                                        s.predictions
                                            .iter()
                                            .map(|p| {
                                                Value::Obj(vec![
                                                    (
                                                        "component".into(),
                                                        Value::from(component_label(p.component)),
                                                    ),
                                                    (
                                                        "speedup".into(),
                                                        Value::from(speedup_label(p.speedup)),
                                                    ),
                                                    ("latency".into(), latency_value(&p.latency)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "opportunities".into(),
                Value::Arr(
                    self.opportunities
                        .iter()
                        .map(|o| {
                            Value::Obj(vec![
                                (
                                    "component".into(),
                                    Value::from(component_label(o.component)),
                                ),
                                ("speedup".into(), Value::from(speedup_label(o.speedup))),
                                ("predicted_win".into(), Value::Num(o.predicted_win)),
                                ("win_fraction".into(), Value::Num(o.win_fraction)),
                                ("ceiling".into(), Value::Num(o.ceiling)),
                                ("bound".into(), Value::from(o.bound.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the document as pretty-stable JSON (one trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json();
        s.push('\n');
        s
    }

    /// Human-readable opportunity table plus per-policy base latencies.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>12} {:>8} {:>12} {:>10}",
            "component", "speedup", "win ms", "win %", "ceiling ms", "bound"
        );
        for o in &self.opportunities {
            let _ = writeln!(
                s,
                "{:<12} {:>7}x {:>12.4} {:>7.2}% {:>12.4} {:>10}",
                component_label(o.component),
                speedup_label(o.speedup),
                o.predicted_win * 1e3,
                o.win_fraction * 100.0,
                o.ceiling * 1e3,
                o.bound,
            );
        }
        for sv in &self.serve {
            let _ = writeln!(
                s,
                "serve {:<12} p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms  SLO {:>5.1}%",
                sv.policy,
                sv.base.p50 * 1e3,
                sv.base.p95 * 1e3,
                sv.base.p99 * 1e3,
                sv.base.slo_attainment * 100.0,
            );
        }
        s
    }
}

fn parse_latency(v: &Value) -> Result<ServeLatency, String> {
    let num = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    Ok(ServeLatency {
        p50: num("p50")?,
        p95: num("p95")?,
        p99: num("p99")?,
        slo_attainment: num("slo_attainment")?,
        throughput: num("throughput")?,
        makespan: num("makespan")?,
    })
}

/// Parses a what-if document, validating the schema tag.
///
/// # Errors
///
/// Returns a diagnostic on malformed JSON, a wrong schema tag, unknown
/// component or speedup labels, or missing fields.
pub fn parse_whatif_report(text: &str) -> Result<WhatIfReport, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing schema tag")?;
    if schema != WHATIF_SCHEMA {
        return Err(format!(
            "schema mismatch: file is `{schema}`, this build reads `{WHATIF_SCHEMA}`"
        ));
    }
    let config = doc
        .get("config")
        .and_then(|c| c.as_obj())
        .ok_or("missing config object")?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("config.{k} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    let num = |obj: &Value, key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let text_field = |obj: &Value, key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let component_of = |obj: &Value| -> Result<usize, String> {
        let label = text_field(obj, "component")?;
        component_from_label(&label).ok_or_else(|| format!("unknown component `{label}`"))
    };
    let speedup_of = |obj: &Value| -> Result<f64, String> {
        let label = text_field(obj, "speedup")?;
        parse_speedup(&label).ok_or_else(|| format!("unknown speedup `{label}`"))
    };
    let cells = doc
        .get("cells")
        .and_then(|c| c.as_arr())
        .ok_or("missing cells array")?
        .iter()
        .map(|c| {
            let mut budgets = [0.0; WHATIF_COMPONENTS];
            let budget_obj = c
                .get("budgets")
                .and_then(|b| b.as_obj())
                .ok_or("missing budgets object")?;
            for (label, v) in budget_obj {
                let i = component_from_label(label)
                    .ok_or_else(|| format!("unknown budget component `{label}`"))?;
                budgets[i] = v
                    .as_f64()
                    .ok_or_else(|| format!("budget `{label}` is not a number"))?;
            }
            let predictions = c
                .get("predictions")
                .and_then(|p| p.as_arr())
                .ok_or("missing predictions array")?
                .iter()
                .map(|p| {
                    Ok(CellPrediction {
                        component: component_of(p)?,
                        speedup: speedup_of(p)?,
                        predicted_total: num(p, "predicted_total")?,
                        predicted_epoch: num(p, "predicted_epoch")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(CellWhatIf {
                cell: text_field(c, "cell")?,
                epochs: num(c, "epochs")? as usize,
                base_total_time: num(c, "base_total_time")?,
                base_epoch_time: num(c, "base_epoch_time")?,
                budgets,
                predictions,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let serve = doc
        .get("serve")
        .and_then(|s| s.as_arr())
        .ok_or("missing serve array")?
        .iter()
        .map(|s| {
            let predictions = s
                .get("predictions")
                .and_then(|p| p.as_arr())
                .ok_or("missing predictions array")?
                .iter()
                .map(|p| {
                    Ok(ServePrediction {
                        component: component_of(p)?,
                        speedup: speedup_of(p)?,
                        latency: parse_latency(p.get("latency").ok_or("missing latency")?)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(ServeWhatIf {
                policy: text_field(s, "policy")?,
                base: parse_latency(s.get("base").ok_or("missing base latency")?)?,
                predictions,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let opportunities = doc
        .get("opportunities")
        .and_then(|o| o.as_arr())
        .ok_or("missing opportunities array")?
        .iter()
        .map(|o| {
            Ok(Opportunity {
                component: component_of(o)?,
                speedup: speedup_of(o)?,
                predicted_win: num(o, "predicted_win")?,
                win_fraction: num(o, "win_fraction")?,
                ceiling: num(o, "ceiling")?,
                bound: text_field(o, "bound")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(WhatIfReport {
        schema: schema.to_owned(),
        config,
        cells,
        serve,
        opportunities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny cell, one epoch, one policy: enough structure to exercise
    /// every code path while keeping the test fast.
    fn tiny_cfg() -> WhatIfConfig {
        WhatIfConfig {
            cells: vec![CellId::parse("table4/Cora/GCN/PyG").unwrap()],
            scale: 0.03,
            epochs: 1,
            seed: 0,
            policies: vec![BatchPolicy {
                max_batch: 4,
                max_delay: 0.001,
            }],
            requests: 20,
            rate: 1500.0,
            slo_target: 0.005,
        }
    }

    #[test]
    fn whatif_report_is_complete_consistent_and_deterministic() {
        let cfg = tiny_cfg();
        let report = run_whatif(&cfg);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.serve.len(), 1);
        assert_eq!(
            report.cells[0].predictions.len(),
            WHATIF_COMPONENTS * SPEEDUP_GRID.len()
        );
        assert_eq!(
            report.serve[0].predictions.len(),
            WHATIF_COMPONENTS * SPEEDUP_GRID.len()
        );
        assert_eq!(report.opportunities.len(), WHATIF_COMPONENTS);
        // Ranked descending, and the top opportunity carries a bound.
        for pair in report.opportunities.windows(2) {
            assert!(pair[0].predicted_win >= pair[1].predicted_win);
        }
        let top = &report.opportunities[0];
        assert!(
            top.predicted_win > 0.0,
            "something must be worth speeding up"
        );
        assert!(["compute", "bandwidth", "overhead", "host"].contains(&top.bound.as_str()));
        for o in &report.opportunities {
            assert!(
                o.ceiling >= o.predicted_win - 1e-15,
                "infinite speedup cannot win less than 2x"
            );
        }
        // Physics audit comes back clean.
        assert!(audit_whatif(&report).is_empty());
        // Deterministic to the byte.
        let again = run_whatif(&cfg);
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn whatif_json_round_trips() {
        let report = run_whatif(&tiny_cfg());
        let text = report.to_json();
        let parsed = parse_whatif_report(&text).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), text);
        assert!(parse_whatif_report("{}").is_err());
        assert!(parse_whatif_report(&text.replace(WHATIF_SCHEMA, "gnn-whatif/v0")).is_err());
    }

    #[test]
    fn sweep_conformance_is_exact_on_a_real_retrain() {
        let cfg = tiny_cfg();
        let report = run_whatif(&cfg);
        // The rotating sample plus a hand-picked set covering a kernel
        // kind, the launch lever, and the host lever at finite and
        // infinite factors.
        for record in run_conformance(&cfg, &report) {
            assert_eq!(
                record.predicted.to_bits(),
                record.actual.to_bits(),
                "{} component {} at {}x",
                record.subject,
                record.component,
                record.speedup
            );
        }
        let profiled = &report.cells[0];
        for (component, k) in [
            (0usize, 2.0),
            (8, 1.1),
            (COMPONENT_LAUNCH, f64::INFINITY),
            (COMPONENT_HOST, 1.5),
        ] {
            let predicted = profiled
                .predictions
                .iter()
                .find(|p| p.component == component && p.speedup == k)
                .unwrap()
                .predicted_total;
            let overlaid =
                gnn_device::default_cost_model().with_speedups(&Speedups::component(component, k));
            let (_, _, dev) = gnn_device::with_default_cost_model(overlaid, || {
                train_cell(&cfg.cells[0], cfg.scale, cfg.epochs, cfg.seed)
            });
            assert_eq!(
                predicted.to_bits(),
                dev.total_time.to_bits(),
                "component {component} at {k}x"
            );
        }
    }

    #[test]
    fn serve_conformance_is_exact_on_a_real_reserve() {
        let cfg = tiny_cfg();
        let report = run_whatif(&cfg);
        for record in run_serve_conformance(&cfg, &report) {
            assert_eq!(
                record.predicted.to_bits(),
                record.actual.to_bits(),
                "policy {} component {} at {}x",
                record.subject,
                record.component,
                record.speedup
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for k in SPEEDUP_GRID {
            assert_eq!(parse_speedup(speedup_label(k)), Some(k));
        }
        assert_eq!(parse_speedup("3"), None);
        for c in 0..WHATIF_COMPONENTS {
            assert_eq!(component_from_label(component_label(c)), Some(c));
        }
        assert_eq!(component_from_label("flux-capacitor"), None);
    }
}
