//! Whole-run linting: the configured paper sweep, end to end.
//!
//! [`lint_run`] expands a [`RunConfig`] into everything the bench binaries
//! would execute — all 60 (model, dataset, framework) cells of Tables IV/V,
//! the datasets at the configured scale, and the Fig. 6 multi-GPU
//! schedules — and runs every analysis pass over each piece:
//!
//! 1. symbolic shape/dtype inference over each cell's lowering
//!    ([`crate::lower`]),
//! 2. the autograd tape audit ([`crate::tape`]),
//! 3. index-safety proofs over the generated datasets
//!    ([`crate::index_check`]),
//! 4. timeline hazard detection over the data-parallel schedules
//!    ([`crate::schedule`]),
//! 5. fault-plan auditing when the config arms one — specs that can never
//!    fire or never be survived under this run ([`crate::fault_plan`]),
//! 6. sample-config auditing and closed-form certification of any
//!    configured giant-graph sampling cells, without generating their RMAT
//!    graphs ([`crate::sample_check`]),
//! 7. memory certification of every cell at the generated datasets'
//!    concrete sizes ([`crate::memory`]), including device-capacity checks
//!    and — for armed plans — memory ceilings that admit no batch size.
//!
//! Finding paths are rooted at the sweep position:
//! `table4/Cora/GCN/PyG/conv2/matmul`, `table5/MNIST/GatedGCN/DGL/...`,
//! `fig6/GCN/DGL/gpus4/...`.

use gnn_core::RunConfig;
use gnn_datasets::{stratified_kfold, CitationSpec, SuperpixelSpec, TudSpec};
use gnn_device::{DataParallel, StepCost};
use gnn_models::config::{graph_hparams, FrameworkKind, ModelKind, ALL_FRAMEWORKS, ALL_MODELS};
use gnn_sample::SamplerKind;

use crate::counter_check::check_counter_coverage;
use crate::fault_plan::{check_fault_plan, check_memory_ceilings};
use crate::index_check::{check_graph_dataset, check_node_dataset};
use crate::lower::{lower_stack, StackPlan};
use crate::memory::{
    certify_graph_cell, certify_node_cell, certify_sample_cell, check_device_fit, MemoryReport,
};
use crate::report::{Finding, FindingKind, LintReport};
use crate::sample_check::check_sample_config;
use crate::schedule::data_parallel_schedule;
use crate::tape::audit_tape;

fn lint_cell(plan: &StackPlan, path: &str, report: &mut LintReport) -> u64 {
    let graph = lower_stack(plan, path);
    report.findings.extend(graph.findings.iter().cloned());
    audit_tape(&graph, &mut report.findings);
    report.ops_checked += graph.nodes.len();
    report.cells_checked += 1;
    graph.param_bytes()
}

fn fw_dir(fw: FrameworkKind) -> &'static str {
    fw.label()
}

/// Lints the full sweep a [`RunConfig`] describes. Deterministic: the same
/// config always yields the same report.
pub fn lint_run(cfg: &RunConfig) -> LintReport {
    lint_run_with_memory(cfg).0
}

/// Certifies the memory footprint of every cell the config sweeps, without
/// the rest of the lint. Deterministic, like [`lint_run`].
pub fn certify_run(cfg: &RunConfig) -> MemoryReport {
    lint_run_with_memory(cfg).1
}

/// Lints the sweep and certifies its memory in one pass over the generated
/// datasets (each dataset is built once and shared by both analyses). The
/// memory findings — device-capacity violations and unsatisfiable fault
/// ceilings — appear in *both* reports, so `lint_run` alone still gates
/// them.
pub fn lint_run_with_memory(cfg: &RunConfig) -> (LintReport, MemoryReport) {
    let mut report = LintReport::default();
    let mut memory = MemoryReport::default();

    // Counter coverage first: this audits the device layer itself, so a
    // gap fails every configured run identically.
    report.kernel_kinds_checked += check_counter_coverage(&mut report.findings);

    // Armed fault plans are audited first: a chaos campaign whose specs
    // cannot fire (or cannot be survived) should be rejected before the
    // sweep spends anything.
    if let Some(plan) = &cfg.faults {
        check_fault_plan(plan, cfg, &mut report.findings);
    }

    // Table IV: node classification on the citation graphs.
    for spec in [CitationSpec::cora(), CitationSpec::pubmed()] {
        let ds = spec.scaled(cfg.scale).generate(cfg.seed);
        let ds_path = format!("table4/{}", ds.name);
        check_node_dataset(&ds, &ds_path, &mut report.findings);
        report.datasets_checked += 1;
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::node(model, fw, ds.features.cols(), ds.num_classes);
                let path = format!("{ds_path}/{}/{}", model.label(), fw_dir(fw));
                lint_cell(&plan, &path, &mut report);
                let cert = certify_node_cell(model, fw, &ds);
                check_device_fit(&cert, &mut memory.findings);
                memory.cells.push(cert);
            }
        }
    }

    // Table V: graph classification on ENZYMES / MNIST / DD, scaled the way
    // the runner scales them.
    type GraphGen<'a> = Box<dyn Fn() -> gnn_datasets::GraphDataset + 'a>;
    let graph_specs: [(&str, GraphGen); 3] = [
        (
            "ENZYMES",
            Box::new(|| TudSpec::enzymes().scaled(cfg.scale).generate(cfg.seed)),
        ),
        (
            "MNIST",
            Box::new(|| {
                SuperpixelSpec::mnist()
                    .scaled((cfg.scale * 0.1).min(1.0))
                    .generate(cfg.seed)
            }),
        ),
        (
            "DD",
            Box::new(|| TudSpec::dd().scaled(cfg.scale).generate(cfg.seed)),
        ),
    ];
    for (name, gen) in graph_specs {
        let ds = gen();
        let ds_path = format!("table5/{name}");
        let batch = cfg.batch_sizes.iter().copied().max().unwrap_or(128);
        check_graph_dataset(&ds, batch, &ds_path, &mut report.findings);
        report.datasets_checked += 1;
        // The runner clamps the configured batch size against fold 0's
        // training split; certify at the exact batch it would use.
        let folds = stratified_kfold(&ds.labels(), 10, cfg.seed);
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::graph(model, fw, ds.feature_dim, ds.num_classes);
                let path = format!("{ds_path}/{}/{}", model.label(), fw_dir(fw));
                lint_cell(&plan, &path, &mut report);
                let run_batch = graph_hparams(model)
                    .batch_size
                    .min((folds[0].train.len() / 3).max(8));
                let cert = certify_graph_cell(model, fw, &ds, run_batch);
                check_device_fit(&cert, &mut memory.findings);
                memory.cells.push(cert);
            }
        }
    }

    // Sampled cells: audited and certified entirely in closed form — no
    // RMAT graph is generated, so linting the million-node spec costs the
    // same as the 4k one. Each configured spec expands into the sweep's
    // sampler × framework cells with the fixed SAGE architecture.
    for spec in check_sample_config(&cfg.sample_specs, &mut report.findings) {
        report.datasets_checked += 1;
        for kind in SamplerKind::all() {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::node(
                    ModelKind::Sage,
                    fw,
                    spec.rmat.feature_dim,
                    spec.rmat.num_classes,
                );
                let path = format!(
                    "sample/{}-{}/{}/{}",
                    spec.name,
                    kind.label(),
                    ModelKind::Sage.label(),
                    fw_dir(fw)
                );
                lint_cell(&plan, &path, &mut report);
                let cert = certify_sample_cell(fw, &spec, kind);
                check_device_fit(&cert, &mut memory.findings);
                memory.cells.push(cert);
            }
        }
    }

    // Fig. 6: data-parallel schedules for the two multi-GPU models, with
    // parameter volumes taken from the symbolic graphs just built.
    for model in [ModelKind::Gcn, ModelKind::Gat] {
        for fw in ALL_FRAMEWORKS {
            // MNIST is the Fig. 6 dataset; its feature dim is 1 intensity +
            // 2 coordinates, 10 classes.
            let plan = StackPlan::graph(model, fw, 3, 10);
            let param_bytes = lower_stack(&plan, "fig6").param_bytes();
            let batch = graph_hparams(model).batch_size.max(1);
            let step = StepCost {
                host_load: 5e-3,
                // ~71 superpixel nodes/graph, 3 f32 features + 8 bytes of
                // topology per edge (k = 8 neighbours).
                input_bytes: (batch * 71 * (3 * 4 + 8 * 8)) as u64,
                compute: 2e-3,
                output_bytes: (batch * 10 * 4) as u64,
                update: 1e-4,
            };
            for n_gpus in [1usize, 2, 4, 8] {
                let path = format!("fig6/{}/{}/gpus{n_gpus}", model.label(), fw_dir(fw));
                let dp = DataParallel::new(n_gpus, param_bytes);
                match data_parallel_schedule(&dp, &step) {
                    Ok(sched) => sched.check(&path, &mut report.findings),
                    Err(e) => report.findings.push(Finding::new(
                        FindingKind::InvalidConfig,
                        path,
                        e.to_string(),
                    )),
                }
                report.schedules_checked += 1;
            }
        }
    }

    // Memory-ceiling audit last: it needs the certified footprints of the
    // whole sweep to know the worst cell a `MemLimit` must accommodate.
    if let Some(plan) = &cfg.faults {
        check_memory_ceilings(plan, &memory.cells, &mut memory.findings);
    }
    report.findings.extend(memory.findings.iter().cloned());

    (report, memory)
}

/// Lints and — when the config traces — saves `lint.json` and
/// `memory.json` next to the trace artifacts. Returns the lint report
/// either way.
pub fn lint_and_export(cfg: &RunConfig) -> LintReport {
    let (report, memory) = lint_run_with_memory(cfg);
    if let Some(dir) = cfg.trace.dir() {
        if let Err(e) = report.save(dir) {
            eprintln!("gnn-lint: could not write lint.json: {e}");
        }
        if let Err(e) = memory.save(dir) {
            eprintln!("gnn-lint: could not write memory.json: {e}");
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_covers_all_60_cells() {
        let report = lint_run(&RunConfig::smoke());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cells_checked, 60);
        assert_eq!(report.datasets_checked, 5);
        assert_eq!(report.schedules_checked, 16);
        assert_eq!(report.kernel_kinds_checked, gnn_device::PRICED_KINDS.len());
        assert!(report.ops_checked > 1000, "{}", report.ops_checked);
    }

    #[test]
    fn armed_fault_plans_are_audited() {
        use gnn_faults::{FaultKind, FaultPlan};
        let clean = lint_run(&RunConfig::smoke().with_faults(FaultPlan::canonical()));
        assert!(clean.is_clean(), "{clean}");
        let bad = RunConfig::smoke()
            .with_faults(FaultPlan::empty().with(FaultKind::ReplicaFailure { gpu: 99, at: 1 }));
        let report = lint_run(&bad);
        assert_eq!(report.of_kind(FindingKind::InvalidFaultPlan).len(), 1);
        assert!(
            report.to_string().contains("invalid-fault-plan"),
            "{report}"
        );
    }

    #[test]
    fn lint_and_export_writes_lint_and_memory_json() {
        let dir = std::env::temp_dir().join("gnn-lint-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig::smoke().with_trace(&dir);
        let report = lint_and_export(&cfg);
        assert!(report.is_clean());
        let json = std::fs::read_to_string(dir.join("lint.json")).unwrap();
        let v = gnn_obs::json::parse(&json).unwrap();
        assert_eq!(v.get("clean"), Some(&gnn_obs::Value::Bool(true)));
        let json = std::fs::read_to_string(dir.join("memory.json")).unwrap();
        let v = gnn_obs::json::parse(&json).unwrap();
        assert_eq!(v.get("clean"), Some(&gnn_obs::Value::Bool(true)));
        assert_eq!(
            v.get("cells").and_then(|c| c.as_arr()).map(|c| c.len()),
            Some(60)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn certify_run_covers_all_60_cells_deterministically() {
        let cfg = RunConfig::smoke();
        let memory = certify_run(&cfg);
        assert!(memory.is_clean(), "{memory}");
        assert_eq!(memory.cells.len(), 60);
        // Every lowered cell has a certificate at its lint path, with
        // ordered bounds.
        for cert in &memory.cells {
            assert!(cert.persistent > 0, "{}", cert.path());
            assert!(
                cert.persistent < cert.floor_fatal && cert.floor_fatal <= cert.peak_upper,
                "{}: persistent {} floor {} upper {}",
                cert.path(),
                cert.persistent,
                cert.floor_fatal,
                cert.peak_upper
            );
        }
        assert!(memory.cell("table4/Cora/GCN/PyG").is_some());
        assert!(memory.cell("table5/DD/GatedGCN/DGL").is_some());
        // Byte-identical export across reruns: the CI job diffs two runs.
        let again = certify_run(&cfg);
        assert_eq!(memory.to_value().to_json(), again.to_value().to_json());
    }

    #[test]
    fn sampled_cells_are_linted_and_certified_without_graph_generation() {
        // rmat-1m is the million-node headline spec; linting it must stay
        // closed-form (this test would time out if a graph were built).
        let cfg = RunConfig::smoke().with_samples(["rmat-1m", "rmat-4k"]);
        let (report, memory) = lint_run_with_memory(&cfg);
        assert!(report.is_clean(), "{report}");
        // 60 classic cells + 2 specs × 2 sampler kinds × 2 frameworks.
        assert_eq!(report.cells_checked, 68);
        assert_eq!(report.datasets_checked, 7);
        assert_eq!(memory.cells.len(), 68);
        let cert = memory
            .cell("sample/rmat-1m-neighbor/SAGE/PyG")
            .expect("sampled cert at its sweep path");
        assert_eq!(cert.experiment, "sample");
        // Bounds hold at the fan-out union, not the full graph: the
        // rmat-1m union of 512 seeds with fanouts [10, 5] is 31,232 nodes.
        assert_eq!(cert.nodes, 31_232);
        assert!(cert.persistent < cert.floor_fatal && cert.floor_fatal <= cert.peak_upper);
        assert!(memory.cell("sample/rmat-4k-layerwise/SAGE/DGL").is_some());
        // Deterministic export, like the classic cells.
        let again = certify_run(&cfg);
        assert_eq!(memory.to_value().to_json(), again.to_value().to_json());
    }

    #[test]
    fn broken_sample_spec_fails_the_lint() {
        let cfg = RunConfig::smoke().with_samples(["rmat-9z"]);
        let report = lint_run(&cfg);
        assert!(!report.is_clean());
        assert_eq!(report.of_kind(FindingKind::InvalidSampleConfig).len(), 1);
        assert!(report.to_string().contains("sample/rmat-9z"), "{report}");
    }

    #[test]
    fn unsatisfiable_memory_ceilings_fail_the_lint() {
        use gnn_faults::{FaultKind, FaultPlan};
        // 1 MiB sits above zero (so check_fault_plan passes it) but below
        // any cell's persistent footprint at smoke scale.
        let cfg = RunConfig::smoke()
            .with_faults(FaultPlan::empty().with(FaultKind::MemLimit { bytes: 1 << 20 }));
        let report = lint_run(&cfg);
        assert!(!report.is_clean());
        assert_eq!(report.of_kind(FindingKind::InvalidFaultPlan).len(), 1);
    }
}
