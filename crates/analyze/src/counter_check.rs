//! Counter-coverage audit: every priced kernel kind must have a counter
//! formula.
//!
//! The device cost model prices a kernel kind the moment someone
//! constructs a [`gnn_device::Kernel`] with it — but the observability
//! layer can only attribute FLOPs, bytes, and roofline headroom if the
//! kind also has an entry in the counter formula registry
//! ([`gnn_device::counters::FORMULAS`]). A kind that is priced but not
//! covered would silently show up as zero work in every roofline report,
//! which is exactly the kind of drift a regression observatory must
//! refuse. This pass fails the lint when any priced kind lacks a formula,
//! and sanity-checks the formulas themselves (read fractions in `[0, 1]`,
//! non-empty closed forms).

use gnn_device::counters::{CounterFormula, FORMULAS};
use gnn_device::{KernelKind, PRICED_KINDS};

use crate::report::{Finding, FindingKind};

/// Audits the live formula registry against every priced kernel kind.
/// Returns the number of kinds checked (for the report's coverage line).
pub fn check_counter_coverage(findings: &mut Vec<Finding>) -> usize {
    coverage_findings(&PRICED_KINDS, &FORMULAS, findings)
}

/// The audit against an explicit registry, so tests can seed defects the
/// real registry (by construction) no longer has.
pub(crate) fn coverage_findings(
    kinds: &[KernelKind],
    formulas: &[CounterFormula],
    findings: &mut Vec<Finding>,
) -> usize {
    for kind in kinds {
        let path = format!("device/counters/{}", kind.label());
        let Some(f) = formulas.iter().find(|f| f.kind == *kind) else {
            findings.push(Finding::new(
                FindingKind::CounterCoverage,
                path,
                "kernel kind is priced by the cost model but has no \
                 FLOPs/bytes counter formula — roofline attribution would \
                 report zero work for it",
            ));
            continue;
        };
        if f.flops.is_empty() || f.bytes.is_empty() {
            findings.push(Finding::new(
                FindingKind::CounterCoverage,
                path.clone(),
                "counter formula has an empty closed form",
            ));
        }
        if !(0.0..=1.0).contains(&f.read_fraction) {
            findings.push(Finding::new(
                FindingKind::CounterCoverage,
                path,
                format!(
                    "read fraction {} outside [0, 1]: byte split would not \
                     sum to total traffic",
                    f.read_fraction
                ),
            ));
        }
    }
    // Orphaned formulas are drift in the other direction: an entry for a
    // kind the cost model no longer prices.
    for f in formulas {
        if !kinds.contains(&f.kind) {
            findings.push(Finding::new(
                FindingKind::CounterCoverage,
                format!("device/counters/{}", f.kind.label()),
                "counter formula covers a kind the cost model does not price",
            ));
        }
    }
    kinds.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_registry_covers_every_priced_kind() {
        let mut findings = Vec::new();
        let checked = check_counter_coverage(&mut findings);
        assert_eq!(checked, PRICED_KINDS.len());
        assert!(findings.is_empty(), "{findings:?}");
        assert!(gnn_device::counters::uncovered_kinds().is_empty());
    }

    #[test]
    fn missing_formula_is_flagged() {
        // Seed the defect: drop the Scatter formula from the registry.
        let partial: Vec<CounterFormula> = FORMULAS
            .iter()
            .copied()
            .filter(|f| f.kind != KernelKind::Scatter)
            .collect();
        let mut findings = Vec::new();
        coverage_findings(&PRICED_KINDS, &partial, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::CounterCoverage);
        assert!(
            findings[0].path.ends_with("scatter"),
            "{}",
            findings[0].path
        );
        assert!(findings[0].message.contains("no FLOPs/bytes"));
    }

    #[test]
    fn degenerate_read_fraction_is_flagged() {
        let mut bad = FORMULAS;
        bad[0].read_fraction = 1.5;
        let mut findings = Vec::new();
        coverage_findings(&PRICED_KINDS, &bad, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("outside [0, 1]"));
    }

    #[test]
    fn orphaned_formula_is_flagged() {
        // A registry entry for a kind the model does not price.
        let kinds: Vec<KernelKind> = PRICED_KINDS
            .into_iter()
            .filter(|k| *k != KernelKind::Softmax)
            .collect();
        let mut findings = Vec::new();
        coverage_findings(&kinds, &FORMULAS, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not price"));
    }

    #[test]
    fn formula_lookup_agrees_with_registry() {
        for kind in PRICED_KINDS {
            assert_eq!(
                gnn_device::counters::formula(kind).map(|f| f.kind),
                Some(kind)
            );
        }
    }
}
