//! Static memory certification: closed-form peak-footprint proofs per cell.
//!
//! Every cell's lowering ([`crate::lower`]) is already an exact op-for-op
//! replay of what the runtime executes; this pass walks it once more and
//! prices each op's *allocations* instead of its shapes. The result is a
//! [`MemExpr`] — bytes as a linear form `a·N + b·E + c·G + d` over the
//! batch's node/edge/graph counts — for the forward activations of one
//! pass, the gradient buffers `accumulate` allocates, and the loader's
//! per-batch tensors. Evaluated against a concrete dataset this yields two
//! certified numbers per cell:
//!
//! - **`peak_upper`**: persistent footprint (parameters, Adam moments,
//!   pinned features) plus the largest step interval the supervisor can
//!   execute. The runtime allocator is a bump allocator within a step
//!   (op outputs are never freed before `end_step`), so the bound is the
//!   sum of a step's allocations — and a ceiling at or above `peak_upper`
//!   provably never fires a `MemLimit` fault.
//! - **`floor_fatal`**: persistent footprint plus the *smallest mandatory*
//!   attempt — the full-batch train step for node cells, the worst single
//!   sample at batch size 1 for graph cells. A ceiling below `floor_fatal`
//!   provably kills the cell: batch halving bottoms out at 1 and the
//!   supervisor's retries exhaust (the statically computed fixed point of
//!   the degradation loop).
//!
//! Ceilings between the two bounds depend on shuffle order and epoch
//! timing; [`MemVerdict::Unknown`] says so honestly.
//!
//! The certified bounds are cross-checked against the runtime allocator's
//! observed high-water mark (`DeviceReport::peak_memory`) for all 60 cells
//! by the conformance suite in `tests/`, including under canonical fault
//! plans. Findings land in `lint.json`; the full per-cell table exports as
//! `memory.json` next to it (see EXPERIMENTS.md).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gnn_datasets::{GraphDataset, NodeDataset};
use gnn_device::CostModel;
use gnn_models::config::{FrameworkKind, ModelKind};
use gnn_obs::Value;

use crate::ir::{NodeId, OpGraph, Rows, SymShape};
use crate::liveness;
use crate::lower::{lower_stack, StackPlan};
use crate::report::{Finding, FindingKind};

/// Bytes as a closed-form linear expression over the symbolic batch sizes:
/// `per_node·N + per_edge·E + per_graph·G + constant`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemExpr {
    /// Coefficient on the batch's node count.
    pub per_node: u64,
    /// Coefficient on the batch's edge count.
    pub per_edge: u64,
    /// Coefficient on the batch's graph count.
    pub per_graph: u64,
    /// Constant bytes (parameter-shaped activations, the loss scalar).
    pub constant: u64,
}

impl MemExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        MemExpr::default()
    }

    /// Evaluates at concrete batch sizes.
    pub fn eval(&self, nodes: u64, edges: u64, graphs: u64) -> u64 {
        self.per_node * nodes + self.per_edge * edges + self.per_graph * graphs + self.constant
    }

    /// Term-wise sum.
    pub fn add(&self, o: &MemExpr) -> MemExpr {
        MemExpr {
            per_node: self.per_node + o.per_node,
            per_edge: self.per_edge + o.per_edge,
            per_graph: self.per_graph + o.per_graph,
            constant: self.constant + o.constant,
        }
    }

    /// Term-wise doubling (ops that materialize two buffers of one shape).
    pub fn double(&self) -> MemExpr {
        self.add(self)
    }

    /// Subtracts constant bytes (dropping the loss scalar for no-grad
    /// forwards), saturating at zero.
    pub fn minus_const(&self, bytes: u64) -> MemExpr {
        MemExpr {
            constant: self.constant.saturating_sub(bytes),
            ..*self
        }
    }
}

impl fmt::Display for MemExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut terms = Vec::new();
        for (coeff, sym) in [
            (self.per_node, "N"),
            (self.per_edge, "E"),
            (self.per_graph, "G"),
        ] {
            if coeff != 0 {
                terms.push(format!("{coeff}*{sym}"));
            }
        }
        if self.constant != 0 || terms.is_empty() {
            terms.push(self.constant.to_string());
        }
        write!(f, "{}", terms.join(" + "))
    }
}

/// The byte size of one materialized tensor of symbolic shape `s` (f32).
pub fn shape_bytes(s: SymShape) -> MemExpr {
    let row = 4 * s.cols as u64;
    match s.rows {
        Rows::Nodes => MemExpr {
            per_node: row,
            ..MemExpr::zero()
        },
        Rows::Edges => MemExpr {
            per_edge: row,
            ..MemExpr::zero()
        },
        Rows::Graphs => MemExpr {
            per_graph: row,
            ..MemExpr::zero()
        },
        Rows::Const(r) => MemExpr {
            constant: row * r as u64,
            ..MemExpr::zero()
        },
    }
}

/// Device bytes the runtime allocates when computing IR node `id`'s forward
/// value. Exact by construction: leaves are charged to the loader or the
/// persistent footprint, fused rgl scopes charge the kernels' message
/// frames instead of the gather/scatter dataflow the IR spells out, and the
/// few places the runtime inserts an extra buffer (MoNet's `scale` before
/// `exp`, rustyg's two-step mean pool) are doubled to match.
pub fn forward_alloc(g: &OpGraph, id: NodeId) -> MemExpr {
    let n = &g.nodes[id];
    let out = shape_bytes(n.shape);
    match n.op {
        // Batch leaves live in the loader's allocation (`batch_load`) and
        // parameters in the persistent footprint — except rgl GatedGCN's
        // edge-ones seed, which the runtime re-materializes every forward.
        "x" | "inv_deg" | "inv_sqrt_deg" | "src" | "dst" | "labels" | "graph_ids" | "param" => {
            return MemExpr::zero()
        }
        "edge_ones" => return out,
        _ => {}
    }
    if n.path.contains("/gspmm_copy_sum/") {
        return match n.op {
            // The fused kernel stages an N-row accumulation frame, not the
            // per-edge gather the dataflow view spells out.
            "gather_rows" => MemExpr {
                per_node: 4 * n.shape.cols as u64,
                ..MemExpr::zero()
            },
            _ => out, // scatter_add_rows: the kernel's output tensor
        };
    }
    if n.path.contains("/gspmm_mul_sum/") {
        return match n.op {
            "gather_rows" => MemExpr {
                per_node: 4 * n.shape.cols as u64,
                ..MemExpr::zero()
            },
            // The per-edge weight frame is `[E, heads]`.
            "mul_per_head" => MemExpr {
                per_edge: 4 * g.nodes[n.inputs[1]].shape.cols as u64,
                ..MemExpr::zero()
            },
            _ => out,
        };
    }
    if n.path.contains("/gsddmm_u_add_v/") {
        return match n.op {
            // One E-row staging frame (charged to the src gather) plus the
            // kernel output; the dst gather is fused away.
            "gather_rows" if g.nodes[n.inputs[1]].op == "src" => out,
            "gather_rows" => MemExpr::zero(),
            _ => out,
        };
    }
    if n.path.contains("/edge_softmax/") {
        return out.double(); // segment frame + normalized output
    }
    if n.path.contains("/batch_norm/") {
        return match n.op {
            "mul_row" => MemExpr::zero(), // fused into one affine kernel
            _ => out,
        };
    }
    if n.op == "exp" && n.path.contains("/kernel") {
        // The runtime computes `sum.scale(-0.5).exp()`: two buffers.
        return out.double();
    }
    if n.op == "global_mean_pool" {
        return out.double(); // rustyg sums then divides: two G-row tensors
    }
    out
}

/// Device bytes `accumulate` allocates for node `id`'s gradient, assuming
/// the node is in the grad-receiver set. Fused-scope interiors have no
/// runtime tensor and receive nothing; the producers at scope boundaries
/// get one buffer of their output shape.
pub fn grad_alloc(g: &OpGraph, id: NodeId) -> MemExpr {
    let n = &g.nodes[id];
    let out = shape_bytes(n.shape);
    if n.op == "param" {
        // One grad buffer per step: `zero_grad` drops it, the first
        // accumulation of the next step re-allocates.
        return out;
    }
    if n.path.contains("/gspmm_copy_sum/") || n.path.contains("/gspmm_mul_sum/") {
        return match n.op {
            "scatter_add_rows" => out,
            _ => MemExpr::zero(),
        };
    }
    if n.path.contains("/gsddmm_u_add_v/") {
        return match n.op {
            "add" => out,
            _ => MemExpr::zero(),
        };
    }
    if n.path.contains("/batch_norm/") {
        return match n.op {
            "add_bias" => out,
            _ => MemExpr::zero(),
        };
    }
    if n.op == "exp" && n.path.contains("/kernel") {
        return out.double(); // both the scale and exp tensors receive grads
    }
    if n.op == "global_mean_pool" {
        return out.double();
    }
    out
}

/// Which nodes receive a gradient buffer during `backward()`: reachable
/// from the loss through differentiable ops, restricted to nodes that
/// require a gradient (`accumulate` returns early otherwise).
pub fn grad_receivers(g: &OpGraph) -> Vec<bool> {
    let mut recv = vec![false; g.nodes.len()];
    let Some(loss) = g.loss else { return recv };
    recv[loss] = true; // backward seeds the loss gradient unconditionally
    let mut stack = vec![loss];
    while let Some(m) = stack.pop() {
        if !g.nodes[m].differentiable {
            continue;
        }
        for &i in &g.nodes[m].inputs {
            if g.nodes[i].requires_grad && !recv[i] {
                recv[i] = true;
                stack.push(i);
            }
        }
    }
    recv
}

/// A cell's symbolic memory footprint, split the way the runtime spends it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFootprint {
    /// All forward-pass allocations of one training forward (includes the
    /// 4-byte loss scalar).
    pub forward: MemExpr,
    /// All gradient buffers one `backward()` allocates.
    pub backward: MemExpr,
    /// The loader's per-batch allocation (features, topology, degree and
    /// segment tensors).
    pub load: MemExpr,
    /// Total parameter bytes (f32).
    pub param_bytes: u64,
}

/// The loader's per-batch bytes: `Batch::from_parts` for rustyg,
/// `HeteroBatch::from_parts` (with its reverse-graph and segment extras)
/// for rgl. `F` is the stack's input feature width.
fn batch_load(plan: &StackPlan) -> MemExpr {
    let f = plan.in_dim as u64;
    match plan.framework {
        FrameworkKind::RustyG => MemExpr {
            per_node: 4 * f + 12,
            per_edge: 8,
            ..MemExpr::zero()
        },
        FrameworkKind::Rgl => MemExpr {
            per_node: 4 * f + 20,
            per_edge: 20,
            ..MemExpr::zero()
        },
    }
}

/// Prices an already-lowered cell. `g` must be `lower_stack(plan, _)`.
pub fn footprint_of(g: &OpGraph, plan: &StackPlan) -> CellFootprint {
    let recv = grad_receivers(g);
    let mut forward = MemExpr::zero();
    let mut backward = MemExpr::zero();
    for (id, receives) in recv.iter().enumerate() {
        forward = forward.add(&forward_alloc(g, id));
        if *receives {
            backward = backward.add(&grad_alloc(g, id));
        }
    }
    if plan.model == ModelKind::GatedGcn && plan.framework == FrameworkKind::Rgl {
        // rgl's gated layers stage three extra E×out message frames per
        // layer (gate logits, gated messages, gate sums) that the IR's
        // fused scopes don't surface.
        for layer in &plan.layers {
            forward.per_edge += 12 * layer.out as u64;
        }
    }
    CellFootprint {
        forward,
        backward,
        load: batch_load(plan),
        param_bytes: g.param_bytes(),
    }
}

/// Lowers and prices a cell in one call.
pub fn footprint(plan: &StackPlan) -> CellFootprint {
    footprint_of(&lower_stack(plan, ""), plan)
}

/// The certifier's answer for one (cell, memory ceiling) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemVerdict {
    /// The ceiling is at or above `peak_upper`: no `MemLimit` fault can
    /// fire, the run ends ok and undegraded.
    Fits,
    /// The ceiling is below `floor_fatal`: even the smallest mandatory
    /// attempt overflows, so retries exhaust and the cell fails.
    Fatal,
    /// Between the bounds: the outcome depends on shuffle order and which
    /// interval the ceiling lands in; not statically decided.
    Unknown,
}

/// One cell's certified footprint at its dataset's concrete sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCert {
    /// Sweep experiment (`"table4"` or `"table5"`).
    pub experiment: &'static str,
    /// Dataset name as generated.
    pub dataset: String,
    /// Architecture.
    pub model: ModelKind,
    /// Framework.
    pub framework: FrameworkKind,
    /// Node count the upper bound is evaluated at (full graph for node
    /// cells, worst batch composition for graph cells).
    pub nodes: u64,
    /// Edge count the upper bound is evaluated at.
    pub edges: u64,
    /// Graph count the upper bound is evaluated at (1 for node cells).
    pub graphs: u64,
    /// Effective mini-batch size (0 = full batch).
    pub batch: u64,
    /// Parameter bytes.
    pub param_bytes: u64,
    /// Persistent bytes: parameters + Adam moments (+ pinned features for
    /// node cells).
    pub persistent: u64,
    /// Certified upper bound on the allocator's high-water mark.
    pub peak_upper: u64,
    /// Certified fatal floor: any ceiling below this kills the cell.
    pub floor_fatal: u64,
    /// Ideal free-at-last-use peak (liveness analysis): what a reusing
    /// allocator would need for the same step.
    pub ideal_peak: u64,
    /// Symbolic forward-activation bytes per training pass.
    pub forward: MemExpr,
    /// Symbolic gradient bytes per backward pass.
    pub backward: MemExpr,
    /// Symbolic loader bytes per batch.
    pub load: MemExpr,
}

impl CellCert {
    /// The sweep cell path, e.g. `table4/Cora/GCN/PyG`.
    pub fn path(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.experiment,
            self.dataset,
            self.model.label(),
            self.framework.label()
        )
    }

    /// Statically decides a memory ceiling for this cell.
    pub fn ceiling_verdict(&self, ceiling: u64) -> MemVerdict {
        if ceiling >= self.peak_upper {
            MemVerdict::Fits
        } else if ceiling < self.floor_fatal {
            MemVerdict::Fatal
        } else {
            MemVerdict::Unknown
        }
    }
}

/// Certifies one node-classification cell against its dataset.
///
/// The supervisor's node body pins `2P` of parameter copies plus the
/// feature matrix persistently and Adam pins another `2P`; each epoch runs
/// one full-batch train step (forward + train-split logits gather + loss +
/// backward) and one eval step (no-grad forward + val gather + a test
/// gather on best-so-far epochs). Node training cannot shrink its batch,
/// so the train step is both the peak interval and the fatal floor.
pub fn certify_node_cell(model: ModelKind, fw: FrameworkKind, ds: &NodeDataset) -> CellCert {
    let plan = StackPlan::node(model, fw, ds.features.cols(), ds.num_classes);
    let g = lower_stack(&plan, "");
    let fp = footprint_of(&g, &plan);
    let n = ds.graph.num_nodes() as u64;
    let e = ds.graph.num_edges() as u64;
    let c = ds.num_classes as u64;
    let (tr, va, te) = (
        ds.train_idx.len() as u64,
        ds.val_idx.len() as u64,
        ds.test_idx.len() as u64,
    );
    let feature_bytes = 4 * n * ds.features.cols() as u64;
    let persistent = 4 * fp.param_bytes + feature_bytes;
    let fwd = fp.forward.eval(n, e, 1);
    let bwd = fp.backward.eval(n, e, 1);
    // Train interval: forward, the [Tr, C] logits gather, its gradient,
    // and every activation/parameter gradient.
    let train = fwd + bwd + 8 * tr * c;
    // Eval interval: a no-grad forward (no loss scalar) plus the val
    // gather, plus the test gather when validation improves.
    let eval_hi = fp.forward.minus_const(4).eval(n, e, 1) + 4 * va * c + 4 * te * c;
    let ideal_peak = persistent + liveness::ideal_step_peak(&g, n, e, 1);
    CellCert {
        experiment: "table4",
        dataset: ds.name.clone(),
        model,
        framework: fw,
        nodes: n,
        edges: e,
        graphs: 1,
        batch: 0,
        param_bytes: fp.param_bytes,
        persistent,
        peak_upper: persistent + train.max(eval_hi),
        floor_fatal: persistent + train,
        ideal_peak,
        forward: fp.forward,
        backward: fp.backward,
        load: fp.load,
    }
}

/// Certifies one graph-classification cell at effective batch size `batch`
/// (post the sweep's fold-size clamp).
///
/// The upper bound takes the worst batch composition the shuffled loader
/// can assemble — the `batch` largest node counts and, independently, the
/// `batch` largest edge counts — which dominates every train, val, and
/// test chunk by monotonicity. The fatal floor is the worst *single*
/// sample (loader + no-grad forward): every sample is mandatory in fold
/// 0's train, val, or test split, and any chunk containing it demands at
/// least that much, so a ceiling below the floor fails training even after
/// batch halving reaches 1 and fails evaluation retries outright.
pub fn certify_graph_cell(
    model: ModelKind,
    fw: FrameworkKind,
    ds: &GraphDataset,
    batch: usize,
) -> CellCert {
    let plan = StackPlan::graph(model, fw, ds.feature_dim, ds.num_classes);
    let g = lower_stack(&plan, "");
    let fp = footprint_of(&g, &plan);
    let persistent = 4 * fp.param_bytes;
    let b = batch.clamp(1, ds.samples.len().max(1)) as u64;
    let mut node_counts: Vec<u64> = ds
        .samples
        .iter()
        .map(|s| s.graph.num_nodes() as u64)
        .collect();
    let mut edge_counts: Vec<u64> = ds
        .samples
        .iter()
        .map(|s| s.graph.num_edges() as u64)
        .collect();
    node_counts.sort_unstable_by(|a, b| b.cmp(a));
    edge_counts.sort_unstable_by(|a, b| b.cmp(a));
    let n_top: u64 = node_counts.iter().take(b as usize).sum();
    let e_top: u64 = edge_counts.iter().take(b as usize).sum();
    let chunk = fp.load.eval(n_top, e_top, b)
        + fp.forward.eval(n_top, e_top, b)
        + fp.backward.eval(n_top, e_top, b);
    let floor = ds
        .samples
        .iter()
        .map(|s| {
            let (ni, ei) = (s.graph.num_nodes() as u64, s.graph.num_edges() as u64);
            fp.load.eval(ni, ei, 1) + fp.forward.minus_const(4).eval(ni, ei, 1)
        })
        .max()
        .unwrap_or(0);
    let ideal_peak =
        persistent + fp.load.eval(n_top, e_top, b) + liveness::ideal_step_peak(&g, n_top, e_top, b);
    CellCert {
        experiment: "table5",
        dataset: ds.name.clone(),
        model,
        framework: fw,
        nodes: n_top,
        edges: e_top,
        graphs: b,
        batch: b,
        param_bytes: fp.param_bytes,
        persistent,
        peak_upper: persistent + chunk,
        floor_fatal: persistent + floor,
        ideal_peak,
        forward: fp.forward,
        backward: fp.backward,
        load: fp.load,
    }
}

/// Certifies one neighbor-sampled training cell against its spec — without
/// generating the (possibly million-node) RMAT graph. The fan-out schedule
/// bounds every union block in closed form ([`SampleSpec::max_batch_nodes`]
/// / [`SampleSpec::max_batch_edges`]), and those bounds hold for both
/// sampler kinds, so one certificate per (spec, kind, framework) prices
/// the worst block any chunk can assemble.
///
/// The sampled runner pins `2P` of parameter copies plus the resident
/// feature cache persistently and Adam pins another `2P`. The supervised
/// runner ends an allocator step after every train chunk (load + forward +
/// seed-logits gather + loss + backward), while the per-epoch val eval
/// and best-so-far test eval (no-grad forward + accuracy gather each)
/// share one step — so the peak interval is the larger of one train chunk
/// and two eval chunks, each bounded at the worst union block. The fatal
/// floor is the smallest mandatory attempt after batch halving bottoms
/// out: one single-seed train chunk at its own (much smaller) union
/// bound.
pub fn certify_sample_cell(
    fw: FrameworkKind,
    spec: &gnn_sample::SampleSpec,
    kind: gnn_sample::SamplerKind,
) -> CellCert {
    let model = ModelKind::Sage;
    let plan = StackPlan::node(model, fw, spec.rmat.feature_dim, spec.rmat.num_classes);
    let g = lower_stack(&plan, "");
    let fp = footprint_of(&g, &plan);
    let b = spec.batch_seeds as u64;
    let c = spec.rmat.num_classes as u64;
    let (n, e) = (spec.max_batch_nodes(), spec.max_batch_edges());
    let cache_bytes = spec.cache_rows as u64 * spec.row_bytes();
    let persistent = 4 * fp.param_bytes + cache_bytes;
    // One full train chunk: block load, forward, the [B, C] seed-logits
    // gather, its gradient, and every activation/parameter gradient.
    let train_chunk =
        fp.load.eval(n, e, 1) + fp.forward.eval(n, e, 1) + fp.backward.eval(n, e, 1) + 8 * b * c;
    // One eval chunk: block load plus a no-grad forward (no loss scalar)
    // and the [B, C] accuracy gather.
    let eval_chunk = fp.load.eval(n, e, 1) + fp.forward.minus_const(4).eval(n, e, 1) + 4 * b * c;
    let step = train_chunk.max(2 * eval_chunk);
    // Smallest mandatory attempt: one seed's union block, trained.
    let (n1, e1) = (
        gnn_sample::max_union_nodes(1, &spec.fanouts),
        gnn_sample::max_union_edges(1, &spec.fanouts),
    );
    let floor =
        fp.load.eval(n1, e1, 1) + fp.forward.eval(n1, e1, 1) + fp.backward.eval(n1, e1, 1) + 8 * c;
    let ideal_peak = persistent + fp.load.eval(n, e, 1) + liveness::ideal_step_peak(&g, n, e, 1);
    CellCert {
        experiment: "sample",
        dataset: format!("{}-{}", spec.name, kind.label()),
        model,
        framework: fw,
        nodes: n,
        edges: e,
        graphs: 1,
        batch: b,
        param_bytes: fp.param_bytes,
        persistent,
        peak_upper: persistent + step,
        floor_fatal: persistent + floor,
        ideal_peak,
        forward: fp.forward,
        backward: fp.backward,
        load: fp.load,
    }
}

/// Emits `peak-exceeds-device-memory` when a cell provably cannot run on a
/// device: its fatal floor (no batch size admissible) exceeds the
/// capacity. Configured-batch headroom is reported informationally in
/// `memory.json` instead, since batch halving can recover from it.
pub fn check_device_fit(cert: &CellCert, findings: &mut Vec<Finding>) {
    for (name, capacity) in [
        ("rtx2080ti", CostModel::rtx2080ti().device_memory),
        ("a100", CostModel::a100().device_memory),
    ] {
        if cert.floor_fatal > capacity {
            findings.push(Finding::new(
                FindingKind::PeakExceedsDeviceMemory,
                format!("{}/memory", cert.path()),
                format!(
                    "certified minimum footprint {} B (persistent {} B + smallest \
                     mandatory step) exceeds the {name}'s {capacity} B of device \
                     memory: no admissible batch size exists",
                    cert.floor_fatal, cert.persistent
                ),
            ));
        }
    }
}

/// The certifier's run-level result: one [`CellCert`] per sweep cell plus
/// any findings (device fits, unsatisfiable fault ceilings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryReport {
    /// Per-cell certificates, in sweep order.
    pub cells: Vec<CellCert>,
    /// Memory findings (also merged into the lint report).
    pub findings: Vec<Finding>,
}

impl MemoryReport {
    /// Whether certification raised no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Looks a cell up by its sweep path.
    pub fn cell(&self, path: &str) -> Option<&CellCert> {
        self.cells.iter().find(|c| c.path() == path)
    }

    /// The report as a JSON tree (the `memory.json` schema; see
    /// EXPERIMENTS.md). Field order is fixed, so equal reports serialize
    /// byte-identically.
    pub fn to_value(&self) -> Value {
        let rtx = CostModel::rtx2080ti().device_memory;
        let a100 = CostModel::a100().device_memory;
        Value::Obj(vec![
            ("clean".into(), Value::Bool(self.is_clean())),
            (
                "cells".into(),
                Value::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("cell".into(), Value::Str(c.path())),
                                ("nodes".into(), Value::Num(c.nodes as f64)),
                                ("edges".into(), Value::Num(c.edges as f64)),
                                ("graphs".into(), Value::Num(c.graphs as f64)),
                                ("batch".into(), Value::Num(c.batch as f64)),
                                ("param_bytes".into(), Value::Num(c.param_bytes as f64)),
                                ("persistent".into(), Value::Num(c.persistent as f64)),
                                ("peak_upper".into(), Value::Num(c.peak_upper as f64)),
                                ("floor_fatal".into(), Value::Num(c.floor_fatal as f64)),
                                ("ideal_peak".into(), Value::Num(c.ideal_peak as f64)),
                                (
                                    "bump_over_ideal".into(),
                                    Value::Num(c.peak_upper as f64 / c.ideal_peak.max(1) as f64),
                                ),
                                ("forward".into(), Value::Str(c.forward.to_string())),
                                ("backward".into(), Value::Str(c.backward.to_string())),
                                ("load".into(), Value::Str(c.load.to_string())),
                                ("fits_rtx2080ti".into(), Value::Bool(c.peak_upper <= rtx)),
                                ("fits_a100".into(), Value::Bool(c.peak_upper <= a100)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "findings".into(),
                Value::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Value::Obj(vec![
                                ("kind".into(), Value::Str(f.kind.label().into())),
                                ("path".into(), Value::Str(f.path.clone())),
                                ("message".into(), Value::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `memory.json` into `dir` (created if missing), next to
    /// `lint.json`, returning its path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join("memory.json");
        fs::write(&path, self.to_value().to_json())?;
        Ok(path)
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let worst = self.cells.iter().max_by_key(|c| c.peak_upper);
        write!(
            f,
            "gnn-lint memory: {} cell(s) certified — {}",
            self.cells.len(),
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", self.findings.len())
            }
        )?;
        if let Some(c) = worst {
            write!(
                f,
                " (largest: {} at {} B certified peak)",
                c.path(),
                c.peak_upper
            )?;
        }
        writeln!(f)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::{CitationSpec, TudSpec};
    use gnn_models::config::{ALL_FRAMEWORKS, ALL_MODELS};

    #[test]
    fn mem_expr_algebra_and_display() {
        let a = MemExpr {
            per_node: 4,
            per_edge: 8,
            per_graph: 0,
            constant: 12,
        };
        assert_eq!(a.eval(10, 5, 99), 40 + 40 + 12);
        assert_eq!(a.to_string(), "4*N + 8*E + 12");
        assert_eq!(MemExpr::zero().to_string(), "0");
        assert_eq!(a.double().eval(1, 1, 1), 2 * a.eval(1, 1, 1));
        assert_eq!(a.minus_const(20).constant, 0);
        let b = a.add(&shape_bytes(SymShape::new(Rows::Graphs, 3)));
        assert_eq!(b.per_graph, 12);
        assert_eq!(b.to_string(), "4*N + 8*E + 12*G + 12");
    }

    #[test]
    fn footprints_are_positive_and_loss_is_counted() {
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                for plan in [
                    StackPlan::node(model, fw, 50, 7),
                    StackPlan::graph(model, fw, 18, 6),
                ] {
                    let fp = footprint(&plan);
                    assert!(fp.forward.per_node > 0, "{model:?}/{fw:?}");
                    assert!(fp.backward.per_node > 0, "{model:?}/{fw:?}");
                    assert!(fp.param_bytes > 0, "{model:?}/{fw:?}");
                    // The 4-byte loss scalar is part of the forward.
                    assert!(fp.forward.constant >= 4, "{model:?}/{fw:?}");
                    assert!(fp.load.per_node >= 4 * plan.in_dim as u64 + 12);
                }
            }
        }
    }

    #[test]
    fn anisotropic_models_pay_edge_bytes() {
        // GAT materializes per-edge attention tensors; GCN's rustyg form
        // still gathers per-edge messages. Both must price E terms.
        for fw in ALL_FRAMEWORKS {
            let gat = footprint(&StackPlan::node(ModelKind::Gat, fw, 50, 7));
            let gcn = footprint(&StackPlan::node(ModelKind::Gcn, fw, 50, 7));
            assert!(gat.forward.per_edge > 0, "{fw:?}");
            assert!(
                gat.forward.per_edge > gcn.forward.per_edge,
                "{fw:?}: GAT should out-spend GCN per edge"
            );
        }
    }

    #[test]
    fn grad_receivers_cover_params_but_not_inputs() {
        let plan = StackPlan::node(ModelKind::Gcn, FrameworkKind::RustyG, 50, 7);
        let g = lower_stack(&plan, "");
        let recv = grad_receivers(&g);
        for (id, node) in g.nodes.iter().enumerate() {
            if node.op == "param" {
                assert!(recv[id], "param {:?} must receive a grad", node.param_name);
            }
            if matches!(node.op, "x" | "src" | "dst" | "inv_deg" | "inv_sqrt_deg") {
                assert!(!recv[id], "leaf {} must not receive a grad", node.op);
            }
        }
        assert!(recv[g.loss.unwrap()]);
    }

    #[test]
    fn node_cert_orders_bounds_and_scales_with_the_graph() {
        let ds = CitationSpec::cora().scaled(0.05).generate(0);
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                let cert = certify_node_cell(model, fw, &ds);
                assert!(cert.persistent > 4 * cert.param_bytes, "{}", cert.path());
                assert!(cert.floor_fatal > cert.persistent, "{}", cert.path());
                assert!(cert.peak_upper >= cert.floor_fatal, "{}", cert.path());
                assert!(cert.ideal_peak <= cert.peak_upper, "{}", cert.path());
                assert!(cert.ideal_peak >= cert.persistent, "{}", cert.path());
                assert_eq!(cert.batch, 0);
                assert_eq!(cert.ceiling_verdict(cert.peak_upper), MemVerdict::Fits);
                assert_eq!(
                    cert.ceiling_verdict(cert.floor_fatal - 1),
                    MemVerdict::Fatal
                );
            }
        }
        let big = CitationSpec::cora().scaled(0.1).generate(0);
        let small = certify_node_cell(ModelKind::Gcn, FrameworkKind::RustyG, &ds);
        let large = certify_node_cell(ModelKind::Gcn, FrameworkKind::RustyG, &big);
        assert!(large.peak_upper > small.peak_upper);
    }

    #[test]
    fn graph_cert_floor_uses_worst_single_sample() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(0);
        for fw in ALL_FRAMEWORKS {
            let b8 = certify_graph_cell(ModelKind::Gin, fw, &ds, 8);
            let b1 = certify_graph_cell(ModelKind::Gin, fw, &ds, 1);
            // The fatal floor is batch-independent (worst single sample)...
            assert_eq!(b8.floor_fatal, b1.floor_fatal, "{fw:?}");
            // ...while the upper bound grows with the batch.
            assert!(b8.peak_upper > b1.peak_upper, "{fw:?}");
            assert!(b8.floor_fatal > b8.persistent, "{fw:?}");
            assert!(b8.peak_upper >= b8.floor_fatal, "{fw:?}");
            assert!(b8.ideal_peak <= b8.peak_upper, "{fw:?}");
            assert_eq!(
                b8.ceiling_verdict((b8.floor_fatal + b8.peak_upper) / 2),
                MemVerdict::Unknown
            );
        }
    }

    #[test]
    fn sample_cert_prices_the_union_not_the_graph() {
        use gnn_sample::{SampleSpec, SamplerKind};
        let spec = SampleSpec::get("rmat-1m").unwrap();
        for fw in ALL_FRAMEWORKS {
            let cert = certify_sample_cell(fw, &spec, SamplerKind::Neighbor);
            assert_eq!(cert.experiment, "sample");
            assert_eq!(cert.dataset, "rmat-1m-neighbor");
            assert_eq!(
                cert.path(),
                format!("sample/rmat-1m-neighbor/SAGE/{}", fw.label())
            );
            // The bound is the fan-out union of one seed batch, orders of
            // magnitude below the million-node graph.
            assert_eq!(cert.nodes, spec.max_batch_nodes());
            assert!(cert.nodes < (spec.rmat.num_nodes() as u64) / 10);
            // Persistent = 4P + the resident feature cache.
            assert_eq!(
                cert.persistent,
                4 * cert.param_bytes + spec.cache_rows as u64 * spec.row_bytes()
            );
            assert!(cert.persistent < cert.floor_fatal, "{}", cert.path());
            assert!(cert.floor_fatal <= cert.peak_upper, "{}", cert.path());
            // The headline cell must fit the paper's 11 GB card.
            let mut findings = Vec::new();
            check_device_fit(&cert, &mut findings);
            assert!(findings.is_empty(), "{findings:?}");
            // Both sampler kinds share the same closed-form bounds; only
            // the dataset label differs.
            let lw = certify_sample_cell(fw, &spec, SamplerKind::LayerWise);
            assert_eq!(lw.dataset, "rmat-1m-layerwise");
            assert_eq!(lw.peak_upper, cert.peak_upper);
            assert_eq!(lw.floor_fatal, cert.floor_fatal);
        }
    }

    #[test]
    fn paper_scale_cells_fit_no_fatal_floor() {
        // At full scale every cell must be runnable on the paper's 11 GB
        // card (the paper ran them); the certifier must agree.
        let cora = CitationSpec::cora().generate(0);
        let pubmed = CitationSpec::pubmed().generate(0);
        let mut findings = Vec::new();
        for ds in [&cora, &pubmed] {
            for model in ALL_MODELS {
                for fw in ALL_FRAMEWORKS {
                    check_device_fit(&certify_node_cell(model, fw, ds), &mut findings);
                }
            }
        }
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn device_fit_flags_tiny_capacities_via_report() {
        let ds = CitationSpec::cora().scaled(0.05).generate(0);
        let cert = certify_node_cell(ModelKind::Gcn, FrameworkKind::RustyG, &ds);
        // Fabricate an impossible cell by checking against a tiny capacity:
        // the production path only knows the two real cards, so drive the
        // comparison directly.
        assert!(cert.floor_fatal < CostModel::rtx2080ti().device_memory);
        let mut report = MemoryReport {
            cells: vec![cert.clone()],
            findings: Vec::new(),
        };
        report.findings.push(Finding::new(
            FindingKind::PeakExceedsDeviceMemory,
            format!("{}/memory", cert.path()),
            "synthetic",
        ));
        assert!(!report.is_clean());
        let json = report.to_value().to_json();
        let v = gnn_obs::json::parse(&json).unwrap();
        assert_eq!(v.get("clean"), Some(&Value::Bool(false)));
        let cells = v.get("cells").and_then(|c| c.as_arr()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].get("cell").and_then(|c| c.as_str()),
            Some("table4/Cora/GCN/PyG")
        );
        assert!(cells[0].get("forward").and_then(|e| e.as_str()).is_some());
        assert_eq!(
            v.get("findings").and_then(|f| f.as_arr()).map(|f| f.len()),
            Some(1)
        );
    }

    #[test]
    fn report_lookup_and_display() {
        let ds = CitationSpec::cora().scaled(0.05).generate(0);
        let report = MemoryReport {
            cells: vec![certify_node_cell(ModelKind::Gat, FrameworkKind::Rgl, &ds)],
            findings: Vec::new(),
        };
        assert!(report.cell("table4/Cora/GAT/DGL").is_some());
        assert!(report.cell("table4/Cora/GCN/PyG").is_none());
        let s = report.to_string();
        assert!(s.contains("1 cell(s) certified"), "{s}");
        assert!(s.contains("clean"), "{s}");
    }
}
