//! Symbolic lowering of the study's model zoo.
//!
//! A [`StackPlan`] captures exactly what `gnn_models::build` assembles — the
//! per-layer dimensions from Tables II/III, batch-norm/ReLU/residual wiring,
//! and the readout head — and [`lower_stack`] walks it through a
//! [`GraphBuilder`], emitting the *same op sequence* each framework executes
//! at runtime: gather/scatter pairs for the PyG-like `rustyg`, fused
//! GSpMM/GSDDMM kernels for the DGL-like `rgl`. Shape defects anywhere in
//! the stack therefore surface with the runtime's own op names and scope
//! paths (`conv2/matmul`, `conv3/gspmm_mul_sum`, ...).
//!
//! Plans are plain data so tests (and the seeded-defect conformance suite)
//! can mutate a layer's dimensions and assert the analyzer pinpoints the
//! break.

use gnn_models::config::{graph_hparams, node_hparams, FrameworkKind, ModelKind};

use crate::ir::{GraphBuilder, NodeId, OpGraph, Rows};

/// Which of the paper's two protocols the stack follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Full-batch 2-layer node classification (Section IV-A).
    Node,
    /// Mini-batched 4-layer graph classification (Section IV-B).
    Graph,
}

/// One conv layer's dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    /// Input feature width.
    pub in_dim: usize,
    /// Output width per head (total width is `out * heads`).
    pub out: usize,
    /// Attention heads (1 for non-GAT layers).
    pub heads: usize,
    /// Gaussian kernels (MoNet).
    pub kernels: usize,
    /// Pseudo-coordinate dims (MoNet).
    pub pseudo_dim: usize,
}

impl LayerPlan {
    /// Total output width (`out * heads`).
    pub fn width(&self) -> usize {
        self.out * self.heads
    }
}

/// A full model stack as the builders wire it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackPlan {
    /// Architecture.
    pub model: ModelKind,
    /// Framework lowering to emit.
    pub framework: FrameworkKind,
    /// Protocol (decides head, residual wiring, batching).
    pub task: Task,
    /// Dataset feature width.
    pub in_dim: usize,
    /// Dataset class count.
    pub num_classes: usize,
    /// Conv layers in order.
    pub layers: Vec<LayerPlan>,
    /// Outer batch norm per layer (graph task, except GIN's internal norm).
    pub bn: Vec<bool>,
    /// ReLU after each layer.
    pub relu: Vec<bool>,
    /// Residual connections (applied only where widths allow, as at runtime).
    pub residual: bool,
    /// Readout MLP dims (empty for the node head).
    pub mlp_dims: Vec<usize>,
}

impl StackPlan {
    /// The 2-layer node-classification stack of `gnn_models::build` with
    /// Table II hyper-parameters.
    pub fn node(
        model: ModelKind,
        framework: FrameworkKind,
        in_dim: usize,
        num_classes: usize,
    ) -> Self {
        let hp = node_hparams(model);
        let layer = |in_dim, out, heads| LayerPlan {
            in_dim,
            out,
            heads,
            kernels: hp.kernels,
            pseudo_dim: hp.pseudo_dim,
        };
        let layers = match model {
            ModelKind::Gat => vec![
                layer(in_dim, hp.hidden, hp.heads),
                layer(hp.hidden * hp.heads, num_classes, 1),
            ],
            _ => vec![
                layer(in_dim, hp.hidden, 1),
                layer(hp.hidden, num_classes, 1),
            ],
        };
        StackPlan {
            model,
            framework,
            task: Task::Node,
            in_dim,
            num_classes,
            layers,
            bn: vec![false; 2],
            relu: vec![true, false],
            residual: false,
            mlp_dims: vec![],
        }
    }

    /// The 4-layer graph-classification stack of `gnn_models::build` with
    /// Table III hyper-parameters.
    pub fn graph(
        model: ModelKind,
        framework: FrameworkKind,
        in_dim: usize,
        num_classes: usize,
    ) -> Self {
        let hp = graph_hparams(model);
        let width = hp.out;
        let layers = (0..hp.layers)
            .map(|l| {
                let din = if l == 0 { in_dim } else { width };
                let (out, heads) = match model {
                    ModelKind::Gat => (hp.hidden, hp.heads),
                    _ => (width, 1),
                };
                LayerPlan {
                    in_dim: din,
                    out,
                    heads,
                    kernels: hp.kernels,
                    pseudo_dim: hp.pseudo_dim,
                }
            })
            .collect();
        let internal_norm = matches!(model, ModelKind::Gin);
        StackPlan {
            model,
            framework,
            task: Task::Graph,
            in_dim,
            num_classes,
            layers,
            bn: vec![!internal_norm; hp.layers],
            relu: vec![true; hp.layers],
            residual: true,
            mlp_dims: vec![width, width / 2, num_classes],
        }
    }
}

/// The batch-level leaves every lowering reads.
struct Env {
    /// Edge sources, addressing nodes.
    src: NodeId,
    /// Edge destinations, addressing nodes.
    dst: NodeId,
    /// `1 / deg` column.
    inv_deg: NodeId,
    /// `1 / sqrt(deg)` column.
    inv_sqrt_deg: NodeId,
}

fn linear(
    b: &mut GraphBuilder,
    x: NodeId,
    in_dim: usize,
    out_dim: usize,
    bias: bool,
    name: &str,
) -> NodeId {
    let w = b.param(format!("{name}.w"), in_dim, out_dim);
    let h = b.matmul(x, w);
    if bias {
        let bb = b.param(format!("{name}.b"), 1, out_dim);
        b.add_bias(h, bb)
    } else {
        h
    }
}

fn batch_norm(b: &mut GraphBuilder, x: NodeId, width: usize, name: &str) -> NodeId {
    b.push_scope("batch_norm");
    let gamma = b.param(format!("{name}.gamma"), 1, width);
    let beta = b.param(format!("{name}.beta"), 1, width);
    let h = b.mul_row(x, gamma);
    let h = b.add_bias(h, beta);
    b.pop_scope();
    h
}

/// DGL's fused copy-sum GSpMM, modelled as its gather/scatter dataflow under
/// a `gspmm_copy_sum` scope so findings name the fused kernel.
fn gspmm_copy_sum(b: &mut GraphBuilder, env: &Env, x: NodeId) -> NodeId {
    b.push_scope("gspmm_copy_sum");
    let msg = b.gather(x, env.src);
    let agg = b.scatter_add(msg, env.dst, Rows::Nodes);
    b.pop_scope();
    agg
}

/// DGL's fused multiply-sum GSpMM (`w` is `[E, heads]`).
fn gspmm_mul_sum(b: &mut GraphBuilder, env: &Env, x: NodeId, w: NodeId, heads: usize) -> NodeId {
    b.push_scope("gspmm_mul_sum");
    let msg = b.gather(x, env.src);
    let weighted = b.mul_per_head(msg, w, heads);
    let agg = b.scatter_add(weighted, env.dst, Rows::Nodes);
    b.pop_scope();
    agg
}

/// DGL's fused per-edge `u_add_v` GSDDMM.
fn gsddmm_u_add_v(b: &mut GraphBuilder, env: &Env, u: NodeId, v: NodeId) -> NodeId {
    b.push_scope("gsddmm_u_add_v");
    let us = b.gather(u, env.src);
    let vs = b.gather(v, env.dst);
    let out = b.add(us, vs);
    b.pop_scope();
    out
}

/// DGL's `edge_softmax` (segment softmax keyed by destination).
fn edge_softmax(b: &mut GraphBuilder, env: &Env, scores: NodeId) -> NodeId {
    b.push_scope("edge_softmax");
    let alpha = b.segment_softmax(scores, env.dst, Rows::Nodes);
    b.pop_scope();
    alpha
}

/// Lowers one conv layer. `edge_state` threads rgl GatedGCN's persistent
/// edge features between layers.
fn lower_conv(
    b: &mut GraphBuilder,
    env: &Env,
    plan: &StackPlan,
    layer: &LayerPlan,
    x: NodeId,
    edge_state: &mut Option<NodeId>,
) -> NodeId {
    let pyg = plan.framework == FrameworkKind::RustyG;
    match plan.model {
        ModelKind::Gcn => {
            if pyg {
                let h = linear(b, x, layer.in_dim, layer.out, true, "lin");
                let msg = b.gather(h, env.src);
                let agg = b.scatter_add(msg, env.dst, Rows::Nodes);
                let agg = b.add(agg, h);
                b.mul_col(agg, env.inv_deg)
            } else {
                let xn = b.mul_col(x, env.inv_sqrt_deg);
                let h = linear(b, xn, layer.in_dim, layer.out, true, "lin");
                let agg = gspmm_copy_sum(b, env, h);
                let agg = b.add(agg, h);
                b.mul_col(agg, env.inv_sqrt_deg)
            }
        }
        ModelKind::Gat => {
            let width = layer.width();
            let z = linear(b, x, layer.in_dim, width, false, "lin");
            let attn_l = b.param("attn_l", 1, width);
            let attn_r = b.param("attn_r", 1, width);
            let al = b.head_dot(z, attn_l, layer.heads);
            let ar = b.head_dot(z, attn_r, layer.heads);
            if pyg {
                let sd = b.gather(al, env.dst);
                let ss = b.gather(ar, env.src);
                let scores = b.add(sd, ss);
                let scores = b.unary("leaky_relu", scores);
                let alpha = b.segment_softmax(scores, env.dst, Rows::Nodes);
                let msg = b.gather(z, env.src);
                let weighted = b.mul_per_head(msg, alpha, layer.heads);
                b.scatter_add(weighted, env.dst, Rows::Nodes)
            } else {
                let scores = gsddmm_u_add_v(b, env, ar, al);
                let scores = b.unary("leaky_relu", scores);
                let alpha = edge_softmax(b, env, scores);
                gspmm_mul_sum(b, env, z, alpha, layer.heads)
            }
        }
        ModelKind::Sage => {
            let pooled = linear(b, x, layer.in_dim, layer.in_dim, true, "pool");
            let pooled = b.unary("relu", pooled);
            let agg = if pyg {
                let msg = b.gather(pooled, env.src);
                let summed = b.scatter_add(msg, env.dst, Rows::Nodes);
                b.mul_col(summed, env.inv_deg)
            } else {
                let summed = gspmm_copy_sum(b, env, pooled);
                b.mul_col(summed, env.inv_deg)
            };
            let cat = b.concat_cols(x, agg);
            let h = linear(b, cat, 2 * layer.in_dim, layer.out, true, "lin");
            b.unary("l2_normalize", h)
        }
        ModelKind::Gin => {
            let agg = if pyg {
                let msg = b.gather(x, env.src);
                b.scatter_add(msg, env.dst, Rows::Nodes)
            } else {
                gspmm_copy_sum(b, env, x)
            };
            let eps = b.param("eps", 1, 1);
            let one_plus_eps = b.unary("add_scalar", eps);
            let scaled = b.scale_by(x, one_plus_eps);
            let mixed = b.add(scaled, agg);
            let h = linear(b, mixed, layer.in_dim, layer.out, true, "v");
            let h = batch_norm(b, h, layer.out, "bn");
            let h = b.unary("relu", h);
            linear(b, h, layer.out, layer.out, true, "w")
        }
        ModelKind::MoNet => {
            let u_dst = b.gather(env.inv_sqrt_deg, env.dst);
            let u_src = b.gather(env.inv_sqrt_deg, env.src);
            let u = b.concat_cols(u_dst, u_src);
            let proj = linear(b, u, 2, layer.pseudo_dim, true, "pseudo_proj");
            let pseudo = b.unary("tanh", proj);
            let mut out = None;
            for k in 0..layer.kernels {
                b.push_scope(format!("kernel{k}"));
                let mu = b.param("mu", 1, layer.pseudo_dim);
                let inv_sigma = b.param("inv_sigma", 1, layer.pseudo_dim);
                let neg_mu = b.unary("scale", mu);
                let diff = b.add_bias(pseudo, neg_mu);
                let sq = b.mul(diff, diff);
                let prec = b.mul(inv_sigma, inv_sigma);
                let scaled = b.mul_row(sq, prec);
                let w = b.sum_cols(scaled);
                let w = b.unary("exp", w);
                let fc = linear(b, x, layer.in_dim, layer.out, false, "fc");
                let agg = if pyg {
                    let msg = b.gather(fc, env.src);
                    let weighted = b.mul_col(msg, w);
                    b.scatter_add(weighted, env.dst, Rows::Nodes)
                } else {
                    gspmm_mul_sum(b, env, fc, w, 1)
                };
                out = Some(match out {
                    Some(acc) => b.add(acc, agg),
                    None => agg,
                });
                b.pop_scope();
            }
            out.expect("at least one kernel")
        }
        ModelKind::GatedGcn => {
            let ah = linear(b, x, layer.in_dim, layer.out, true, "a");
            let bh = linear(b, x, layer.in_dim, layer.out, true, "b");
            let dh = linear(b, x, layer.in_dim, layer.out, true, "d");
            let eh = linear(b, x, layer.in_dim, layer.out, true, "e");
            if pyg {
                let gd = b.gather(dh, env.dst);
                let gs = b.gather(eh, env.src);
                let logits = b.add(gd, gs);
                let gates = b.unary("sigmoid", logits);
                let denom = b.scatter_add(gates, env.dst, Rows::Nodes);
                let denom = b.unary("add_scalar", denom);
                let msg = b.gather(bh, env.src);
                let msg = b.mul(msg, gates);
                let num = b.scatter_add(msg, env.dst, Rows::Nodes);
                let frac = b.div(num, denom);
                b.add(ah, frac)
            } else {
                // DGL threads an explicit per-edge feature tensor; the first
                // layer seeds it with constant ones.
                let e_in = match *edge_state {
                    Some(e) => e,
                    None => b.input("edge_ones", Rows::Edges, layer.in_dim),
                };
                let ce = linear(b, e_in, layer.in_dim, layer.out, true, "c");
                let uv = gsddmm_u_add_v(b, env, eh, dh);
                let e_out = b.add(ce, uv);
                let gates = b.unary("sigmoid", e_out);
                let num = gspmm_mul_sum(b, env, bh, gates, layer.out);
                let gate_sums = b.segment_reduce("segment_sum", gates, env.dst, Rows::Nodes);
                let denom = b.unary("add_scalar", gate_sums);
                let frac = b.div(num, denom);
                *edge_state = Some(e_out);
                b.add(ah, frac)
            }
        }
    }
}

/// Lowers a complete stack (convs + head + loss) into an [`OpGraph`], with
/// op paths rooted at `prefix`.
pub fn lower_stack(plan: &StackPlan, prefix: &str) -> OpGraph {
    let mut b = GraphBuilder::with_prefix(prefix);
    let mut h = b.input("x", Rows::Nodes, plan.in_dim);
    let env = Env {
        src: b.index_input("src", Rows::Edges, Rows::Nodes),
        dst: b.index_input("dst", Rows::Edges, Rows::Nodes),
        inv_deg: b.input("inv_deg", Rows::Nodes, 1),
        inv_sqrt_deg: b.input("inv_sqrt_deg", Rows::Nodes, 1),
    };
    let mut edge_state = None;
    for (i, layer) in plan.layers.iter().enumerate() {
        b.push_scope(format!("conv{}", i + 1));
        let mut out = lower_conv(&mut b, &env, plan, layer, h, &mut edge_state);
        if plan.bn.get(i).copied().unwrap_or(false) {
            let width = b.shape(out).cols;
            out = batch_norm(&mut b, out, width, "bn");
        }
        if plan.relu.get(i).copied().unwrap_or(false) {
            out = b.unary("relu", out);
        }
        // Mirror the runtime exactly: residuals apply only when shapes match.
        if plan.residual && b.shape(out) == b.shape(h) {
            out = b.residual_add(out, h);
        }
        b.pop_scope();
        h = out;
    }
    match plan.task {
        Task::Node => {
            let labels = b.index_input("labels", Rows::Nodes, Rows::Const(plan.num_classes));
            b.push_scope("loss");
            b.cross_entropy(h, labels, plan.num_classes);
            b.pop_scope();
        }
        Task::Graph => {
            b.push_scope("readout");
            let graph_ids = b.index_input("graph_ids", Rows::Nodes, Rows::Graphs);
            let pool_op = match plan.framework {
                FrameworkKind::RustyG => "global_mean_pool",
                FrameworkKind::Rgl => "segment_mean_pool",
            };
            let mut g = b.segment_reduce(pool_op, h, graph_ids, Rows::Graphs);
            let last = plan.mlp_dims.len().saturating_sub(2);
            for (i, w) in plan.mlp_dims.windows(2).enumerate() {
                g = linear(&mut b, g, w[0], w[1], true, &format!("mlp{i}"));
                if i != last {
                    g = b.unary("relu", g);
                }
            }
            b.pop_scope();
            let labels = b.index_input("labels", Rows::Graphs, Rows::Const(plan.num_classes));
            b.push_scope("loss");
            b.cross_entropy(g, labels, plan.num_classes);
            b.pop_scope();
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_models::config::{ALL_FRAMEWORKS, ALL_MODELS};

    #[test]
    fn all_twelve_node_lowerings_are_clean() {
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::node(model, fw, 1433, 7);
                let g = lower_stack(&plan, "node");
                assert!(g.findings.is_empty(), "{model:?}/{fw:?}: {:?}", g.findings);
                assert!(g.loss.is_some());
            }
        }
    }

    #[test]
    fn all_twelve_graph_lowerings_are_clean() {
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                let plan = StackPlan::graph(model, fw, 18, 6);
                let g = lower_stack(&plan, "graph");
                assert!(g.findings.is_empty(), "{model:?}/{fw:?}: {:?}", g.findings);
                assert_eq!(plan.layers.len(), 4);
            }
        }
    }

    #[test]
    fn gat_graph_width_is_heads_times_hidden() {
        let plan = StackPlan::graph(ModelKind::Gat, FrameworkKind::Rgl, 18, 6);
        assert_eq!(plan.layers[0].width(), 256);
        assert_eq!(plan.layers[1].in_dim, 256);
    }

    #[test]
    fn wrong_hidden_dim_yields_matmul_finding_at_conv2() {
        let mut plan = StackPlan::node(ModelKind::Gcn, FrameworkKind::RustyG, 1433, 7);
        plan.layers[1].in_dim = 64; // true width is 80
        let g = lower_stack(&plan, "fixture");
        assert_eq!(g.findings.len(), 1, "{:?}", g.findings);
        let f = &g.findings[0];
        assert!(f.path.contains("conv2"), "{}", f.path);
        assert!(f.path.ends_with("matmul"), "{}", f.path);
        assert!(
            f.message
                .contains("inner dimensions disagree (lhs cols = 80, rhs rows = 64)"),
            "{}",
            f.message
        );
    }

    #[test]
    fn param_inventory_matches_runtime_families() {
        // GatedGCN under DGL has 5 linears/layer vs 4 under PyG.
        let pyg = lower_stack(
            &StackPlan::node(ModelKind::GatedGcn, FrameworkKind::RustyG, 10, 3),
            "",
        );
        let dgl = lower_stack(
            &StackPlan::node(ModelKind::GatedGcn, FrameworkKind::Rgl, 10, 3),
            "",
        );
        assert_eq!(pyg.params().count(), 2 * 4 * 2);
        assert_eq!(dgl.params().count(), 2 * 5 * 2);
    }
}
