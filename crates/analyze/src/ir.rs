//! Symbolic op-graph IR for shape/dtype inference.
//!
//! GNN tensors in this workspace are all two-dimensional with a *symbolic*
//! row extent (number of nodes, edges, or graphs in whatever batch arrives
//! at runtime) and a *concrete* column width fixed by the hyper-parameters.
//! The IR mirrors that exactly: a [`SymShape`] is a symbolic row class plus
//! a concrete width, and index arrays additionally carry the row class they
//! *address* (their domain), which makes gather/scatter domain safety a
//! static property.
//!
//! The [`GraphBuilder`] applies each op's shape rule as the lowering is
//! walked. On a violation it records a [`Finding`] — rendered through the
//! shared [`gnn_tensor::ShapeError`] so the message is identical to the
//! panic the runtime would raise — and *recovers* with the op's declared
//! output shape, so one defect yields one finding instead of a cascade.

use std::fmt;

use gnn_tensor::ShapeError;

use crate::report::{Finding, FindingKind};

/// Symbolic row extent of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rows {
    /// One row per node of the batch.
    Nodes,
    /// One row per edge of the batch.
    Edges,
    /// One row per graph of the batch.
    Graphs,
    /// A concrete row count (parameters, scalars).
    Const(usize),
}

impl fmt::Display for Rows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rows::Nodes => write!(f, "N"),
            Rows::Edges => write!(f, "E"),
            Rows::Graphs => write!(f, "G"),
            Rows::Const(n) => write!(f, "{n}"),
        }
    }
}

/// Symbolic tensor shape: symbolic rows × concrete columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymShape {
    /// Row extent.
    pub rows: Rows,
    /// Column width.
    pub cols: usize,
}

impl SymShape {
    /// Shorthand constructor.
    pub fn new(rows: Rows, cols: usize) -> Self {
        SymShape { rows, cols }
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

/// Element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// Dense float data.
    F32,
    /// Index arrays (edge endpoints, segment ids, labels).
    U32,
}

/// Node handle within an [`OpGraph`].
pub type NodeId = usize;

/// One op (or leaf) of the symbolic graph.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// Op name (`"matmul"`, `"gather_rows"`, `"param"`, ...).
    pub op: &'static str,
    /// Scope path of the op, e.g. `"Cora/GCN/PyG/conv2/matmul"`.
    pub path: String,
    /// Input nodes.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: SymShape,
    /// Element type of the output.
    pub dtype: DType,
    /// For `param` leaves: the parameter's name.
    pub param_name: Option<String>,
    /// Whether a gradient is wanted for (or flows through) this node.
    pub requires_grad: bool,
    /// Whether the op propagates gradients to its inputs (false for leaves
    /// and for explicit `detach`-style barriers).
    pub differentiable: bool,
}

/// Index-array metadata: how many entries, and what they address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexDomain {
    /// The row class the index values select (e.g. `Nodes` for edge
    /// endpoints, `Graphs` for per-node graph ids).
    pub domain: Rows,
}

/// A fully lowered symbolic graph plus the findings its construction raised.
#[derive(Debug, Clone, Default)]
pub struct OpGraph {
    /// All nodes in insertion order (inputs precede users).
    pub nodes: Vec<OpNode>,
    /// The scalar training loss, if the lowering reached one.
    pub loss: Option<NodeId>,
    /// Shape findings raised while building.
    pub findings: Vec<Finding>,
}

impl OpGraph {
    /// All parameter leaves.
    pub fn params(&self) -> impl Iterator<Item = (NodeId, &OpNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == "param")
    }

    /// Total parameter bytes (f32). Parameter rows are always concrete.
    pub fn param_bytes(&self) -> u64 {
        self.params()
            .map(|(_, p)| match p.shape.rows {
                Rows::Const(r) => 4 * (r * p.shape.cols) as u64,
                _ => 0,
            })
            .sum()
    }
}

/// Incrementally builds an [`OpGraph`], applying shape rules per op.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: OpGraph,
    scopes: Vec<String>,
    index_domains: Vec<Option<IndexDomain>>,
}

impl GraphBuilder {
    /// A builder whose op paths start at `prefix` (e.g. `"Cora/GCN/PyG"`).
    pub fn with_prefix(prefix: &str) -> Self {
        let mut b = GraphBuilder::default();
        if !prefix.is_empty() {
            b.scopes.push(prefix.to_string());
        }
        b
    }

    /// Enters a named scope (appears in op paths until popped).
    pub fn push_scope(&mut self, name: impl Into<String>) {
        self.scopes.push(name.into());
    }

    /// Leaves the innermost scope.
    pub fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn path_of(&self, op: &str) -> String {
        if self.scopes.is_empty() {
            op.to_string()
        } else {
            format!("{}/{op}", self.scopes.join("/"))
        }
    }

    /// Shape of a node.
    pub fn shape(&self, id: NodeId) -> SymShape {
        self.graph.nodes[id].shape
    }

    /// Records a shape finding at the current scope for `op`.
    pub fn finding(&mut self, op: &str, message: impl Into<String>) {
        let path = self.path_of(op);
        self.graph
            .findings
            .push(Finding::new(FindingKind::ShapeMismatch, path, message));
    }

    fn shape_err(&mut self, e: ShapeError) {
        self.finding(e.op, e.to_string());
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        op: &'static str,
        inputs: Vec<NodeId>,
        shape: SymShape,
        dtype: DType,
        param_name: Option<String>,
        requires_grad: bool,
        differentiable: bool,
    ) -> NodeId {
        let id = self.graph.nodes.len();
        self.graph.nodes.push(OpNode {
            op,
            path: self.path_of(op),
            inputs,
            shape,
            dtype,
            param_name,
            requires_grad,
            differentiable,
        });
        self.index_domains.push(None);
        id
    }

    fn flows(&self, inputs: &[NodeId]) -> bool {
        inputs.iter().any(|&i| self.graph.nodes[i].requires_grad)
    }

    /// A non-trainable f32 input leaf (features, degree tensors, ...).
    pub fn input(&mut self, name: &'static str, rows: Rows, cols: usize) -> NodeId {
        self.push(
            name,
            vec![],
            SymShape::new(rows, cols),
            DType::F32,
            None,
            false,
            false,
        )
    }

    /// A u32 index-array leaf with `rows` entries addressing `domain` rows.
    pub fn index_input(&mut self, name: &'static str, rows: Rows, domain: Rows) -> NodeId {
        let id = self.push(
            name,
            vec![],
            SymShape::new(rows, 1),
            DType::U32,
            None,
            false,
            false,
        );
        self.index_domains[id] = Some(IndexDomain { domain });
        id
    }

    /// A trainable parameter leaf `[rows, cols]` (rows concrete). Its path
    /// ends in the parameter's name so findings identify it directly.
    pub fn param(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> NodeId {
        let name = name.into();
        let id = self.push(
            "param",
            vec![],
            SymShape::new(Rows::Const(rows), cols),
            DType::F32,
            Some(name.clone()),
            true,
            false,
        );
        self.graph.nodes[id].path = self.path_of(&name);
        id
    }

    /// A parameter with gradients disabled — the frozen-parameter defect
    /// the tape audit must catch.
    pub fn frozen_param(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> NodeId {
        let id = self.param(name, rows, cols);
        self.graph.nodes[id].requires_grad = false;
        id
    }

    /// `x [r, k] @ w [k', c] -> [r, c]`; flags `k != k'`.
    pub fn matmul(&mut self, x: NodeId, w: NodeId) -> NodeId {
        let (xs, ws) = (self.shape(x), self.shape(w));
        let k = match ws.rows {
            Rows::Const(k) => k,
            other => {
                self.finding(
                    "matmul",
                    format!("matmul: weight rows must be concrete, got {other}"),
                );
                xs.cols
            }
        };
        if xs.cols != k {
            self.shape_err(ShapeError::inner_dim("matmul", xs.cols, k));
        }
        let rg = self.flows(&[x, w]);
        self.push(
            "matmul",
            vec![x, w],
            SymShape::new(xs.rows, ws.cols),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// `x [r, c] + b [1, c]` broadcast over rows.
    pub fn add_bias(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let (xs, bs) = (self.shape(x), self.shape(b));
        if bs.rows != Rows::Const(1) {
            self.finding(
                "add_bias",
                format!("add_bias: bias rows must be 1, got {}", bs.rows),
            );
        }
        if xs.cols != bs.cols {
            self.shape_err(ShapeError::width("add_bias", xs.cols, bs.cols));
        }
        let rg = self.flows(&[x, b]);
        self.push("add_bias", vec![x, b], xs, DType::F32, None, rg, true)
    }

    fn binary(&mut self, op: &'static str, x: NodeId, y: NodeId) -> NodeId {
        let (xs, ys) = (self.shape(x), self.shape(y));
        if xs.rows != ys.rows {
            self.finding(
                op,
                format!(
                    "{op}: operand rows differ (lhs rows = {}, rhs rows = {})",
                    xs.rows, ys.rows
                ),
            );
        }
        if xs.cols != ys.cols {
            self.shape_err(ShapeError::width(op, xs.cols, ys.cols));
        }
        let rg = self.flows(&[x, y]);
        self.push(op, vec![x, y], xs, DType::F32, None, rg, true)
    }

    /// Elementwise add of same-shape operands.
    pub fn add(&mut self, x: NodeId, y: NodeId) -> NodeId {
        self.binary("add", x, y)
    }

    /// Elementwise add used for residual connections (distinct op name so
    /// findings identify the stack wiring rather than the conv internals).
    pub fn residual_add(&mut self, x: NodeId, y: NodeId) -> NodeId {
        self.binary("residual_add", x, y)
    }

    /// Elementwise multiply of same-shape operands.
    pub fn mul(&mut self, x: NodeId, y: NodeId) -> NodeId {
        self.binary("mul", x, y)
    }

    /// Elementwise divide of same-shape operands.
    pub fn div(&mut self, x: NodeId, y: NodeId) -> NodeId {
        self.binary("div", x, y)
    }

    /// `x [r, c] * col [r, 1]` broadcast across columns.
    pub fn mul_col(&mut self, x: NodeId, col: NodeId) -> NodeId {
        let (xs, cs) = (self.shape(x), self.shape(col));
        if cs.cols != 1 {
            self.finding(
                "mul_col",
                format!("mul_col: scale must be one column, got {}", cs.cols),
            );
        }
        if xs.rows != cs.rows {
            self.finding(
                "mul_col",
                format!(
                    "mul_col: operand rows differ (lhs rows = {}, rhs rows = {})",
                    xs.rows, cs.rows
                ),
            );
        }
        let rg = self.flows(&[x, col]);
        self.push("mul_col", vec![x, col], xs, DType::F32, None, rg, true)
    }

    /// `x [r, c] * row [1, c]` broadcast across rows.
    pub fn mul_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let (xs, rs) = (self.shape(x), self.shape(row));
        if rs.rows != Rows::Const(1) {
            self.finding(
                "mul_row",
                format!("mul_row: scale rows must be 1, got {}", rs.rows),
            );
        }
        if xs.cols != rs.cols {
            self.shape_err(ShapeError::width("mul_row", xs.cols, rs.cols));
        }
        let rg = self.flows(&[x, row]);
        self.push("mul_row", vec![x, row], xs, DType::F32, None, rg, true)
    }

    /// `x * s` with a scalar `s [1, 1]` broadcast over all elements (GIN's
    /// `(1 + ε)` mix).
    pub fn scale_by(&mut self, x: NodeId, s: NodeId) -> NodeId {
        let ss = self.shape(s);
        if ss != SymShape::new(Rows::Const(1), 1) {
            self.finding(
                "scale_by",
                format!("scale_by: scale must be a scalar, got {ss}"),
            );
        }
        let xs = self.shape(x);
        let rg = self.flows(&[x, s]);
        self.push("scale_by", vec![x, s], xs, DType::F32, None, rg, true)
    }

    /// Column concatenation of same-row operands.
    pub fn concat_cols(&mut self, x: NodeId, y: NodeId) -> NodeId {
        let (xs, ys) = (self.shape(x), self.shape(y));
        if xs.rows != ys.rows {
            self.finding(
                "concat_cols",
                format!(
                    "concat_cols: operand rows differ (lhs rows = {}, rhs rows = {})",
                    xs.rows, ys.rows
                ),
            );
        }
        let rg = self.flows(&[x, y]);
        self.push(
            "concat_cols",
            vec![x, y],
            SymShape::new(xs.rows, xs.cols + ys.cols),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// A shape-preserving differentiable unary op (`relu`, `sigmoid`,
    /// `tanh`, `leaky_relu`, `exp`, `scale`, `l2_normalize`, ...).
    pub fn unary(&mut self, op: &'static str, x: NodeId) -> NodeId {
        let s = self.shape(x);
        let rg = self.flows(&[x]);
        self.push(op, vec![x], s, DType::F32, None, rg, true)
    }

    /// Row-wise sum: `[r, c] -> [r, 1]`.
    pub fn sum_cols(&mut self, x: NodeId) -> NodeId {
        let s = self.shape(x);
        let rg = self.flows(&[x]);
        self.push(
            "sum_cols",
            vec![x],
            SymShape::new(s.rows, 1),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// Gradient barrier: value passes, gradient does not.
    pub fn detach(&mut self, x: NodeId) -> NodeId {
        let s = self.shape(x);
        self.push("detach", vec![x], s, DType::F32, None, false, false)
    }

    fn index_domain(&mut self, op: &'static str, idx: NodeId) -> IndexDomain {
        match self.index_domains[idx] {
            Some(d) => d,
            None => {
                self.finding(op, format!("{op}: index operand is not a u32 index array"));
                IndexDomain {
                    domain: Rows::Nodes,
                }
            }
        }
    }

    /// `gather_rows(x [D, c], idx)` where `idx` addresses `D` rows,
    /// producing `[idx.rows, c]`. Flags a domain mismatch — the symbolic
    /// form of an out-of-bounds index.
    pub fn gather(&mut self, x: NodeId, idx: NodeId) -> NodeId {
        let xs = self.shape(x);
        let is = self.shape(idx);
        let dom = self.index_domain("gather_rows", idx);
        if xs.rows != dom.domain {
            self.finding(
                "gather_rows",
                format!(
                    "gather_rows: index domain mismatch (data rows = {}, index addresses {})",
                    xs.rows, dom.domain
                ),
            );
        }
        let rg = self.flows(&[x]);
        self.push(
            "gather_rows",
            vec![x, idx],
            SymShape::new(is.rows, xs.cols),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// `scatter_add_rows(x [r, c], idx, out_rows)` producing `[out_rows, c]`.
    pub fn scatter_add(&mut self, x: NodeId, idx: NodeId, out_rows: Rows) -> NodeId {
        let xs = self.shape(x);
        let is = self.shape(idx);
        let dom = self.index_domain("scatter_add_rows", idx);
        if xs.rows != is.rows {
            self.finding(
                "scatter_add_rows",
                format!(
                    "scatter_add_rows: index length mismatch (ids rows = {}, data rows = {})",
                    is.rows, xs.rows
                ),
            );
        }
        if dom.domain != out_rows {
            self.finding(
                "scatter_add_rows",
                format!(
                    "scatter_add_rows: index domain mismatch (output rows = {out_rows}, index addresses {})",
                    dom.domain
                ),
            );
        }
        let rg = self.flows(&[x]);
        self.push(
            "scatter_add_rows",
            vec![x, idx],
            SymShape::new(out_rows, xs.cols),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    fn segment_common(&mut self, op: &'static str, x: NodeId, ids: NodeId, segments: Rows) {
        let xs = self.shape(x);
        let is = self.shape(ids);
        let dom = self.index_domain(op, ids);
        if xs.rows != is.rows {
            self.finding(
                op,
                format!(
                    "{op}: ids length mismatch (ids rows = {}, data rows = {})",
                    is.rows, xs.rows
                ),
            );
        }
        if dom.domain != segments {
            self.finding(
                op,
                format!(
                    "{op}: segment domain mismatch (segments = {segments}, ids address {})",
                    dom.domain
                ),
            );
        }
    }

    /// Segment reduction (`segment_sum` / `segment_mean` / `segment_max`):
    /// `[r, c]` reduced into `[segments, c]`.
    pub fn segment_reduce(
        &mut self,
        op: &'static str,
        x: NodeId,
        ids: NodeId,
        segments: Rows,
    ) -> NodeId {
        self.segment_common(op, x, ids, segments);
        let xs = self.shape(x);
        let rg = self.flows(&[x]);
        self.push(
            op,
            vec![x, ids],
            SymShape::new(segments, xs.cols),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// Segment softmax: shape-preserving normalization within segments.
    pub fn segment_softmax(&mut self, x: NodeId, ids: NodeId, segments: Rows) -> NodeId {
        self.segment_common("segment_softmax", x, ids, segments);
        let xs = self.shape(x);
        let rg = self.flows(&[x]);
        self.push(
            "segment_softmax",
            vec![x, ids],
            xs,
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// Per-head dot product with an attention vector `a [1, H·D]`:
    /// `[r, H·D] -> [r, H]`.
    pub fn head_dot(&mut self, x: NodeId, a: NodeId, heads: usize) -> NodeId {
        let (xs, av) = (self.shape(x), self.shape(a));
        if av.rows != Rows::Const(1) || av.cols != xs.cols {
            self.shape_err(ShapeError::width("head_dot", xs.cols, av.cols));
        }
        if heads == 0 || !xs.cols.is_multiple_of(heads.max(1)) {
            self.shape_err(ShapeError::heads("head_dot", xs.cols, heads));
        }
        let rg = self.flows(&[x, a]);
        self.push(
            "head_dot",
            vec![x, a],
            SymShape::new(xs.rows, heads),
            DType::F32,
            None,
            rg,
            true,
        )
    }

    /// Per-head broadcast multiply: `x [r, H·D] * w [r, H]`.
    pub fn mul_per_head(&mut self, x: NodeId, w: NodeId, heads: usize) -> NodeId {
        let (xs, ws) = (self.shape(x), self.shape(w));
        if ws.rows != xs.rows {
            self.finding(
                "mul_per_head",
                format!(
                    "mul_per_head: operand rows differ (lhs rows = {}, rhs rows = {})",
                    xs.rows, ws.rows
                ),
            );
        }
        if ws.cols != heads {
            self.finding(
                "mul_per_head",
                format!(
                    "mul_per_head: weights must have one column per head (heads = {heads}, got {})",
                    ws.cols
                ),
            );
        }
        if heads == 0 || !xs.cols.is_multiple_of(heads.max(1)) {
            self.shape_err(ShapeError::heads("mul_per_head", xs.cols, heads));
        }
        let rg = self.flows(&[x, w]);
        self.push("mul_per_head", vec![x, w], xs, DType::F32, None, rg, true)
    }

    /// Cross-entropy against integer labels indexing `num_classes` classes;
    /// produces the scalar loss.
    pub fn cross_entropy(&mut self, logits: NodeId, labels: NodeId, num_classes: usize) -> NodeId {
        let ls = self.shape(logits);
        let ys = self.shape(labels);
        if ls.cols != num_classes {
            self.finding(
                "cross_entropy",
                format!(
                    "cross_entropy: logits width != class count (cols = {}, num_classes = {num_classes})",
                    ls.cols
                ),
            );
        }
        if ls.rows != ys.rows {
            self.finding(
                "cross_entropy",
                format!("cross_entropy: one label per row required (logits rows = {}, labels rows = {})", ls.rows, ys.rows),
            );
        }
        let dom = self.index_domain("cross_entropy", labels);
        if dom.domain != Rows::Const(num_classes) {
            self.finding(
                "cross_entropy",
                format!(
                    "cross_entropy: labels address {} but logits have {num_classes} classes",
                    dom.domain
                ),
            );
        }
        let rg = self.flows(&[logits]);
        let loss = self.push(
            "cross_entropy",
            vec![logits, labels],
            SymShape::new(Rows::Const(1), 1),
            DType::F32,
            None,
            rg,
            true,
        );
        self.graph.loss = Some(loss);
        loss
    }

    /// Finishes building, returning the graph (and its findings).
    pub fn finish(self) -> OpGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shape_rule_and_recovery() {
        let mut b = GraphBuilder::with_prefix("t");
        let x = b.input("x", Rows::Nodes, 8);
        let w = b.param("w", 8, 4);
        let h = b.matmul(x, w);
        assert_eq!(b.shape(h), SymShape::new(Rows::Nodes, 4));
        // Mismatched weight: one finding, output recovers to declared shape.
        let w2 = b.param("w2", 5, 3);
        let h2 = b.matmul(h, w2);
        assert_eq!(b.shape(h2), SymShape::new(Rows::Nodes, 3));
        let g = b.finish();
        assert_eq!(g.findings.len(), 1);
        assert!(g.findings[0]
            .message
            .contains("inner dimensions disagree (lhs cols = 4, rhs rows = 5)"));
        assert!(g.findings[0].path.contains("t/matmul"));
    }

    #[test]
    fn gather_domain_mismatch_is_flagged() {
        let mut b = GraphBuilder::default();
        let h = b.input("x", Rows::Edges, 4);
        let src = b.index_input("src", Rows::Edges, Rows::Nodes);
        // Gathering node-indexed rows out of an edge-rows tensor.
        b.gather(h, src);
        let g = b.finish();
        assert_eq!(g.findings.len(), 1);
        assert!(g.findings[0].message.contains("index domain mismatch"));
    }

    #[test]
    fn param_bytes_counts_f32_params() {
        let mut b = GraphBuilder::default();
        b.param("w", 8, 4);
        b.param("b", 1, 4);
        let g = b.finish();
        assert_eq!(g.param_bytes(), 4 * (32 + 4));
        assert_eq!(g.params().count(), 2);
    }

    #[test]
    fn requires_grad_propagates_and_detach_blocks() {
        let mut b = GraphBuilder::default();
        let x = b.input("x", Rows::Nodes, 4);
        let w = b.param("w", 4, 4);
        let h = b.matmul(x, w);
        assert!(b.graph.nodes[h].requires_grad);
        let d = b.detach(h);
        assert!(!b.graph.nodes[d].requires_grad);
        let r = b.unary("relu", d);
        assert!(!b.graph.nodes[r].requires_grad);
    }
}
