//! Autograd tape audit.
//!
//! Walks the symbolic graph the way `Tensor::backward` walks the runtime
//! tape — from the loss, through differentiable ops, down to parameter
//! leaves — and reports:
//!
//! - **Dead parameters**: trainable parameters the optimizer will step but
//!   which receive no gradient, either because they are frozen
//!   (`requires_grad == false`) or because no differentiable path connects
//!   them to the loss. Training silently leaves them at initialization.
//! - **Unreachable backwards**: differentiable ops that carry gradient
//!   state but are not ancestors of the loss — their backward closure is
//!   recorded on the tape yet can never run, pinning activations for the
//!   whole step.

use crate::ir::{NodeId, OpGraph};
use crate::report::{Finding, FindingKind};

/// Runs the audit, appending findings to `out`.
pub fn audit_tape(graph: &OpGraph, out: &mut Vec<Finding>) {
    let Some(loss) = graph.loss else {
        out.push(Finding::new(
            FindingKind::UnreachableBackward,
            "loss",
            "model graph never reaches a loss; backward can never run",
        ));
        return;
    };

    // Backward reachability: which nodes the gradient actually visits.
    let mut reached = vec![false; graph.nodes.len()];
    let mut stack: Vec<NodeId> = vec![loss];
    reached[loss] = true;
    while let Some(id) = stack.pop() {
        let node = &graph.nodes[id];
        if !node.differentiable {
            continue;
        }
        for &input in &node.inputs {
            if !reached[input] {
                reached[input] = true;
                stack.push(input);
            }
        }
    }

    for (id, node) in graph.nodes.iter().enumerate() {
        if node.op == "param" {
            let name = node.param_name.as_deref().unwrap_or("param");
            if !node.requires_grad {
                out.push(Finding::new(
                    FindingKind::DeadParameter,
                    node.path.clone(),
                    format!("parameter '{name}' is frozen (requires_grad = false); the optimizer will never update it"),
                ));
            } else if !reached[id] {
                out.push(Finding::new(
                    FindingKind::DeadParameter,
                    node.path.clone(),
                    format!("parameter '{name}' has no gradient path to the loss; it stays at initialization"),
                ));
            }
        } else if node.differentiable && node.requires_grad && !reached[id] {
            out.push(Finding::new(
                FindingKind::UnreachableBackward,
                node.path.clone(),
                format!(
                    "op '{}' records a backward that can never run (its output does not reach the loss)",
                    node.op
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{GraphBuilder, Rows};

    fn tiny(frozen: bool, dangling: bool) -> OpGraph {
        let mut b = GraphBuilder::with_prefix("t");
        let x = b.input("x", Rows::Nodes, 4);
        let w = if frozen {
            b.frozen_param("w", 4, 3)
        } else {
            b.param("w", 4, 3)
        };
        let h = b.matmul(x, w);
        if dangling {
            // A differentiable branch that never feeds the loss.
            let w2 = b.param("w2", 3, 3);
            b.matmul(h, w2);
        }
        let labels = b.index_input("labels", Rows::Nodes, Rows::Const(3));
        b.cross_entropy(h, labels, 3);
        b.finish()
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let mut out = vec![];
        audit_tape(&tiny(false, false), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn frozen_param_is_dead() {
        let mut out = vec![];
        audit_tape(&tiny(true, false), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, FindingKind::DeadParameter);
        assert!(out[0].message.contains("frozen"));
        assert!(out[0].path.contains('w'));
    }

    #[test]
    fn dangling_branch_is_dead_and_unreachable() {
        let mut out = vec![];
        audit_tape(&tiny(false, true), &mut out);
        // w2 is dead, and the dangling matmul's backward never runs.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|f| f.kind == FindingKind::DeadParameter && f.message.contains("w2")));
        assert!(out
            .iter()
            .any(|f| f.kind == FindingKind::UnreachableBackward && f.message.contains("matmul")));
    }

    #[test]
    fn missing_loss_is_reported() {
        let mut b = GraphBuilder::default();
        let x = b.input("x", Rows::Nodes, 2);
        let w = b.param("w", 2, 2);
        b.matmul(x, w);
        let mut out = vec![];
        audit_tape(&b.finish(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FindingKind::UnreachableBackward);
        assert!(out[0].message.contains("never reaches a loss"));
    }
}
