//! Index-safety analysis over concrete dataset arrays.
//!
//! The runtime's gather/scatter/segment kernels index raw slices; in
//! release builds their per-element checks are `debug_assert!`s. This pass
//! proves — before anything runs — that every index array a configured run
//! will feed those kernels is in-bounds: edge endpoints against node
//! counts, split indices against the node extent, labels against the class
//! count, and disjoint-union batching against the `u32` offset space.
//!
//! Bounds violations are rendered through the *same*
//! [`gnn_tensor::ShapeError`] constructors the runtime ops use, so a lint
//! finding's message is byte-identical to the panic the run would die with.

use gnn_datasets::{GraphDataset, NodeDataset};
use gnn_tensor::ops::index::{check_gather_idx, check_scatter_idx};

use crate::report::{Finding, FindingKind};

/// Checks one edge-index pair against a node extent, exactly as the
/// gather/scatter kernels will consume it (`src` gathered from node rows,
/// `dst` scattered into node rows).
pub fn check_edge_index(
    src: &[u32],
    dst: &[u32],
    num_nodes: usize,
    path: &str,
    out: &mut Vec<Finding>,
) {
    if src.len() != dst.len() {
        out.push(Finding::new(
            FindingKind::IndexOutOfBounds,
            format!("{path}/edge_index"),
            format!(
                "edge index halves disagree (src = {}, dst = {})",
                src.len(),
                dst.len()
            ),
        ));
    }
    if let Err(e) = check_gather_idx(src, num_nodes) {
        out.push(Finding::new(
            FindingKind::IndexOutOfBounds,
            format!("{path}/src"),
            e.to_string(),
        ));
    }
    if let Err(e) = check_scatter_idx(dst, dst.len(), num_nodes) {
        out.push(Finding::new(
            FindingKind::IndexOutOfBounds,
            format!("{path}/dst"),
            e.to_string(),
        ));
    }
}

fn check_labels(labels: &[u32], num_classes: usize, path: &str, out: &mut Vec<Finding>) {
    if let Some(&bad) = labels.iter().find(|&&l| (l as usize) >= num_classes) {
        out.push(Finding::new(
            FindingKind::IndexOutOfBounds,
            format!("{path}/labels"),
            format!("label {bad} out of bounds (num_classes = {num_classes})"),
        ));
    }
}

/// Proves a node-classification dataset's index arrays in-bounds.
pub fn check_node_dataset(ds: &NodeDataset, path: &str, out: &mut Vec<Finding>) {
    let n = ds.graph.num_nodes();
    check_edge_index(ds.graph.src(), ds.graph.dst(), n, path, out);
    if ds.features.rows() != n {
        out.push(Finding::new(
            FindingKind::ShapeMismatch,
            format!("{path}/features"),
            format!(
                "feature rows != node count (rows = {}, nodes = {n})",
                ds.features.rows()
            ),
        ));
    }
    if ds.labels.len() != n {
        out.push(Finding::new(
            FindingKind::ShapeMismatch,
            format!("{path}/labels"),
            format!(
                "label count != node count (labels = {}, nodes = {n})",
                ds.labels.len()
            ),
        ));
    }
    check_labels(&ds.labels, ds.num_classes, path, out);
    // Split indices are gathered out of the logits at loss time.
    for (split, idx) in [
        ("train_idx", &ds.train_idx),
        ("val_idx", &ds.val_idx),
        ("test_idx", &ds.test_idx),
    ] {
        if let Err(e) = check_gather_idx(idx, n) {
            out.push(Finding::new(
                FindingKind::IndexOutOfBounds,
                format!("{path}/{split}"),
                e.to_string(),
            ));
        }
    }
}

/// Proves a graph-classification dataset's index arrays in-bounds,
/// including the disjoint-union batching offsets a full-size mini-batch
/// would apply.
pub fn check_graph_dataset(
    ds: &GraphDataset,
    batch_size: usize,
    path: &str,
    out: &mut Vec<Finding>,
) {
    for (i, sample) in ds.samples.iter().enumerate() {
        let n = sample.graph.num_nodes();
        let sample_path = format!("{path}/sample{i}");
        check_edge_index(sample.graph.src(), sample.graph.dst(), n, &sample_path, out);
        if sample.features.rows() != n {
            out.push(Finding::new(
                FindingKind::ShapeMismatch,
                format!("{sample_path}/features"),
                format!(
                    "feature rows != node count (rows = {}, nodes = {n})",
                    sample.features.rows()
                ),
            ));
        }
    }
    check_labels(&ds.labels(), ds.num_classes, path, out);
    // Batching relabels nodes with cumulative u32 offsets; the largest
    // possible batch must stay addressable.
    let mut largest_batch_nodes: u64 = 0;
    let mut sizes: Vec<u64> = ds
        .samples
        .iter()
        .map(|s| s.graph.num_nodes() as u64)
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    for s in sizes.into_iter().take(batch_size.max(1)) {
        largest_batch_nodes += s;
    }
    if largest_batch_nodes > u32::MAX as u64 {
        out.push(Finding::new(
            FindingKind::IndexOutOfBounds,
            format!("{path}/batching"),
            format!(
                "a batch of {batch_size} graphs can reach {largest_batch_nodes} nodes, overflowing u32 edge indices"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;

    fn node_ds() -> NodeDataset {
        NodeDataset {
            name: "toy".into(),
            graph: Graph::new(3, vec![0, 1, 2], vec![1, 2, 0]),
            features: NdArray::zeros(3, 4),
            labels: vec![0, 1, 1],
            num_classes: 2,
            train_idx: vec![0, 1],
            val_idx: vec![2],
            test_idx: vec![2],
        }
    }

    #[test]
    fn clean_node_dataset_passes() {
        let mut out = vec![];
        check_node_dataset(&node_ds(), "t", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn corrupted_edge_index_is_caught_with_runtime_message() {
        // `Graph::new` would reject this itself, so corrupt the raw halves —
        // the shape the batching/loader layers actually feed the kernels.
        let mut out = vec![];
        check_edge_index(&[0, 1, 9], &[1, 2, 0], 3, "t", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, FindingKind::IndexOutOfBounds);
        assert_eq!(out[0].path, "t/src");
        // Byte-identical to the gather_rows runtime panic.
        assert!(
            out[0]
                .message
                .contains("gather_rows index out of bounds (n = 3)"),
            "{}",
            out[0].message
        );
        // The scatter half is rendered with the scatter kernel's message.
        let mut out = vec![];
        check_edge_index(&[0, 1, 2], &[1, 9, 0], 3, "t", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "t/dst");
        assert!(
            out[0]
                .message
                .contains("scatter_add_rows index out of bounds (out_rows = 3)"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn label_and_split_violations_are_caught() {
        let mut ds = node_ds();
        ds.labels[0] = 7;
        ds.test_idx = vec![3];
        let mut out = vec![];
        check_node_dataset(&ds, "t", &mut out);
        assert!(out.iter().any(|f| f.path == "t/labels"), "{out:?}");
        assert!(out.iter().any(|f| f.path == "t/test_idx"), "{out:?}");
    }

    #[test]
    fn graph_dataset_batching_and_samples_checked() {
        let sample = gnn_datasets::GraphSample {
            graph: Graph::from_edges(3, &[(0, 1), (1, 0)]),
            features: NdArray::zeros(3, 4),
            label: 0,
        };
        let ds = GraphDataset {
            name: "toy".into(),
            samples: vec![sample.clone(), sample],
            num_classes: 1,
            feature_dim: 4,
            directed_edge_stats: false,
        };
        let mut out = vec![];
        check_graph_dataset(&ds, 128, "t", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
