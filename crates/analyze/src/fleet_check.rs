//! Fleet-config auditing: proving a sharded serving run can route, eject,
//! and recover before any model is loaded.
//!
//! A [`gnn_serve::FleetConfig`] is plain data checked only when the fleet
//! engine runs, so a misconfigured chaos experiment fails late or — worse —
//! runs and silently measures the wrong thing: a fleet with zero shards
//! routes nothing; a retry budget above 1 lets every primary admission fund
//! more than one retry, so the recovery machinery can *amplify* a brownout
//! instead of containing it; health thresholds whose ejection horizon
//! (`fail_threshold × probe_interval`) exceeds the run's simulated length
//! can never eject, so failover paths are dead code under test. This pass
//! flags every such knob under [`FindingKind::InvalidFleetConfig`] ahead of
//! the run — the `gnn-bench fleet` binary's `--lint` gate refuses to start
//! on any finding.
//!
//! The fleet fault audit ([`check_fleet_fault_plan`]) cross-checks the
//! armed plan against the fleet's shape: a `blackout` or `netslow` spec
//! naming a shard the fleet does not have can never fire, an empty or
//! inverted window `[from, until)` likewise, and a `netslow` factor ≤ 1 is
//! not a straggler at all.

use gnn_faults::{FaultKind, FaultPlan};
use gnn_serve::{CellId, ClosedLoop, FleetConfig, FleetWorkload, WorkloadSpec};

use crate::report::{Finding, FindingKind};

fn flag(findings: &mut Vec<Finding>, path: impl Into<String>, message: impl Into<String>) {
    findings.push(Finding::new(FindingKind::InvalidFleetConfig, path, message));
}

/// Audits a fleet serving run before execution, appending one finding per
/// degenerate knob. `endpoints` are the *raw* endpoint paths as given on
/// the command line (pre-parse, so unknown cells are reportable);
/// `cfg.endpoints` itself is not consulted. Paths are `fleet/shards`,
/// `fleet/endpoints/<i>`, `fleet/admission`, `fleet/retry-budget`,
/// `fleet/hedge`, `fleet/health`, `fleet/autoscale`, or `fleet/workload`.
pub fn check_fleet_config(endpoints: &[String], cfg: &FleetConfig, findings: &mut Vec<Finding>) {
    if endpoints.is_empty() {
        flag(
            findings,
            "fleet/endpoints",
            "no endpoints configured: every request would be unroutable",
        );
    }
    for (i, raw) in endpoints.iter().enumerate() {
        if let Err(e) = CellId::parse(raw) {
            flag(findings, format!("fleet/endpoints/{i}"), e.to_string());
        }
    }

    if cfg.shards == 0 {
        flag(
            findings,
            "fleet/shards",
            "shards=0: the router has nowhere to send any request \
             (every arrival sheds as unroutable)",
        );
    }
    if cfg.replicas_per_shard == 0 {
        flag(
            findings,
            "fleet/shards",
            "replicas_per_shard=0: every shard fails its first health probe \
             and the whole fleet ejects",
        );
    }
    if cfg.admission_cap == 0 {
        flag(
            findings,
            "fleet/admission",
            "admission_cap=0: every request sheds before queuing",
        );
    }

    if !(cfg.retry_budget.is_finite() && cfg.retry_budget >= 0.0) {
        flag(
            findings,
            "fleet/retry-budget",
            format!(
                "retry_budget={} must be finite and non-negative",
                cfg.retry_budget
            ),
        );
    } else if cfg.retry_budget > 1.0 {
        flag(
            findings,
            "fleet/retry-budget",
            format!(
                "retry_budget={} exceeds 1: each admission funds more than one \
                 retry/hedge, so recovery traffic can amplify a brownout \
                 (dispatched work is bounded only by {}x submitted)",
                cfg.retry_budget,
                1.0 + cfg.retry_budget
            ),
        );
    }
    if let Some(h) = cfg.hedge_after {
        if !(h.is_finite() && h > 0.0) {
            flag(
                findings,
                "fleet/hedge",
                format!("hedge_after={h} must be positive"),
            );
        }
    }

    check_health(cfg, findings);
    check_autoscale(cfg, findings);
    check_workload(cfg, findings);
}

fn check_health(cfg: &FleetConfig, findings: &mut Vec<Finding>) {
    let health = &cfg.health;
    if !(health.probe_interval.is_finite() && health.probe_interval > 0.0) {
        flag(
            findings,
            "fleet/health",
            format!(
                "probe_interval={} must be positive: health is never observed",
                health.probe_interval
            ),
        );
        return; // the horizon check below would divide by nonsense
    }
    if health.fail_threshold == 0 {
        flag(
            findings,
            "fleet/health",
            "fail_threshold=0: ejection can never be reached",
        );
    }
    if health.readmit_threshold == 0 {
        flag(
            findings,
            "fleet/health",
            "readmit_threshold=0: re-admission can never be reached",
        );
    }
    // A fleet whose ejection horizon exceeds the run's simulated length can
    // never eject anything: the failover machinery is dead code under test.
    // Only the open-loop kinds have a pre-computable horizon (requests /
    // mean rate); closed loops self-pace.
    if let FleetWorkload::Open(_) = cfg.workload {
        if cfg.rate > 0.0 && cfg.rate.is_finite() && health.fail_threshold > 0 {
            let horizon = cfg.requests as f64 / cfg.rate;
            let eject_after = health.fail_threshold as f64 * health.probe_interval;
            if eject_after >= horizon && horizon > 0.0 {
                flag(
                    findings,
                    "fleet/health",
                    format!(
                        "ejection needs {} consecutive probes x {}s = {eject_after}s, but \
                         the workload's horizon is only ~{horizon:.4}s ({} requests at \
                         {}/s): the health checker can never eject a shard in this run",
                        health.fail_threshold, health.probe_interval, cfg.requests, cfg.rate
                    ),
                );
            }
        }
    }
}

fn check_autoscale(cfg: &FleetConfig, findings: &mut Vec<Finding>) {
    let Some(a) = &cfg.autoscale else { return };
    if a.min_replicas == 0 {
        flag(
            findings,
            "fleet/autoscale",
            "min_replicas=0: scale-down can empty a shard, which then fails \
             every health probe",
        );
    }
    if a.min_replicas > a.max_replicas {
        flag(
            findings,
            "fleet/autoscale",
            format!(
                "min_replicas={} above max_replicas={}: no replica count satisfies \
                 both bounds",
                a.min_replicas, a.max_replicas
            ),
        );
    }
    if a.queue_low >= a.queue_high {
        flag(
            findings,
            "fleet/autoscale",
            format!(
                "queue_low={} not below queue_high={}: one queue depth triggers both \
                 scale-up and scale-down, so the controller thrashes",
                a.queue_low, a.queue_high
            ),
        );
    }
    if !(a.cooldown.is_finite() && a.cooldown >= 0.0) {
        flag(
            findings,
            "fleet/autoscale",
            format!("cooldown={} must be finite and non-negative", a.cooldown),
        );
    }
}

fn check_workload(cfg: &FleetConfig, findings: &mut Vec<Finding>) {
    // The typed constructors are the source of truth: the lint message is
    // exactly the `WorkloadError` the engine would refuse with.
    match &cfg.workload {
        FleetWorkload::Open(kind) => {
            if let Err(e) = WorkloadSpec::new(cfg.seed, cfg.requests, cfg.rate, *kind) {
                flag(findings, "fleet/workload", e.to_string());
            }
        }
        FleetWorkload::Closed {
            clients,
            think_time,
        } => {
            if let Err(e) = ClosedLoop::new(cfg.seed, cfg.requests, *clients, *think_time) {
                flag(findings, "fleet/workload", e.to_string());
            }
        }
    }
}

/// Audits an armed fault plan against the fleet's shape, appending one
/// finding per fleet-level spec that can never fire (or fires vacuously).
/// Paths are `fleet/faults/<i>`. Non-fleet kinds (OOM, kernel, PCIe,
/// replica, NaN) are the generic fault-plan lint's business
/// ([`crate::check_fault_plan`]) and pass through untouched.
pub fn check_fleet_fault_plan(plan: &FaultPlan, cfg: &FleetConfig, findings: &mut Vec<Finding>) {
    for (i, spec) in plan.specs.iter().enumerate() {
        let path = format!("fleet/faults/{i}");
        match spec.kind {
            FaultKind::ShardBlackout { shard, from, until } => {
                check_window(findings, &path, "blackout", shard, from, until, cfg);
            }
            FaultKind::NetStraggler {
                shard,
                from,
                until,
                factor,
            } => {
                check_window(findings, &path, "netslow", shard, from, until, cfg);
                if !(factor.is_finite() && factor > 1.0) {
                    flag(
                        findings,
                        &path,
                        format!(
                            "netslow factor={factor} must exceed 1: a unit factor \
                             injects nothing"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

fn check_window(
    findings: &mut Vec<Finding>,
    path: &str,
    kind: &str,
    shard: usize,
    from: f64,
    until: f64,
    cfg: &FleetConfig,
) {
    if shard >= cfg.shards {
        flag(
            findings,
            path,
            format!(
                "{kind} names shard {shard}, but the fleet has only {} shard(s) \
                 (indices 0..{}): the fault can never fire",
                cfg.shards,
                cfg.shards.saturating_sub(1)
            ),
        );
    }
    if !(from.is_finite() && until.is_finite() && from >= 0.0) {
        flag(
            findings,
            path,
            format!("{kind} window [{from}, {until}) must be finite and non-negative"),
        );
    } else if from >= until {
        flag(
            findings,
            path,
            format!("{kind} window [{from}, {until}) is empty: the fault can never fire"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_serve::{AutoscalePolicy, WorkloadKind};

    fn raw_endpoints(cfg: &FleetConfig) -> Vec<String> {
        cfg.endpoints.iter().map(|c| c.path()).collect()
    }

    fn lint(cfg: &FleetConfig) -> Vec<Finding> {
        let mut findings = Vec::new();
        check_fleet_config(&raw_endpoints(cfg), cfg, &mut findings);
        findings
    }

    #[test]
    fn default_fleet_is_clean() {
        let findings = lint(&FleetConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unroutable_fleets_are_flagged() {
        let mut cfg = FleetConfig {
            shards: 0,
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::InvalidFleetConfig);
        assert_eq!(findings[0].kind.label(), "fleet-config");
        assert!(findings[0].message.contains("unroutable"));

        cfg.shards = 2;
        cfg.endpoints.clear();
        let mut findings = Vec::new();
        check_fleet_config(&[], &cfg, &mut findings);
        assert!(findings.iter().any(|f| f.path == "fleet/endpoints"));

        let cfg = FleetConfig::default();
        let mut findings = Vec::new();
        check_fleet_config(
            &["table4/Cora/GCN/PyG".into(), "table9/Nope/GCN/PyG".into()],
            &cfg,
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].path, "fleet/endpoints/1");
    }

    #[test]
    fn amplifying_retry_budgets_are_flagged() {
        let cfg = FleetConfig {
            retry_budget: 1.5,
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("amplify"));
        assert_eq!(findings[0].path, "fleet/retry-budget");

        let cfg = FleetConfig {
            retry_budget: f64::NAN,
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("finite"));

        // A budget of exactly 1 is the boundary: bounded, not amplifying.
        let cfg = FleetConfig {
            retry_budget: 1.0,
            ..FleetConfig::default()
        };
        assert!(lint(&cfg).is_empty());
    }

    #[test]
    fn never_ejecting_health_thresholds_are_flagged() {
        // 400 requests at 2000/s is a 0.2s horizon; 50 probes x 0.005s =
        // 0.25s can never be reached.
        let mut cfg = FleetConfig::default();
        cfg.health.fail_threshold = 50;
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("can never eject"));
        assert_eq!(findings[0].path, "fleet/health");

        let mut cfg = FleetConfig::default();
        cfg.health.probe_interval = 0.0;
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never observed"));

        // Closed loops self-pace: no horizon, no never-eject finding.
        let mut cfg = FleetConfig {
            workload: FleetWorkload::Closed {
                clients: 4,
                think_time: 0.001,
            },
            ..FleetConfig::default()
        };
        cfg.health.fail_threshold = 50;
        assert!(lint(&cfg).is_empty());
    }

    #[test]
    fn degenerate_autoscale_and_workloads_are_flagged() {
        let cfg = FleetConfig {
            autoscale: Some(AutoscalePolicy {
                queue_high: 4,
                queue_low: 4,
                min_replicas: 3,
                max_replicas: 2,
                cooldown: 0.01,
            }),
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.path == "fleet/autoscale"));
        assert!(findings.iter().any(|f| f.message.contains("thrashes")));

        let cfg = FleetConfig {
            workload: FleetWorkload::Open(WorkloadKind::Diurnal {
                period: 0.0,
                amplitude: 0.5,
            }),
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].path, "fleet/workload");
        assert!(findings[0].message.contains("period"));

        let cfg = FleetConfig {
            workload: FleetWorkload::Closed {
                clients: 0,
                think_time: 0.01,
            },
            ..FleetConfig::default()
        };
        let findings = lint(&cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("client"));
    }

    #[test]
    fn fleet_fault_audit_catches_unfireable_specs() {
        let cfg = FleetConfig::default(); // 3 shards
        let plan = FaultPlan::empty()
            .with(FaultKind::ShardBlackout {
                shard: 7,
                from: 0.01,
                until: 0.05,
            })
            .with(FaultKind::ShardBlackout {
                shard: 0,
                from: 0.05,
                until: 0.05,
            })
            .with(FaultKind::NetStraggler {
                shard: 1,
                from: 0.0,
                until: 0.1,
                factor: 1.0,
            })
            .with(FaultKind::Oom { at: 3 });
        let mut findings = Vec::new();
        check_fleet_fault_plan(&plan, &cfg, &mut findings);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings[0].message.contains("only 3 shard(s)"));
        assert!(findings[1].message.contains("empty"));
        assert!(findings[2].message.contains("injects nothing"));
        assert_eq!(findings[0].path, "fleet/faults/0");

        let mut findings = Vec::new();
        check_fleet_fault_plan(&FaultPlan::canonical_fleet(), &cfg, &mut findings);
        assert!(
            findings.is_empty(),
            "canonical fleet plan is clean: {findings:?}"
        );
    }
}
