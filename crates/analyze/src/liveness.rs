//! Per-op liveness over a lowered cell.
//!
//! The runtime device allocator is a bump allocator within a step: every
//! forward activation stays live until `end_step`, whether or not any
//! later op reads it. This pass computes what a *reusing* allocator would
//! need instead — each value's last forward use, the autograd-saved set
//! that must survive into the backward pass, and the resulting ideal peak
//! under free-at-last-use discipline. The certifier reports the ratio
//! between the bump bound and this ideal in `memory.json`
//! (`bump_over_ideal`): it is the statically proven headroom a
//! buffer-reuse optimization could reclaim per cell.

use crate::ir::{NodeId, OpGraph};
use crate::memory::{forward_alloc, grad_alloc, grad_receivers};

/// Liveness facts for one lowered graph.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// For each node, the index of its last forward use (itself if unused).
    pub last_use: Vec<NodeId>,
    /// Whether the node's forward value must survive into the backward
    /// pass: it receives a gradient, or a gradient-receiving op consumes it
    /// (its value is needed to compute that op's input gradients).
    pub saved: Vec<bool>,
}

/// Computes last uses and the autograd-saved set.
pub fn analyze(g: &OpGraph) -> Liveness {
    let recv = grad_receivers(g);
    let mut last_use: Vec<NodeId> = (0..g.nodes.len()).collect();
    for (id, node) in g.nodes.iter().enumerate() {
        for &i in &node.inputs {
            // Node ids ascend in insertion order, so the final assignment
            // is the maximal user.
            last_use[i] = id;
        }
    }
    let mut saved = recv.clone();
    for (id, node) in g.nodes.iter().enumerate() {
        if recv[id] && node.differentiable {
            for &i in &node.inputs {
                saved[i] = true;
            }
        }
    }
    Liveness { last_use, saved }
}

/// The ideal train-step peak at concrete batch sizes: forward allocations
/// freed at their last use unless saved for backward, then the gradient
/// buffers on top of the retained set. Always at most the bump-allocator
/// bound (which frees nothing), and the gap is the reuse headroom.
pub fn ideal_step_peak(g: &OpGraph, nodes: u64, edges: u64, graphs: u64) -> u64 {
    let lv = analyze(g);
    let recv = grad_receivers(g);
    let bytes: Vec<u64> = (0..g.nodes.len())
        .map(|id| forward_alloc(g, id).eval(nodes, edges, graphs))
        .collect();
    let mut current: u64 = 0;
    let mut peak: u64 = 0;
    let mut freed = vec![false; g.nodes.len()];
    for id in 0..g.nodes.len() {
        current += bytes[id];
        peak = peak.max(current);
        for &i in &g.nodes[id].inputs {
            if lv.last_use[i] == id && !lv.saved[i] && !freed[i] {
                freed[i] = true;
                current -= bytes[i];
            }
        }
        if lv.last_use[id] == id && !lv.saved[id] && !freed[id] {
            freed[id] = true;
            current -= bytes[id];
        }
    }
    let grads: u64 = (0..g.nodes.len())
        .filter(|&id| recv[id])
        .map(|id| grad_alloc(g, id).eval(nodes, edges, graphs))
        .sum();
    peak.max(current + grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_stack, StackPlan};
    use crate::memory::footprint_of;
    use gnn_models::config::{ALL_FRAMEWORKS, ALL_MODELS};

    #[test]
    fn last_use_is_monotone_and_saved_includes_receiver_operands() {
        let plan = StackPlan::node(
            gnn_models::config::ModelKind::Gcn,
            gnn_models::config::FrameworkKind::RustyG,
            50,
            7,
        );
        let g = lower_stack(&plan, "");
        let lv = analyze(&g);
        for (id, node) in g.nodes.iter().enumerate() {
            assert!(lv.last_use[id] >= id);
            for &i in &node.inputs {
                assert!(lv.last_use[i] >= id, "use at {id} after recorded last use");
            }
        }
        // The loss' logits operand must be saved for backward.
        let loss = g.loss.unwrap();
        assert!(lv.saved[g.nodes[loss].inputs[0]]);
    }

    #[test]
    fn ideal_peak_is_below_the_bump_bound_for_every_cell() {
        for model in ALL_MODELS {
            for fw in ALL_FRAMEWORKS {
                for plan in [
                    StackPlan::node(model, fw, 50, 7),
                    StackPlan::graph(model, fw, 18, 6),
                ] {
                    let g = lower_stack(&plan, "");
                    let fp = footprint_of(&g, &plan);
                    let (n, e, gr) = (500, 2000, 8);
                    let ideal = ideal_step_peak(&g, n, e, gr);
                    let bump = fp.forward.eval(n, e, gr) + fp.backward.eval(n, e, gr);
                    assert!(
                        ideal <= bump,
                        "{model:?}/{fw:?}: ideal {ideal} > bump {bump}"
                    );
                    assert!(ideal > 0, "{model:?}/{fw:?}");
                }
            }
        }
    }

    #[test]
    fn reuse_headroom_exists_where_transients_exist() {
        // Dense stacks like GCN save every activation for backward, so
        // free-at-last-use reclaims nothing and ideal == bump. rgl's
        // GatedGCN, by contrast, stages per-edge message frames inside its
        // fused kernels that no backward reads; a reusing allocator frees
        // them, so the ideal peak must beat the bump bound strictly.
        let plan = StackPlan::graph(
            gnn_models::config::ModelKind::GatedGcn,
            gnn_models::config::FrameworkKind::Rgl,
            18,
            6,
        );
        let g = lower_stack(&plan, "");
        let fp = footprint_of(&g, &plan);
        let ideal = ideal_step_peak(&g, 5000, 20000, 128);
        let bump = fp.forward.eval(5000, 20000, 128) + fp.backward.eval(5000, 20000, 128);
        assert!(ideal < bump, "ideal {ideal} should be < bump {bump}");
    }
}
