//! Device-timeline hazard detection.
//!
//! A [`Schedule`] is a set of time slices over host, compute-stream, and
//! PCIe-link lanes, each annotated with the buffers it reads and writes.
//! [`Schedule::check`] flags:
//!
//! - two slices overlapping on the same compute stream
//!   ([`FindingKind::TimelineOverlap`]) — the simulated device executes one
//!   stream serially, so an overlap means the schedule's times are wrong;
//! - two transfers overlapping on the same PCIe link
//!   ([`FindingKind::TransferOverlap`]) — `DataParallel` serializes every
//!   scatter/broadcast/gather/reduce over the single host link;
//! - concurrent slices on *different* lanes touching the same buffer with
//!   at least one writer ([`FindingKind::BufferRace`]).
//!
//! [`data_parallel_schedule`] expands a [`DataParallel`] config + step cost
//! into the exact slice sequence `DataParallel::step_time` prices, so the
//! hazard pass can vet the multi-GPU sweeps (the paper's Fig. 6) ahead of
//! the run.

use gnn_device::{DataParallel, MultiGpuError, StepCost};

use crate::report::{Finding, FindingKind};

/// Which serialized resource a slice occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The (single) host thread.
    Host,
    /// A device compute stream, one per GPU.
    Stream(usize),
    /// A PCIe link; `DataParallel` funnels everything over link 0.
    Link(usize),
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lane::Host => write!(f, "host"),
            Lane::Stream(g) => write!(f, "stream{g}"),
            Lane::Link(l) => write!(f, "link{l}"),
        }
    }
}

/// One occupancy interval on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// Kernel/transfer name, e.g. `"compute[1]"`.
    pub name: String,
    /// Lane the slice occupies.
    pub lane: Lane,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
    /// Buffers read.
    pub reads: Vec<String>,
    /// Buffers written.
    pub writes: Vec<String>,
}

impl Slice {
    /// A slice with no buffer annotations.
    pub fn new(name: impl Into<String>, lane: Lane, start: f64, end: f64) -> Self {
        Slice {
            name: name.into(),
            lane,
            start,
            end,
            reads: vec![],
            writes: vec![],
        }
    }

    /// Adds read buffers.
    pub fn reading<I: IntoIterator<Item = S>, S: Into<String>>(mut self, bufs: I) -> Self {
        self.reads.extend(bufs.into_iter().map(Into::into));
        self
    }

    /// Adds written buffers.
    pub fn writing<I: IntoIterator<Item = S>, S: Into<String>>(mut self, bufs: I) -> Self {
        self.writes.extend(bufs.into_iter().map(Into::into));
        self
    }
}

const EPS: f64 = 1e-12;

fn overlaps(a: &Slice, b: &Slice) -> bool {
    a.start + EPS < b.end && b.start + EPS < a.end
}

fn conflicts(a: &Slice, b: &Slice) -> Option<String> {
    for w in &a.writes {
        if b.writes.contains(w) || b.reads.contains(w) {
            return Some(w.clone());
        }
    }
    b.writes.iter().find(|w| a.reads.contains(*w)).cloned()
}

/// A full device timeline for one step/epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// All slices, any order.
    pub slices: Vec<Slice>,
}

impl Schedule {
    /// End time of the latest slice.
    pub fn makespan(&self) -> f64 {
        self.slices.iter().fold(0.0, |m, s| m.max(s.end))
    }

    /// Runs all hazard rules, appending findings rooted at `path`.
    pub fn check(&self, path: &str, out: &mut Vec<Finding>) {
        for s in &self.slices {
            if s.end < s.start {
                out.push(Finding::new(
                    FindingKind::InvalidConfig,
                    format!("{path}/{}", s.name),
                    format!(
                        "slice ends before it starts ({:.3e} < {:.3e})",
                        s.end, s.start
                    ),
                ));
            }
        }
        for (i, a) in self.slices.iter().enumerate() {
            for b in &self.slices[i + 1..] {
                if !overlaps(a, b) {
                    continue;
                }
                if a.lane == b.lane {
                    let (kind, what) = match a.lane {
                        Lane::Link(_) => (FindingKind::TransferOverlap, "transfers"),
                        _ => (FindingKind::TimelineOverlap, "kernels"),
                    };
                    out.push(Finding::new(
                        kind,
                        format!("{path}/{}", a.lane),
                        format!(
                            "{what} '{}' and '{}' overlap on {} ([{:.3e}, {:.3e}] vs [{:.3e}, {:.3e}])",
                            a.name, b.name, a.lane, a.start, a.end, b.start, b.end
                        ),
                    ));
                } else if let Some(buf) = conflicts(a, b).or_else(|| conflicts(b, a)) {
                    out.push(Finding::new(
                        FindingKind::BufferRace,
                        format!("{path}/{buf}"),
                        format!(
                            "'{}' ({}) and '{}' ({}) access buffer '{buf}' concurrently with a writer",
                            a.name, a.lane, b.name, b.lane
                        ),
                    ));
                }
            }
        }
    }
}

/// Expands one `DataParallel` training step into the slice sequence its
/// cost model prices: host load, serialized scatter chunks, parameter
/// broadcasts, parallel per-replica compute, serialized gathers, gradient
/// reduces, and the optimizer update on device 0.
pub fn data_parallel_schedule(
    dp: &DataParallel,
    step: &StepCost,
) -> Result<Schedule, MultiGpuError> {
    dp.validate()?;
    let n = dp.n_gpus;
    let nf = n as f64;

    // Phase boundaries use the same grouped expressions, accumulated in the
    // same left-to-right order, as `DataParallel::step_time`, so the
    // schedule's makespan is bit-identical to the priced step time — not
    // merely close. Per-chunk slices fill each phase; the last slice of a
    // phase is pinned to the grouped boundary so per-chunk rounding cannot
    // drift the total.
    let scatter = nf * dp.pcie.latency + step.input_bytes as f64 / dp.pcie.bandwidth;
    let replicate = (nf - 1.0) * dp.pcie.transfer_time(dp.param_bytes);
    let gather = nf * dp.pcie.latency + step.output_bytes as f64 / dp.pcie.bandwidth;
    let reduce = (nf - 1.0) * dp.pcie.transfer_time(dp.param_bytes);
    let end_load = step.host_load;
    let end_scatter = end_load + scatter;
    let end_replicate = end_scatter + replicate;
    let end_compute = end_replicate + step.compute;
    let end_gather = end_compute + gather;
    let end_reduce = end_gather + reduce;
    let end_update = end_reduce + step.update;

    let mut slices = Vec::new();
    slices.push(Slice::new("host_load", Lane::Host, 0.0, end_load).writing(["batch"]));

    // Scatter: one chunk per replica, serialized over link 0.
    let chunk = dp.pcie.latency + step.input_bytes as f64 / nf / dp.pcie.bandwidth;
    let mut t = end_load;
    for g in 0..n {
        let end = if g + 1 == n { end_scatter } else { t + chunk };
        slices.push(
            Slice::new(format!("scatter[{g}]"), Lane::Link(0), t, end)
                .reading(["batch"])
                .writing([format!("input[{g}]")]),
        );
        t = end;
    }

    // Replicate parameters to replicas 1..n.
    let bcast = dp.pcie.transfer_time(dp.param_bytes);
    let mut t = end_scatter;
    for g in 1..n {
        let end = if g + 1 == n { end_replicate } else { t + bcast };
        slices.push(
            Slice::new(format!("broadcast[{g}]"), Lane::Link(0), t, end)
                .reading(["params[0]"])
                .writing([format!("params[{g}]")]),
        );
        t = end;
    }

    // Forward+backward in parallel, one stream per replica, disjoint buffers.
    for g in 0..n {
        slices.push(
            Slice::new(
                format!("compute[{g}]"),
                Lane::Stream(g),
                end_replicate,
                end_compute,
            )
            .reading([format!("input[{g}]"), format!("params[{g}]")])
            .writing([format!("out[{g}]"), format!("grads[{g}]")]),
        );
    }

    // Gather outputs to device 0.
    let out_chunk = dp.pcie.latency + step.output_bytes as f64 / nf / dp.pcie.bandwidth;
    let mut t = end_compute;
    for g in 0..n {
        let end = if g + 1 == n {
            end_gather
        } else {
            t + out_chunk
        };
        slices.push(
            Slice::new(format!("gather[{g}]"), Lane::Link(0), t, end)
                .reading([format!("out[{g}]")])
                .writing(["outs"]),
        );
        t = end;
    }

    // Reduce gradients from replicas 1..n into device 0.
    let mut t = end_gather;
    for g in 1..n {
        let end = if g + 1 == n { end_reduce } else { t + bcast };
        slices.push(
            Slice::new(format!("reduce[{g}]"), Lane::Link(0), t, end)
                .reading([format!("grads[{g}]")])
                .writing(["grads[0]"]),
        );
        t = end;
    }

    slices.push(
        Slice::new("update", Lane::Stream(0), end_reduce, end_update)
            .reading(["grads[0]"])
            .writing(["params[0]"]),
    );

    Ok(Schedule { slices })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> StepCost {
        StepCost {
            host_load: 5e-3,
            input_bytes: 4_000_000,
            compute: 2e-3,
            output_bytes: 40_000,
            update: 1e-4,
        }
    }

    #[test]
    fn data_parallel_schedule_is_clean_and_prices_like_step_time() {
        for n in 1..=8 {
            let dp = DataParallel::new(n, 1_000_000);
            let sched = data_parallel_schedule(&dp, &step()).unwrap();
            let mut out = vec![];
            sched.check("fig6", &mut out);
            assert!(out.is_empty(), "n={n}: {out:?}");
            // Bit-identical, not approximately equal: the schedule is the
            // authority the lint pass vets, so its price must be the exact
            // number `DataParallel::step_time` charges the sweep.
            let expect = dp.step_time(&step());
            assert_eq!(
                sched.makespan().to_bits(),
                expect.to_bits(),
                "n={n}: {} vs {expect}",
                sched.makespan()
            );
        }
    }

    #[test]
    fn pricing_stays_bit_identical_for_awkward_step_costs() {
        // Odd byte counts and zero-duration phases exercise the rounding
        // paths where per-chunk accumulation would drift off the grouped
        // totals without the pinned phase boundaries.
        let costs = [
            StepCost {
                host_load: 3.7e-3,
                input_bytes: 1_234_567,
                compute: 9.1e-4,
                output_bytes: 7_777,
                update: 3.3e-5,
            },
            StepCost {
                host_load: 0.0,
                input_bytes: 1,
                compute: 0.0,
                output_bytes: 0,
                update: 0.0,
            },
        ];
        for step in costs {
            for n in 1..=8 {
                let dp = DataParallel::new(n, 999_999);
                let sched = data_parallel_schedule(&dp, &step).unwrap();
                let mut out = vec![];
                sched.check("fig6", &mut out);
                assert!(out.is_empty(), "n={n}: {out:?}");
                assert_eq!(
                    sched.makespan().to_bits(),
                    dp.step_time(&step).to_bits(),
                    "n={n} step={step:?}"
                );
            }
        }
    }

    #[test]
    fn zero_gpus_is_a_typed_error() {
        let dp = DataParallel {
            n_gpus: 0,
            pcie: gnn_device::PcieModel::pcie3_x16(),
            param_bytes: 1,
        };
        assert_eq!(
            data_parallel_schedule(&dp, &step()),
            Err(MultiGpuError::ZeroGpus)
        );
    }

    #[test]
    fn same_stream_overlap_is_flagged() {
        let sched = Schedule {
            slices: vec![
                Slice::new("k1", Lane::Stream(0), 0.0, 2.0),
                Slice::new("k2", Lane::Stream(0), 1.0, 3.0),
            ],
        };
        let mut out = vec![];
        sched.check("t", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, FindingKind::TimelineOverlap);
        assert!(out[0].message.contains("k1"));
        assert!(out[0].message.contains("k2"));
    }

    #[test]
    fn same_link_overlap_is_a_transfer_overlap() {
        let sched = Schedule {
            slices: vec![
                Slice::new("h2d", Lane::Link(0), 0.0, 1.0),
                Slice::new("d2h", Lane::Link(0), 0.5, 1.5),
            ],
        };
        let mut out = vec![];
        sched.check("t", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FindingKind::TransferOverlap);
    }

    #[test]
    fn cross_lane_write_conflict_is_a_race() {
        let sched = Schedule {
            slices: vec![
                Slice::new("compute", Lane::Stream(0), 0.0, 2.0).writing(["h"]),
                Slice::new("d2h", Lane::Link(0), 1.0, 3.0).reading(["h"]),
            ],
        };
        let mut out = vec![];
        sched.check("t", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, FindingKind::BufferRace);
        assert!(out[0].path.ends_with("/h"));
    }

    #[test]
    fn disjoint_buffers_on_different_lanes_are_fine() {
        let sched = Schedule {
            slices: vec![
                Slice::new("c0", Lane::Stream(0), 0.0, 2.0).writing(["a"]),
                Slice::new("c1", Lane::Stream(1), 0.0, 2.0).writing(["b"]),
            ],
        };
        let mut out = vec![];
        sched.check("t", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn backwards_slice_is_invalid() {
        let sched = Schedule {
            slices: vec![Slice::new("k", Lane::Host, 2.0, 1.0)],
        };
        let mut out = vec![];
        sched.check("t", &mut out);
        assert!(out.iter().any(|f| f.kind == FindingKind::InvalidConfig));
    }
}
