//! Standalone static analyzer for the paper sweep.
//!
//! ```text
//! gnn-lint [--smoke|--quick|--full] [--scale F] [--seed N] [--faults P] [--json DIR]
//! ```
//!
//! Lints every cell, dataset, and schedule the selected configuration would
//! run — including the memory certification of all 60 cells — prints the
//! report, and exits non-zero if any finding survives. CI's `lint-clean`
//! job is exactly `gnn-lint --full`; its `lint-mem` job adds `--faults
//! canonical` and diffs `memory.json` across reruns.

use std::process::ExitCode;

use gnn_core::RunConfig;
use gnn_faults::FaultPlan;
use gnn_lint::lint_and_export;

const USAGE: &str =
    "usage: gnn-lint [--smoke|--quick|--full] [--scale F] [--seed N] [--faults P] [--json DIR]

  --smoke      lint at smoke-test scale (default)
  --quick      lint at laptop scale
  --full       lint at paper scale
  --scale F    override the dataset scale, 0 < F <= 1
  --seed N     override the base RNG seed
  --faults P   audit a fault plan against the run: 'canonical' or a plan file
  --json DIR   additionally write DIR/lint.json and DIR/memory.json";

fn parse(args: &[String]) -> Result<RunConfig, String> {
    let mut cfg = RunConfig::smoke();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => cfg = RunConfig::smoke(),
            "--quick" => cfg = RunConfig::quick(),
            "--full" => cfg = RunConfig::paper(),
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let scale: f64 = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(format!("scale {scale} out of (0, 1]"));
                }
                cfg.scale = scale;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--faults" => {
                let v = it
                    .next()
                    .ok_or("--faults needs 'canonical' or a plan file")?;
                let plan = if v == "canonical" {
                    FaultPlan::canonical()
                } else {
                    FaultPlan::load(std::path::Path::new(v))?
                };
                cfg = cfg.with_faults(plan);
            }
            "--json" => {
                let dir = it.next().ok_or("--json needs a directory")?;
                cfg = cfg.with_trace(dir);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("gnn-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = lint_and_export(&cfg);
    print!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
