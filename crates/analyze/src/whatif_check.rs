//! What-if audit: cross-checking causal-profiler predictions against
//! critical-path budgets.
//!
//! The causal profiler (`gnn-bench whatif`) predicts end-to-end run time
//! under virtual component speedups by replaying the recorded device
//! schedule. Those predictions obey hard physics that hold regardless of
//! how the schedule interleaves: speeding a component up can never slow
//! the run down, predictions must be monotone non-increasing in the
//! speedup factor, and no speedup can save more time than the component's
//! total recorded cost (its critical-path budget — even removing the
//! component entirely only recovers what was spent on it). This pass
//! checks every prediction against all three invariants and flags
//! violations under [`FindingKind::WhatIfInconsistent`]; the `whatif`
//! binary refuses to publish a report that fails its own physics.

use gnn_device::{component_label, WHATIF_COMPONENTS};

use crate::report::{Finding, FindingKind};

/// One cell's what-if predictions, distilled to plain data for auditing.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfCellAudit {
    /// Cell path, e.g. `table4/Cora/GCN/PyG`.
    pub cell: String,
    /// Measured end-to-end time under the identity (no-speedup) model.
    pub base_total: f64,
    /// Total recorded base cost per component ([`WHATIF_COMPONENTS`]
    /// entries): the upper bound on any speedup's achievable saving.
    pub budgets: [f64; WHATIF_COMPONENTS],
    /// Predictions as `(component, speedup_factor, predicted_total)`
    /// triples. Factors for one component must appear in increasing order
    /// (the profiler's grid order).
    pub predictions: Vec<(usize, f64, f64)>,
}

/// Audits what-if predictions, appending one finding per violated
/// invariant. Paths are `whatif/<cell>/<component-label>`.
///
/// Tolerances are relative to the cell's base time (`1e-9 * base_total`
/// plus an absolute `1e-15` floor): the profiler's replay is bit-exact, so
/// anything past float-noise scale is a real inconsistency.
pub fn check_whatif(cells: &[WhatIfCellAudit], findings: &mut Vec<Finding>) {
    for cell in cells {
        let eps = 1e-9 * cell.base_total.abs() + 1e-15;
        for component in 0..WHATIF_COMPONENTS {
            let path = format!("whatif/{}/{}", cell.cell, component_label(component));
            let mut prev: Option<(f64, f64)> = None;
            for &(c, k, predicted) in cell.predictions.iter().filter(|&&(c, _, _)| c == component) {
                debug_assert_eq!(c, component);
                if predicted > cell.base_total + eps {
                    findings.push(Finding::new(
                        FindingKind::WhatIfInconsistent,
                        path.clone(),
                        format!(
                            "a {k}x speedup predicts {predicted:.9e}s, slower than the \
                             measured base {:.9e}s",
                            cell.base_total
                        ),
                    ));
                }
                if let Some((pk, pt)) = prev {
                    if predicted > pt + eps {
                        findings.push(Finding::new(
                            FindingKind::WhatIfInconsistent,
                            path.clone(),
                            format!(
                                "prediction is not monotone in the speedup: {k}x predicts \
                                 {predicted:.9e}s but {pk}x predicted {pt:.9e}s"
                            ),
                        ));
                    }
                }
                let saving = cell.base_total - predicted;
                if saving > cell.budgets[component] + eps {
                    findings.push(Finding::new(
                        FindingKind::WhatIfInconsistent,
                        path.clone(),
                        format!(
                            "a {k}x speedup claims to save {saving:.9e}s, more than the \
                             component's total recorded cost {:.9e}s",
                            cell.budgets[component]
                        ),
                    ));
                }
                prev = Some((k, predicted));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_cell() -> WhatIfCellAudit {
        let mut budgets = [0.0; WHATIF_COMPONENTS];
        budgets[0] = 4e-4; // gemm
        budgets[12] = 2e-4; // host
        WhatIfCellAudit {
            cell: "table4/Cora/GCN/PyG".into(),
            base_total: 1e-3,
            budgets,
            predictions: vec![
                (0, 1.25, 9.2e-4),
                (0, 2.0, 8.0e-4),
                (0, f64::INFINITY, 6.0e-4),
                (12, 2.0, 9.0e-4),
            ],
        }
    }

    #[test]
    fn consistent_predictions_pass() {
        let mut findings = Vec::new();
        check_whatif(&[clean_cell()], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn slower_than_base_is_flagged() {
        let mut cell = clean_cell();
        cell.predictions.push((3, 1.5, 1.2e-3));
        let mut findings = Vec::new();
        check_whatif(&[cell], &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::WhatIfInconsistent);
        assert!(findings[0].path.ends_with("/gather"));
        assert!(findings[0]
            .message
            .contains("slower than the measured base"));
    }

    #[test]
    fn non_monotone_grid_is_flagged() {
        let mut cell = clean_cell();
        // 2x predicting more time than 1.25x did.
        cell.predictions = vec![(0, 1.25, 8.0e-4), (0, 2.0, 9.0e-4)];
        let mut findings = Vec::new();
        check_whatif(&[cell], &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not monotone"));
    }

    #[test]
    fn saving_beyond_budget_is_flagged() {
        let mut cell = clean_cell();
        // Claims to save 5e-4 s on a component that only cost 4e-4 s.
        cell.predictions = vec![(0, f64::INFINITY, 5.0e-4)];
        let mut findings = Vec::new();
        check_whatif(&[cell], &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("more than the component's total recorded cost"));
    }

    #[test]
    fn float_noise_is_tolerated() {
        let mut cell = clean_cell();
        // One ulp-scale wobble above base must not fire.
        cell.predictions = vec![(5, 1.1, 1e-3 + 1e-13)];
        let mut findings = Vec::new();
        check_whatif(&[cell], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
