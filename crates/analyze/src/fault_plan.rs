//! Fault-plan auditing: proving a chaos campaign can actually fire.
//!
//! A [`gnn_faults::FaultPlan`] is data checked against workload counters at
//! run time, so a misconfigured plan fails silently: a 1-based trigger of
//! `0` never matches any counter, a NaN poisoning aimed past the last
//! epoch never fires, a replica failure on a GPU the sweep never creates
//! does nothing. This pass flags every spec that is degenerate for the
//! configured run, under [`FindingKind::InvalidFaultPlan`], before anything
//! executes.

use gnn_core::RunConfig;
use gnn_faults::{FaultKind, FaultPlan};

use crate::memory::CellCert;
use crate::report::{Finding, FindingKind};

/// The largest data-parallel world any configured experiment builds
/// (Fig. 6 sweeps 1/2/4/8 GPUs), so valid replica indices are `0..8`.
const MAX_WORLD: usize = 8;

/// Audits `plan` against the run `cfg` describes, appending one finding per
/// degenerate spec. Paths are `faults/<index>` (declaration order).
pub fn check_fault_plan(plan: &FaultPlan, cfg: &RunConfig, findings: &mut Vec<Finding>) {
    let max_epochs = cfg.node_epochs.max(cfg.graph_epochs) as u64;
    for (i, spec) in plan.specs.iter().enumerate() {
        let path = format!("faults/{i}");
        let mut flag = |message: String| {
            findings.push(Finding::new(FindingKind::InvalidFaultPlan, &path, message));
        };
        match spec.kind {
            FaultKind::Oom { at: 0 } => {
                flag("oom at=0 never fires: allocation counters are 1-based".into());
            }
            FaultKind::KernelFault { at: 0 } => {
                flag("kernel at=0 never fires: launch counters are 1-based".into());
            }
            FaultKind::MemLimit { bytes: 0 } => {
                flag(
                    "memlimit bytes=0 fails every allocation: no batch size can fit, \
                     so the supervisor cannot degrade its way out"
                        .into(),
                );
            }
            FaultKind::PcieStraggler { at: 0, .. } => {
                flag("pcie at=0 never fires: transfer counters are 1-based".into());
            }
            FaultKind::PcieStraggler { factor, .. } if factor <= 1.0 => {
                flag(format!(
                    "pcie factor={factor} is not a slowdown (must be > 1)"
                ));
            }
            FaultKind::ReplicaFailure { at: 0, .. } => {
                flag("replica at=0 never fires: data-parallel steps are 1-based".into());
            }
            FaultKind::ReplicaFailure { gpu, .. } if gpu >= MAX_WORLD => {
                flag(format!(
                    "replica gpu={gpu} does not exist: the largest configured \
                     data-parallel world has {MAX_WORLD} GPUs (indices 0..{MAX_WORLD})"
                ));
            }
            FaultKind::NanLoss { epoch } if epoch >= max_epochs => {
                flag(format!(
                    "nan epoch={epoch} is past the last configured epoch \
                     ({max_epochs} max over node/graph tasks): it can never fire"
                ));
            }
            _ => {}
        }
    }
}

/// Audits a plan's memory ceilings against the certified per-cell
/// footprints of the configured sweep. Two static rejections, in order of
/// severity:
///
/// - a ceiling below the largest cell's *persistent* footprint
///   (parameters + optimizer state + pinned features) is an
///   [`FindingKind::InvalidFaultPlan`]: not even the model fits, so no
///   amount of batch halving can help;
/// - a ceiling below the largest cell's *fatal floor* (persistent + the
///   smallest mandatory step at batch 1) is
///   [`FindingKind::CeilingUnsatisfiable`]: the supervisor's batch-halving
///   degradation has no fixed point — halving bottoms out at 1 and the
///   retries still exhaust.
///
/// Zero-byte ceilings are skipped here; [`check_fault_plan`] already
/// rejects them. Paths follow the `faults/<index>` convention.
pub fn check_memory_ceilings(plan: &FaultPlan, certs: &[CellCert], findings: &mut Vec<Finding>) {
    let Some(worst_persistent) = certs.iter().max_by_key(|c| c.persistent) else {
        return;
    };
    let worst_floor = certs
        .iter()
        .max_by_key(|c| c.floor_fatal)
        .expect("non-empty certs");
    for (i, spec) in plan.specs.iter().enumerate() {
        let FaultKind::MemLimit { bytes } = spec.kind else {
            continue;
        };
        if bytes == 0 {
            continue;
        }
        let path = format!("faults/{i}");
        if bytes < worst_persistent.persistent {
            findings.push(Finding::new(
                FindingKind::InvalidFaultPlan,
                path,
                format!(
                    "memlimit bytes={bytes} is below the certified persistent footprint \
                     ({} B: parameters, optimizer state, pinned features) of {}: \
                     no batch size can fit, so the supervisor cannot degrade its way out",
                    worst_persistent.persistent,
                    worst_persistent.path()
                ),
            ));
        } else if bytes < worst_floor.floor_fatal {
            findings.push(Finding::new(
                FindingKind::CeilingUnsatisfiable,
                path,
                format!(
                    "memlimit bytes={bytes} admits no batch size for {}: the certified \
                     floor at batch 1 is {} B, so batch-halving degradation has no \
                     fixed point and the cell fails after retries",
                    worst_floor.path(),
                    worst_floor.floor_fatal
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(plan: &FaultPlan, cfg: &RunConfig) -> Vec<Finding> {
        let mut findings = Vec::new();
        check_fault_plan(plan, cfg, &mut findings);
        findings
    }

    #[test]
    fn canonical_and_seeded_plans_are_clean() {
        let cfg = RunConfig::smoke();
        assert!(lint(&FaultPlan::canonical(), &cfg).is_empty());
        for seed in 0..20 {
            assert!(
                lint(&FaultPlan::seeded(seed), &cfg).is_empty(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn one_based_counters_reject_zero_triggers() {
        let plan = FaultPlan::empty()
            .with(FaultKind::Oom { at: 0 })
            .with(FaultKind::KernelFault { at: 0 })
            .with(FaultKind::PcieStraggler { at: 0, factor: 2.0 })
            .with(FaultKind::ReplicaFailure { gpu: 0, at: 0 });
        let findings = lint(&plan, &RunConfig::smoke());
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::InvalidFaultPlan && f.message.contains("1-based")));
        // Paths identify the offending spec by declaration index.
        assert_eq!(findings[2].path, "faults/2");
    }

    #[test]
    fn nonexistent_gpu_and_late_epoch_are_flagged() {
        let cfg = RunConfig::smoke(); // 3 node epochs, 2 graph epochs
        let plan = FaultPlan::empty()
            .with(FaultKind::ReplicaFailure { gpu: 8, at: 1 })
            .with(FaultKind::NanLoss { epoch: 3 });
        let findings = lint(&plan, &cfg);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("gpu=8"));
        assert!(findings[1].message.contains("never fire"));
        // The same poisoning is fine under a config that trains that long.
        let mut long = RunConfig::smoke();
        long.node_epochs = 10;
        assert!(lint(
            &FaultPlan::empty().with(FaultKind::NanLoss { epoch: 3 }),
            &long
        )
        .is_empty());
    }

    #[test]
    fn memory_ceilings_are_checked_against_certified_footprints() {
        use crate::memory::certify_node_cell;
        use gnn_datasets::CitationSpec;
        use gnn_models::config::{FrameworkKind, ModelKind};

        let ds = CitationSpec::cora().scaled(0.05).generate(0);
        let cert = certify_node_cell(ModelKind::Gcn, FrameworkKind::RustyG, &ds);
        let certs = [cert.clone()];
        let audit = |bytes: u64| {
            let mut findings = Vec::new();
            check_memory_ceilings(
                &FaultPlan::empty().with(FaultKind::MemLimit { bytes }),
                &certs,
                &mut findings,
            );
            findings
        };

        // Below the persistent footprint: statically fatal, invalid plan.
        let below = audit(cert.persistent - 1);
        assert_eq!(below.len(), 1, "{below:?}");
        assert_eq!(below[0].kind, FindingKind::InvalidFaultPlan);
        assert!(below[0].message.contains("persistent footprint"));
        assert_eq!(below[0].path, "faults/0");

        // Between persistent and the fatal floor: no batch size admits.
        let squeezed = audit(cert.floor_fatal - 1);
        assert_eq!(squeezed.len(), 1, "{squeezed:?}");
        assert_eq!(squeezed[0].kind, FindingKind::CeilingUnsatisfiable);
        assert!(squeezed[0].message.contains("no batch size"));

        // At or above the floor: survivable (possibly degraded) — clean.
        assert!(audit(cert.floor_fatal).is_empty());
        assert!(audit(cert.peak_upper).is_empty());

        // bytes=0 is check_fault_plan's finding, not a duplicate here.
        assert!(audit(0).is_empty());

        // Non-memlimit specs and empty cert sets are ignored.
        let mut findings = Vec::new();
        check_memory_ceilings(
            &FaultPlan::empty().with(FaultKind::Oom { at: 1 }),
            &certs,
            &mut findings,
        );
        check_memory_ceilings(
            &FaultPlan::empty().with(FaultKind::MemLimit { bytes: 1 }),
            &[],
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn degenerate_limits_and_factors_are_flagged() {
        let plan = FaultPlan::empty()
            .with(FaultKind::MemLimit { bytes: 0 })
            .with(FaultKind::PcieStraggler { at: 3, factor: 1.0 })
            .with(FaultKind::MemLimit { bytes: 1 << 30 });
        let findings = lint(&plan, &RunConfig::smoke());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("every allocation"));
        assert!(findings[1].message.contains("not a slowdown"));
    }
}
