//! Typed lint findings and the run-level report.
//!
//! Every pass appends [`Finding`]s; the [`LintReport`] aggregates them with
//! coverage counters and exports machine-readable JSON (`lint.json`) next to
//! the trace artifacts of the observability layer.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gnn_obs::Value;

/// The category of a finding, one per analysis rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Symbolic shape/dtype inference found operands that cannot compose.
    ShapeMismatch,
    /// A concrete index array addresses rows outside its target extent.
    IndexOutOfBounds,
    /// A trainable parameter receives no gradient from the loss.
    DeadParameter,
    /// A differentiable op's backward can never be invoked.
    UnreachableBackward,
    /// Two kernels overlap on the same stream.
    TimelineOverlap,
    /// Concurrent kernels access a buffer with at least one writer.
    BufferRace,
    /// Two transfers overlap on the same PCIe link.
    TransferOverlap,
    /// A configuration is degenerate before any schedule/graph exists.
    InvalidConfig,
    /// A fault-injection spec can never fire (or can never be survived)
    /// under the configured run.
    InvalidFaultPlan,
    /// A serving configuration is degenerate: a batching policy that can
    /// never fire, or endpoints naming unknown cells.
    InvalidServeConfig,
    /// A giant-graph sampling configuration is degenerate: zero fan-outs,
    /// seed batches larger than the node range, a feature cache bigger
    /// than the features it caches, or RMAT parameters that cannot
    /// generate a graph.
    InvalidSampleConfig,
    /// A fleet configuration is degenerate or self-defeating: no routable
    /// shards, a retry budget that can amplify a brownout, health
    /// thresholds that can never eject within the run's horizon, or a
    /// fault plan naming shards the fleet does not have.
    InvalidFleetConfig,
    /// A kernel kind is priced by the device cost model but has no
    /// FLOPs/bytes counter formula (or a degenerate one), so roofline
    /// attribution would silently report zero work for it.
    CounterCoverage,
    /// A cell's certified minimum memory footprint exceeds a device's
    /// capacity: no admissible batch size exists, so the cell provably
    /// cannot run there.
    PeakExceedsDeviceMemory,
    /// A fault-plan memory ceiling admits no batch size: even after the
    /// supervisor's batch-halving degradation reaches batch 1, the
    /// certified floor still overflows (the fixed point is failure).
    CeilingUnsatisfiable,
    /// A serve policy's `max_batch` cannot fit one replica session's
    /// certified inference footprint.
    ServeBatchExceedsReplicaMemory,
    /// A causal what-if prediction violates its own physics: a virtual
    /// speedup that slows the run down, a prediction that is not monotone
    /// in the speedup factor, or a predicted saving exceeding the
    /// component's recorded critical-path budget.
    WhatIfInconsistent,
}

impl FindingKind {
    /// Stable machine-readable label (used in `lint.json`).
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::ShapeMismatch => "shape-mismatch",
            FindingKind::IndexOutOfBounds => "index-out-of-bounds",
            FindingKind::DeadParameter => "dead-parameter",
            FindingKind::UnreachableBackward => "unreachable-backward",
            FindingKind::TimelineOverlap => "timeline-overlap",
            FindingKind::BufferRace => "buffer-race",
            FindingKind::TransferOverlap => "transfer-overlap",
            FindingKind::InvalidConfig => "invalid-config",
            FindingKind::InvalidFaultPlan => "invalid-fault-plan",
            FindingKind::InvalidServeConfig => "serve-config",
            FindingKind::InvalidSampleConfig => "sample-config",
            FindingKind::InvalidFleetConfig => "fleet-config",
            FindingKind::CounterCoverage => "counter-coverage",
            FindingKind::PeakExceedsDeviceMemory => "peak-exceeds-device-memory",
            FindingKind::CeilingUnsatisfiable => "ceiling-unsatisfiable",
            FindingKind::ServeBatchExceedsReplicaMemory => "serve-batch-exceeds-replica-memory",
            FindingKind::WhatIfInconsistent => "whatif-inconsistency",
        }
    }
}

/// One statically detected defect: what rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family.
    pub kind: FindingKind,
    /// Op path within the sweep, e.g.
    /// `table4/Cora/GCN/PyG/conv2/matmul` or `fig6/GCN/PyG/gpus4/step`.
    pub path: String,
    /// Human-readable diagnosis. For shape defects this is the exact
    /// [`gnn_tensor::ShapeError`] rendering the runtime would panic with.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(kind: FindingKind, path: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            kind,
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.label(), self.path, self.message)
    }
}

/// Aggregated result of linting one configured run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// (model, dataset, framework) cells whose lowering was walked.
    pub cells_checked: usize,
    /// Total symbolic ops inferred across all cells.
    pub ops_checked: usize,
    /// Generated datasets whose index arrays were proven in-bounds.
    pub datasets_checked: usize,
    /// Device schedules checked for hazards.
    pub schedules_checked: usize,
    /// Priced kernel kinds audited for counter-formula coverage.
    pub kernel_kinds_checked: usize,
}

impl LintReport {
    /// Whether the run is safe to execute.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one kind.
    pub fn of_kind(&self, kind: FindingKind) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.kind == kind).collect()
    }

    /// Merges another report into this one (summing coverage counters).
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.cells_checked += other.cells_checked;
        self.ops_checked += other.ops_checked;
        self.datasets_checked += other.datasets_checked;
        self.schedules_checked += other.schedules_checked;
        self.kernel_kinds_checked += other.kernel_kinds_checked;
    }

    /// The report as a JSON tree (the `lint.json` schema; see README).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "coverage".into(),
                Value::Obj(vec![
                    ("cells".into(), Value::Num(self.cells_checked as f64)),
                    ("ops".into(), Value::Num(self.ops_checked as f64)),
                    ("datasets".into(), Value::Num(self.datasets_checked as f64)),
                    (
                        "schedules".into(),
                        Value::Num(self.schedules_checked as f64),
                    ),
                    (
                        "kernel_kinds".into(),
                        Value::Num(self.kernel_kinds_checked as f64),
                    ),
                ]),
            ),
            ("clean".into(), Value::Bool(self.is_clean())),
            (
                "findings".into(),
                Value::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Value::Obj(vec![
                                ("kind".into(), Value::Str(f.kind.label().into())),
                                ("path".into(), Value::Str(f.path.clone())),
                                ("message".into(), Value::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `lint.json` into `dir` (created if missing), returning its
    /// path. Lives alongside `trace.json`/`metrics.jsonl` when the run is
    /// traced.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join("lint.json");
        fs::write(&path, self.to_value().to_json())?;
        Ok(path)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gnn-lint: {} cell(s), {} op(s), {} dataset(s), {} schedule(s), \
             {} kernel kind(s) checked — {}",
            self.cells_checked,
            self.ops_checked,
            self.datasets_checked,
            self.schedules_checked,
            self.kernel_kinds_checked,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", self.findings.len())
            }
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = LintReport {
            cells_checked: 2,
            ops_checked: 17,
            datasets_checked: 1,
            schedules_checked: 3,
            ..LintReport::default()
        };
        r.findings.push(Finding::new(
            FindingKind::ShapeMismatch,
            "Cora/GCN/PyG/conv2/matmul",
            "matmul: inner dimensions disagree (lhs cols = 80, rhs rows = 64)",
        ));
        let json = r.to_value().to_json();
        let v = gnn_obs::json::parse(&json).expect("valid json");
        assert_eq!(v.get("clean"), Some(&Value::Bool(false)));
        let findings = v.get("findings").and_then(|f| f.as_arr()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("kind").and_then(|k| k.as_str()),
            Some("shape-mismatch")
        );
        assert_eq!(
            v.get("coverage")
                .and_then(|c| c.get("ops"))
                .and_then(|o| o.as_u64()),
            Some(17)
        );
    }

    #[test]
    fn display_lists_findings() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean"));
        r.findings
            .push(Finding::new(FindingKind::BufferRace, "fig6/step", "boom"));
        assert!(!r.is_clean());
        let s = r.to_string();
        assert!(s.contains("[buffer-race] fig6/step: boom"));
        assert_eq!(r.of_kind(FindingKind::BufferRace).len(), 1);
        assert!(r.of_kind(FindingKind::DeadParameter).is_empty());
    }
}
