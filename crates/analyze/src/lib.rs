//! `gnn-lint`: ahead-of-run static analysis for the GNN framework study.
//!
//! A full paper sweep trains 60 (model, dataset, framework) cells for
//! minutes to hours; a shape mismatch in layer 3, an out-of-bounds edge
//! index, or a frozen parameter surfaces only deep into that run — or
//! worse, never (a dead parameter just silently degrades accuracy). This
//! crate verifies the whole configured run *before execution*:
//!
//! - **Shape/dtype inference** ([`ir`], [`lower`]): every model × framework
//!   lowering is replayed symbolically (node counts stay symbolic, widths
//!   concrete) and each op's shape rule is checked, with diagnostics
//!   rendered through the same [`gnn_tensor::ShapeError`] the runtime
//!   panics with.
//! - **Index safety** ([`index_check`]): edge indices, split indices,
//!   labels, and batching offsets of the generated datasets are proven
//!   in-bounds for the kernels that will consume them.
//! - **Autograd tape audit** ([`tape`]): detects dead (frozen or
//!   disconnected) parameters and backwards that can never run.
//! - **Timeline hazards** ([`schedule`]): data-parallel schedules are
//!   checked for same-stream kernel overlap, PCIe serialization
//!   violations, and cross-lane buffer races.
//! - **Fault-plan audit** ([`fault_plan`]): armed chaos campaigns are
//!   checked for specs that can never fire under the configured run
//!   (zero triggers on 1-based counters, poisonings past the last epoch,
//!   replica failures on GPUs no experiment creates) or can never be
//!   survived (a memory limit of zero, or one below the certified
//!   persistent footprint of the largest cell).
//! - **Counter-coverage audit** ([`counter_check`]): every kernel kind the
//!   device cost model prices must have a FLOPs/bytes counter formula, or
//!   roofline attribution would silently report zero work for it.
//! - **Serve-config audit** ([`serve_check`]): inference-serving runs are
//!   checked for batching policies that can never fire (zero delay with a
//!   batch size above one, batch sizes beyond the dataset's admissible
//!   targets, queues too small to fill a batch), endpoints naming unknown
//!   cells, and policies whose `max_batch` cannot fit one replica
//!   session's certified inference footprint.
//! - **Sample-config audit** ([`sample_check`]): giant-graph sampling
//!   specs are audited field-by-field before any RMAT graph is generated
//!   — degenerate RMAT parameters, dead fan-out schedules, seed batches
//!   beyond the closed-form node range, feature caches larger than the
//!   feature matrix, and broken partition placements — reporting every
//!   defect of a spec at once; sampled cells are then lowered through the
//!   same IR and memory-certified at their fan-out union bounds.
//! - **Fleet-config audit** ([`fleet_check`]): sharded serving runs are
//!   checked for unroutable fleets (zero shards, unknown endpoint cells),
//!   retry budgets above 1 that let recovery traffic amplify a brownout,
//!   health thresholds whose ejection horizon exceeds the workload's
//!   simulated length (failover becomes dead code under test), degenerate
//!   autoscaler watermarks, and fleet fault specs (`blackout`, `netslow`)
//!   naming shards the fleet does not have or windows that can never fire.
//! - **What-if audit** ([`whatif_check`]): causal-profiler predictions
//!   (`gnn-bench whatif`) are checked for internal consistency before
//!   publication — a virtual *speedup* may never predict a slowdown,
//!   predictions must improve monotonically with the speedup factor, and
//!   no component may save more time than its own measured budget.
//! - **Memory certification** ([`memory`], [`liveness`]): every cell's
//!   lowering is priced allocation-by-allocation into a closed-form
//!   symbolic peak-memory expression (forward activations, autograd-saved
//!   tensors, parameters, optimizer state), evaluated against the
//!   datasets' concrete sizes. Cells that provably cannot fit a device,
//!   and fault-plan memory ceilings that admit no batch size under the
//!   supervisor's batch-halving degradation, are rejected statically; the
//!   full per-cell table exports as `memory.json` next to `lint.json`.
//!
//! Entry points: the `gnn-lint` binary, [`run::lint_run`] /
//! [`run::lint_and_export`] (used by the bench binaries' `--lint` gate),
//! and the per-pass APIs for tests. Machine-readable findings land in
//! `lint.json` next to the `gnn-obs` trace artifacts (see the README's
//! findings-format reference).

pub mod counter_check;
pub mod fault_plan;
pub mod fleet_check;
pub mod index_check;
pub mod ir;
pub mod liveness;
pub mod lower;
pub mod memory;
pub mod report;
pub mod run;
pub mod sample_check;
pub mod schedule;
pub mod serve_check;
pub mod tape;
pub mod whatif_check;

pub use counter_check::check_counter_coverage;
pub use fault_plan::{check_fault_plan, check_memory_ceilings};
pub use fleet_check::{check_fleet_config, check_fleet_fault_plan};
pub use ir::{DType, GraphBuilder, OpGraph, Rows, SymShape};
pub use lower::{lower_stack, LayerPlan, StackPlan, Task};
pub use memory::{
    certify_graph_cell, certify_node_cell, certify_sample_cell, footprint, CellCert, CellFootprint,
    MemExpr, MemVerdict, MemoryReport,
};
pub use report::{Finding, FindingKind, LintReport};
pub use run::{certify_run, lint_and_export, lint_run, lint_run_with_memory};
pub use sample_check::{check_sample_config, check_sample_spec};
pub use schedule::{data_parallel_schedule, Lane, Schedule, Slice};
pub use serve_check::{check_replica_memory, check_serve_config};
pub use tape::audit_tape;
