//! Serve-config auditing: proving an inference-serving run can actually
//! fire its batches before any model is loaded.
//!
//! A [`gnn_serve::ServeConfig`] is plain data checked only when the engine
//! runs, so a misconfigured serving sweep fails late or silently: an
//! endpoint naming a cell the sweep never trains serves nothing, a
//! `max_delay` of zero with `max_batch > 1` dispatches every request alone
//! (the batcher exists but never batches), and a `max_batch` beyond the
//! dataset's admissible targets can never fill. This pass flags every
//! degenerate knob under [`FindingKind::InvalidServeConfig`] ahead of the
//! run — the `gnn-bench serve` binary's `--lint` gate refuses to start on
//! any finding.
//!
//! It also prices every endpoint's inference footprint through the memory
//! certifier ([`crate::memory`]) and rejects policies whose worst
//! `max_batch`-sized dispatch cannot fit one replica session's device
//! memory ([`FindingKind::ServeBatchExceedsReplicaMemory`]).

use gnn_datasets::{CitationSpec, SuperpixelSpec, TudSpec};
use gnn_device::CostModel;
use gnn_serve::registry::target_count;
use gnn_serve::{CellId, ServeConfig, TaskKind, WorkloadKind, WorkloadSpec};

use crate::lower::StackPlan;
use crate::memory::footprint;
use crate::report::{Finding, FindingKind};

/// Audits a serving run before execution, appending one finding per
/// degenerate knob. `endpoints` are the *raw* endpoint paths as given on
/// the command line (pre-parse, so unknown cells are reportable);
/// `cfg.endpoints` itself is not consulted. Paths are `serve/policy`,
/// `serve/workload`, `serve/replicas`, `serve/endpoints/<i>`, or
/// `serve/<cell>/memory`.
pub fn check_serve_config(endpoints: &[String], cfg: &ServeConfig, findings: &mut Vec<Finding>) {
    if endpoints.is_empty() {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/endpoints",
            "no endpoints configured: the registry would be empty",
        ));
    }
    let mut cells = Vec::new();
    for (i, raw) in endpoints.iter().enumerate() {
        match CellId::parse(raw) {
            Ok(cell) => cells.push(cell),
            Err(e) => findings.push(Finding::new(
                FindingKind::InvalidServeConfig,
                format!("serve/endpoints/{i}"),
                e.to_string(),
            )),
        }
    }

    let policy = &cfg.policy;
    let mut policy_flag = |message: String| {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/policy",
            message,
        ));
    };
    if policy.max_batch == 0 {
        policy_flag("max_batch=0 can never dispatch a batch".into());
    }
    if !(policy.max_delay.is_finite() && policy.max_delay >= 0.0) {
        policy_flag(format!(
            "max_delay={} must be finite and non-negative",
            policy.max_delay
        ));
    } else if policy.max_delay == 0.0 && policy.max_batch > 1 {
        policy_flag(format!(
            "max_delay=0 with max_batch={} can never batch: the head request \
             dispatches immediately, so the batcher degenerates to batch size 1",
            policy.max_batch
        ));
    }
    if cfg.queue_cap < policy.max_batch {
        policy_flag(format!(
            "queue_cap={} below max_batch={}: a full batch can never accumulate",
            cfg.queue_cap, policy.max_batch
        ));
    }
    // The size-fill rule can also never fire when a named endpoint's
    // dataset has fewer admissible targets than one batch holds.
    for cell in &cells {
        match target_count(cell, cfg.scale, cfg.seed) {
            Ok(n) if (policy.max_batch as u64) > u64::from(n) => {
                findings.push(Finding::new(
                    FindingKind::InvalidServeConfig,
                    format!("serve/{}", cell.path()),
                    format!(
                        "max_batch={} exceeds the dataset's {n} admissible target(s) \
                         at scale {}: a full batch can never fill",
                        policy.max_batch, cfg.scale
                    ),
                ));
            }
            Ok(_) => {}
            Err(e) => findings.push(Finding::new(
                FindingKind::InvalidServeConfig,
                format!("serve/{}", cell.path()),
                e.to_string(),
            )),
        }
    }

    // Workload degeneracy rides the typed constructor: the lint finding's
    // message is exactly the `WorkloadError` the engine would refuse with.
    for err in workload_errors(cfg.requests, cfg.rate) {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/workload",
            err,
        ));
    }
    if cfg.replicas == 0 {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/replicas",
            "replicas=0: no device session can execute batches",
        ));
    }

    check_replica_memory(&cells, cfg, CostModel::rtx2080ti().device_memory, findings);
}

/// Probes each workload knob independently through the typed
/// [`WorkloadSpec::new`] constructor (one finding per degenerate knob, even
/// when several are degenerate at once — the constructor itself stops at
/// the first).
fn workload_errors(requests: usize, rate: f64) -> Vec<String> {
    let mut out = Vec::new();
    if let Err(e) = WorkloadSpec::new(0, requests, 1.0, WorkloadKind::OpenLoop) {
        out.push(e.to_string());
    }
    if let Err(e) = WorkloadSpec::new(0, 1, rate, WorkloadKind::OpenLoop) {
        out.push(e.to_string());
    }
    out
}

/// Audits each endpoint's certified inference footprint against one
/// replica session's device `capacity` (production uses the RTX 2080 Ti's,
/// the study's serving card), appending
/// [`FindingKind::ServeBatchExceedsReplicaMemory`] findings at
/// `serve/<cell>/memory`.
///
/// Each dispatch installs a fresh device session, so the footprint is the
/// loader's batch allocation plus one no-grad forward:
///
/// - node endpoints answer from a *full-graph* forward, so the batch size
///   is irrelevant — an oversized graph can never be answered at all
///   (OOM splitting re-runs the same full graph);
/// - graph endpoints collate the requested samples, so the worst
///   `max_batch`-sized batch (the largest node counts and, independently,
///   the largest edge counts the workload can compose) bounds every
///   dispatch; when it cannot fit, the policy's `max_batch` is unreachable
///   and every full batch burns an OOM split before succeeding.
pub fn check_replica_memory(
    cells: &[CellId],
    cfg: &ServeConfig,
    capacity: u64,
    findings: &mut Vec<Finding>,
) {
    for cell in cells {
        let Some((need, detail)) = replica_footprint(cell, cfg) else {
            continue; // unknown dataset: already flagged against the parse
        };
        if need > capacity {
            findings.push(Finding::new(
                FindingKind::ServeBatchExceedsReplicaMemory,
                format!("serve/{}/memory", cell.path()),
                format!(
                    "certified inference footprint {need} B ({detail}) exceeds one \
                     replica session's {capacity} B of device memory"
                ),
            ));
        }
    }
}

/// The certified per-dispatch device footprint of `cell` under `cfg`, with
/// a human-readable breakdown; `None` for unknown dataset names.
fn replica_footprint(cell: &CellId, cfg: &ServeConfig) -> Option<(u64, String)> {
    match cell.task {
        TaskKind::Node => {
            let spec = match cell.dataset.as_str() {
                "Cora" => CitationSpec::cora(),
                "PubMed" => CitationSpec::pubmed(),
                _ => return None,
            };
            let ds = spec.scaled(cfg.scale).generate(cfg.seed);
            let plan = StackPlan::node(
                cell.model,
                cell.framework,
                ds.features.cols(),
                ds.num_classes,
            );
            let fp = footprint(&plan);
            let (n, e) = (ds.graph.num_nodes() as u64, ds.graph.num_edges() as u64);
            let need = fp.load.eval(n, e, 1) + fp.forward.minus_const(4).eval(n, e, 1);
            Some((
                need,
                format!("full-graph forward over {n} nodes / {e} edges"),
            ))
        }
        TaskKind::Graph => {
            let ds = match cell.dataset.as_str() {
                "ENZYMES" => TudSpec::enzymes().scaled(cfg.scale).generate(cfg.seed),
                "DD" => TudSpec::dd().scaled(cfg.scale).generate(cfg.seed),
                "MNIST" => SuperpixelSpec::mnist()
                    .scaled((cfg.scale * 0.1).min(1.0))
                    .generate(cfg.seed),
                _ => return None,
            };
            if ds.samples.is_empty() || cfg.policy.max_batch == 0 {
                return None; // degenerate cases carry their own findings
            }
            let b = cfg.policy.max_batch.min(ds.samples.len()) as u64;
            let mut node_counts: Vec<u64> = ds
                .samples
                .iter()
                .map(|s| s.graph.num_nodes() as u64)
                .collect();
            let mut edge_counts: Vec<u64> = ds
                .samples
                .iter()
                .map(|s| s.graph.num_edges() as u64)
                .collect();
            node_counts.sort_unstable_by(|a, b| b.cmp(a));
            edge_counts.sort_unstable_by(|a, b| b.cmp(a));
            let n_top: u64 = node_counts.iter().take(b as usize).sum();
            let e_top: u64 = edge_counts.iter().take(b as usize).sum();
            let plan = StackPlan::graph(cell.model, cell.framework, ds.feature_dim, ds.num_classes);
            let fp = footprint(&plan);
            let need =
                fp.load.eval(n_top, e_top, b) + fp.forward.minus_const(4).eval(n_top, e_top, b);
            Some((
                need,
                format!("worst max_batch={b} composition: {n_top} nodes / {e_top} edges"),
            ))
        }
        TaskKind::Sample => {
            // A sampled dispatch forwards the union block of at most
            // `max_batch` seed nodes; the fan-out schedule bounds that
            // union without generating the (possibly million-node) graph.
            let (spec, _) = gnn_serve::sample_dataset(&cell.dataset)?;
            let seeds = cfg.policy.max_batch;
            if seeds == 0 {
                return None; // degenerate policy carries its own finding
            }
            let n = gnn_sample::max_union_nodes(seeds, &spec.fanouts);
            let e = gnn_sample::max_union_edges(seeds, &spec.fanouts);
            let plan = StackPlan::node(
                cell.model,
                cell.framework,
                spec.rmat.feature_dim,
                spec.rmat.num_classes,
            );
            let fp = footprint(&plan);
            let need = fp.load.eval(n, e, 1) + fp.forward.minus_const(4).eval(n, e, 1);
            Some((
                need,
                format!("worst max_batch={seeds}-seed union block: {n} nodes / {e} edges"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_serve::BatchPolicy;

    fn raw(paths: &[&str]) -> Vec<String> {
        paths.iter().map(|p| (*p).to_string()).collect()
    }

    fn lint(endpoints: &[String], cfg: &ServeConfig) -> Vec<Finding> {
        let mut findings = Vec::new();
        check_serve_config(endpoints, cfg, &mut findings);
        findings
    }

    #[test]
    fn default_config_is_clean() {
        let cfg = ServeConfig::default();
        let endpoints: Vec<String> = cfg.endpoints.iter().map(|c| c.path()).collect();
        let findings = lint(&endpoints, &cfg);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_cells_are_flagged_by_position() {
        let cfg = ServeConfig::default();
        let endpoints = raw(&[
            "table4/Cora/GCN/PyG",
            "table6/Cora/GCN/PyG",
            "table4/Cora/VGG/PyG",
        ]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::InvalidServeConfig));
        assert_eq!(findings[0].path, "serve/endpoints/1");
        assert_eq!(findings[1].path, "serve/endpoints/2");
        assert!(findings[1].message.contains("model"));
    }

    #[test]
    fn never_firing_policies_are_flagged() {
        let mut cfg = ServeConfig {
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: 0.0,
            },
            ..ServeConfig::default()
        };
        let endpoints = raw(&["table4/Cora/GCN/PyG"]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("can never batch"));

        cfg.policy = BatchPolicy {
            max_batch: 0,
            max_delay: 0.001,
        };
        let findings = lint(&endpoints, &cfg);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("can never dispatch")));

        // max_batch == 1 with zero delay is a legitimate no-batching mode.
        cfg.policy = BatchPolicy {
            max_batch: 1,
            max_delay: 0.0,
        };
        assert!(lint(&endpoints, &cfg).is_empty());
    }

    #[test]
    fn oversized_batches_and_starved_queues_are_flagged() {
        // ENZYMES at smoke scale has a few dozen graphs; 10_000 cannot fill.
        let mut cfg = ServeConfig {
            policy: BatchPolicy {
                max_batch: 10_000,
                max_delay: 0.001,
            },
            queue_cap: 20_000,
            ..ServeConfig::default()
        };
        let endpoints = raw(&["table5/ENZYMES/GIN/DGL"]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].path.contains("ENZYMES"));
        assert!(findings[0].message.contains("can never fill"));

        cfg.policy = BatchPolicy {
            max_batch: 8,
            max_delay: 0.001,
        };
        cfg.queue_cap = 4;
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never accumulate"));
    }

    #[test]
    fn replica_memory_is_certified_per_endpoint() {
        let cfg = ServeConfig::default();
        let cells: Vec<CellId> = cfg.endpoints.clone();

        // The default fleet fits the production card (also covered by
        // `default_config_is_clean`), and trivially an infinite card.
        let mut findings = Vec::new();
        check_replica_memory(&cells, &cfg, u64::MAX, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");

        // A replica with almost no memory can serve nothing: every
        // endpoint's footprint is flagged at its memory path.
        let mut findings = Vec::new();
        check_replica_memory(&cells, &cfg, 1 << 10, &mut findings);
        assert_eq!(findings.len(), cells.len(), "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::ServeBatchExceedsReplicaMemory));
        assert!(findings
            .iter()
            .any(|f| f.path == format!("serve/{}/memory", cells[0].path())));
        // Node endpoints report the full graph; graph endpoints the worst
        // max_batch composition.
        assert!(findings.iter().any(|f| f.message.contains("full-graph")));
        assert!(findings.iter().any(|f| f.message.contains("max_batch")));

        // The graph footprint grows with the policy's max_batch, so a
        // capacity between the two compositions separates the policies.
        let graph_cell: Vec<CellId> = cells
            .iter()
            .filter(|c| c.task == gnn_serve::TaskKind::Graph)
            .take(1)
            .cloned()
            .collect();
        let small = replica_need(&graph_cell[0], 1, &cfg);
        let large = replica_need(&graph_cell[0], 64, &cfg);
        assert!(small < large, "{small} vs {large}");
        let mut between = ServeConfig {
            policy: gnn_serve::BatchPolicy {
                max_batch: 64,
                max_delay: 0.001,
            },
            ..ServeConfig::default()
        };
        let mut findings = Vec::new();
        check_replica_memory(&graph_cell, &between, small.max(large - 1), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        between.policy.max_batch = 1;
        let mut findings = Vec::new();
        check_replica_memory(&graph_cell, &between, small, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    fn replica_need(cell: &CellId, max_batch: usize, base: &ServeConfig) -> u64 {
        let cfg = ServeConfig {
            policy: gnn_serve::BatchPolicy {
                max_batch,
                max_delay: 0.001,
            },
            ..base.clone()
        };
        super::replica_footprint(cell, &cfg)
            .expect("known dataset")
            .0
    }

    #[test]
    fn degenerate_workload_and_fleet_are_flagged() {
        let cfg = ServeConfig {
            requests: 0,
            rate: 0.0,
            replicas: 0,
            ..ServeConfig::default()
        };
        let findings = lint(&raw(&["table4/Cora/GCN/PyG"]), &cfg);
        assert_eq!(findings.len(), 3, "{findings:?}");
        let findings = lint(&[], &cfg);
        assert!(findings.iter().any(|f| f.path == "serve/endpoints"));
    }
}
