//! Serve-config auditing: proving an inference-serving run can actually
//! fire its batches before any model is loaded.
//!
//! A [`gnn_serve::ServeConfig`] is plain data checked only when the engine
//! runs, so a misconfigured serving sweep fails late or silently: an
//! endpoint naming a cell the sweep never trains serves nothing, a
//! `max_delay` of zero with `max_batch > 1` dispatches every request alone
//! (the batcher exists but never batches), and a `max_batch` beyond the
//! dataset's admissible targets can never fill. This pass flags every
//! degenerate knob under [`FindingKind::InvalidServeConfig`] ahead of the
//! run — the `gnn-bench serve` binary's `--lint` gate refuses to start on
//! any finding.

use gnn_serve::registry::target_count;
use gnn_serve::{CellId, ServeConfig};

use crate::report::{Finding, FindingKind};

/// Audits a serving run before execution, appending one finding per
/// degenerate knob. `endpoints` are the *raw* endpoint paths as given on
/// the command line (pre-parse, so unknown cells are reportable);
/// `cfg.endpoints` itself is not consulted. Paths are `serve/policy`,
/// `serve/workload`, `serve/replicas`, or `serve/endpoints/<i>`.
pub fn check_serve_config(endpoints: &[String], cfg: &ServeConfig, findings: &mut Vec<Finding>) {
    if endpoints.is_empty() {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/endpoints",
            "no endpoints configured: the registry would be empty",
        ));
    }
    let mut cells = Vec::new();
    for (i, raw) in endpoints.iter().enumerate() {
        match CellId::parse(raw) {
            Ok(cell) => cells.push(cell),
            Err(e) => findings.push(Finding::new(
                FindingKind::InvalidServeConfig,
                format!("serve/endpoints/{i}"),
                e,
            )),
        }
    }

    let policy = &cfg.policy;
    let mut policy_flag = |message: String| {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/policy",
            message,
        ));
    };
    if policy.max_batch == 0 {
        policy_flag("max_batch=0 can never dispatch a batch".into());
    }
    if !(policy.max_delay.is_finite() && policy.max_delay >= 0.0) {
        policy_flag(format!(
            "max_delay={} must be finite and non-negative",
            policy.max_delay
        ));
    } else if policy.max_delay == 0.0 && policy.max_batch > 1 {
        policy_flag(format!(
            "max_delay=0 with max_batch={} can never batch: the head request \
             dispatches immediately, so the batcher degenerates to batch size 1",
            policy.max_batch
        ));
    }
    if cfg.queue_cap < policy.max_batch {
        policy_flag(format!(
            "queue_cap={} below max_batch={}: a full batch can never accumulate",
            cfg.queue_cap, policy.max_batch
        ));
    }
    // The size-fill rule can also never fire when a named endpoint's
    // dataset has fewer admissible targets than one batch holds.
    for cell in &cells {
        match target_count(cell, cfg.scale, cfg.seed) {
            Ok(n) if (policy.max_batch as u64) > u64::from(n) => {
                findings.push(Finding::new(
                    FindingKind::InvalidServeConfig,
                    format!("serve/{}", cell.path()),
                    format!(
                        "max_batch={} exceeds the dataset's {n} admissible target(s) \
                         at scale {}: a full batch can never fill",
                        policy.max_batch, cfg.scale
                    ),
                ));
            }
            Ok(_) => {}
            Err(e) => findings.push(Finding::new(
                FindingKind::InvalidServeConfig,
                format!("serve/{}", cell.path()),
                e,
            )),
        }
    }

    if cfg.requests == 0 {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/workload",
            "requests=0: the workload generates nothing",
        ));
    }
    if !(cfg.rate.is_finite() && cfg.rate > 0.0) {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/workload",
            format!("rate={} must be positive and finite", cfg.rate),
        ));
    }
    if cfg.replicas == 0 {
        findings.push(Finding::new(
            FindingKind::InvalidServeConfig,
            "serve/replicas",
            "replicas=0: no device session can execute batches",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_serve::BatchPolicy;

    fn raw(paths: &[&str]) -> Vec<String> {
        paths.iter().map(|p| (*p).to_string()).collect()
    }

    fn lint(endpoints: &[String], cfg: &ServeConfig) -> Vec<Finding> {
        let mut findings = Vec::new();
        check_serve_config(endpoints, cfg, &mut findings);
        findings
    }

    #[test]
    fn default_config_is_clean() {
        let cfg = ServeConfig::default();
        let endpoints: Vec<String> = cfg.endpoints.iter().map(|c| c.path()).collect();
        let findings = lint(&endpoints, &cfg);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_cells_are_flagged_by_position() {
        let cfg = ServeConfig::default();
        let endpoints = raw(&[
            "table4/Cora/GCN/PyG",
            "table6/Cora/GCN/PyG",
            "table4/Cora/VGG/PyG",
        ]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::InvalidServeConfig));
        assert_eq!(findings[0].path, "serve/endpoints/1");
        assert_eq!(findings[1].path, "serve/endpoints/2");
        assert!(findings[1].message.contains("model"));
    }

    #[test]
    fn never_firing_policies_are_flagged() {
        let mut cfg = ServeConfig {
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: 0.0,
            },
            ..ServeConfig::default()
        };
        let endpoints = raw(&["table4/Cora/GCN/PyG"]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("can never batch"));

        cfg.policy = BatchPolicy {
            max_batch: 0,
            max_delay: 0.001,
        };
        let findings = lint(&endpoints, &cfg);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("can never dispatch")));

        // max_batch == 1 with zero delay is a legitimate no-batching mode.
        cfg.policy = BatchPolicy {
            max_batch: 1,
            max_delay: 0.0,
        };
        assert!(lint(&endpoints, &cfg).is_empty());
    }

    #[test]
    fn oversized_batches_and_starved_queues_are_flagged() {
        // ENZYMES at smoke scale has a few dozen graphs; 10_000 cannot fill.
        let mut cfg = ServeConfig {
            policy: BatchPolicy {
                max_batch: 10_000,
                max_delay: 0.001,
            },
            queue_cap: 20_000,
            ..ServeConfig::default()
        };
        let endpoints = raw(&["table5/ENZYMES/GIN/DGL"]);
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].path.contains("ENZYMES"));
        assert!(findings[0].message.contains("can never fill"));

        cfg.policy = BatchPolicy {
            max_batch: 8,
            max_delay: 0.001,
        };
        cfg.queue_cap = 4;
        let findings = lint(&endpoints, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never accumulate"));
    }

    #[test]
    fn degenerate_workload_and_fleet_are_flagged() {
        let cfg = ServeConfig {
            requests: 0,
            rate: 0.0,
            replicas: 0,
            ..ServeConfig::default()
        };
        let findings = lint(&raw(&["table4/Cora/GCN/PyG"]), &cfg);
        assert_eq!(findings.len(), 3, "{findings:?}");
        let findings = lint(&[], &cfg);
        assert!(findings.iter().any(|f| f.path == "serve/endpoints"));
    }
}
