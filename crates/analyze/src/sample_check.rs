//! Sample-config auditing: proving a giant-graph sampling cell can
//! actually run before the (possibly million-node) graph is generated.
//!
//! A [`gnn_sample::SampleSpec`] is plain data; its own `validate()` stops
//! at the *first* degenerate field, and the sweep/serve/bench layers call
//! it only when a cell is about to run. This pass audits every field of a
//! spec up front and reports **all** defects at once under
//! [`FindingKind::InvalidSampleConfig`] (`sample-config` in `lint.json`),
//! so a fanout/cache sweep with several broken points fails with the full
//! list, not one error per rerun. The diagnostics reuse the
//! [`gnn_sample::SampleConfigError`] `Display` strings byte-for-byte.
//!
//! Checked per spec, at `sample/<name>/<field>` paths:
//!
//! - degenerate RMAT parameters (scale, edge factor, quadrant weights,
//!   feature dim, classes) — the generator could not build a graph;
//! - an empty fan-out list or a zero fan-out hop — the frontier dies;
//! - seed batches out of the node range — `batch_seeds` beyond the
//!   graph's node count cannot name distinct seed nodes;
//! - a feature cache larger than the feature matrix — every row is
//!   resident, the miss path is dead code, the sweep point meaningless;
//! - a placement with zero partitions or a home partition out of range.

use gnn_sample::{validate_fanouts, SampleConfigError, SampleSpec};

use crate::report::{Finding, FindingKind};

fn flag(path: String, err: &SampleConfigError, findings: &mut Vec<Finding>) {
    findings.push(Finding::new(
        FindingKind::InvalidSampleConfig,
        path,
        err.to_string(),
    ));
}

/// Audits every field of one sampled-cell spec, appending one
/// `sample-config` finding per defect. Returns the number of findings
/// added. `spec.name` roots the finding paths (`sample/<name>/...`).
pub fn check_sample_spec(spec: &SampleSpec, findings: &mut Vec<Finding>) -> usize {
    let before = findings.len();
    let root = format!("sample/{}", spec.name);

    if let Err(e) = spec.rmat.validate() {
        flag(format!("{root}/rmat"), &e, findings);
    }
    if let Err(e) = validate_fanouts(&spec.fanouts) {
        flag(format!("{root}/fanouts"), &e, findings);
    }
    if spec.batch_seeds == 0 {
        flag(
            format!("{root}/batch_seeds"),
            &SampleConfigError::ZeroBatchSeeds,
            findings,
        );
    }
    // The RMAT node count is closed-form (2^scale), so the seed-range and
    // cache checks hold without generating anything. Skip them when the
    // RMAT params are themselves broken — num_nodes() would be garbage.
    if spec.rmat.validate().is_ok() {
        let n = spec.rmat.num_nodes();
        if spec.batch_seeds > n {
            flag(
                format!("{root}/batch_seeds"),
                &SampleConfigError::SeedOutOfRange {
                    seed: (spec.batch_seeds - 1) as u32,
                    num_nodes: n,
                },
                findings,
            );
        }
        if spec.cache_rows > n {
            flag(
                format!("{root}/cache_rows"),
                &SampleConfigError::CacheExceedsFeatures {
                    cache_rows: spec.cache_rows,
                    num_nodes: n,
                },
                findings,
            );
        }
    }
    if spec.partitions == 0 {
        flag(
            format!("{root}/partitions"),
            &SampleConfigError::ZeroPartitions,
            findings,
        );
    } else if spec.home_partition >= spec.partitions {
        flag(
            format!("{root}/home_partition"),
            &SampleConfigError::HomePartitionOutOfRange {
                home: spec.home_partition,
                partitions: spec.partitions,
            },
            findings,
        );
    }
    findings.len() - before
}

/// Resolves and audits a list of spec *names* (the `RunConfig::sample_specs`
/// form): unknown names get a finding at `sample/<name>`, known ones run
/// through [`check_sample_spec`]. Returns the resolved specs, so callers
/// lint and certify the same objects the sweep will run.
pub fn check_sample_config(names: &[String], findings: &mut Vec<Finding>) -> Vec<SampleSpec> {
    let mut specs = Vec::with_capacity(names.len());
    for name in names {
        match SampleSpec::get(name) {
            Ok(spec) => {
                check_sample_spec(&spec, findings);
                specs.push(spec);
            }
            Err(e) => flag(format!("sample/{name}"), &e, findings),
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_sample::RmatConfig;

    fn broken_spec() -> SampleSpec {
        SampleSpec {
            name: "rmat-4k",
            rmat: RmatConfig::graph500(12, 4, 0x6e3),
            fanouts: vec![4, 0],
            batch_seeds: 1 << 13, // beyond the 2^12 node range
            cache_rows: 1 << 13,  // bigger than the feature matrix
            partitions: 2,
            home_partition: 5,
        }
    }

    #[test]
    fn catalog_specs_lint_clean() {
        let mut findings = Vec::new();
        let specs = check_sample_config(
            &SampleSpec::names()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &mut findings,
        );
        assert_eq!(specs.len(), 3);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn every_defect_is_reported_at_its_field() {
        let mut findings = Vec::new();
        let n = check_sample_spec(&broken_spec(), &mut findings);
        assert_eq!(n, 4, "{findings:?}");
        let paths: Vec<&str> = findings.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "sample/rmat-4k/fanouts",
                "sample/rmat-4k/batch_seeds",
                "sample/rmat-4k/cache_rows",
                "sample/rmat-4k/home_partition",
            ]
        );
        assert!(findings
            .iter()
            .all(|f| f.kind == FindingKind::InvalidSampleConfig));
        assert!(findings[0].message.contains("fan-out at hop 1"));
        assert!(findings[2].message.contains("exceeds the 4096-row"));
    }

    #[test]
    fn broken_rmat_params_suppress_range_checks() {
        let mut spec = broken_spec();
        spec.rmat.scale = 0;
        let mut findings = Vec::new();
        check_sample_spec(&spec, &mut findings);
        let paths: Vec<&str> = findings.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"sample/rmat-4k/rmat"), "{paths:?}");
        assert!(
            !paths.iter().any(|p| p.ends_with("cache_rows")),
            "range checks against a garbage node count are suppressed: {paths:?}"
        );
    }

    #[test]
    fn unknown_names_get_one_finding_each() {
        let mut findings = Vec::new();
        let specs = check_sample_config(
            &["rmat-4k".to_string(), "rmat-9z".to_string()],
            &mut findings,
        );
        assert_eq!(specs.len(), 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "sample/rmat-9z");
        assert!(findings[0].message.contains("unknown sample spec"));
    }
}
