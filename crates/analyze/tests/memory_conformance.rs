//! Cross-validation of the static memory certifier against the runtime
//! allocator.
//!
//! Two independent checks keep the symbolic model honest:
//!
//! 1. **Dominance and tightness** — for every cell of the paper sweep, the
//!    certified `peak_upper` must dominate the peak device memory the real
//!    supervised training run reports, and stay within a 2x factor of it
//!    (a bound that loose would certify anything). The same must hold under
//!    the canonical chaos plan: transient faults are retried, never
//!    allocated past the certified worst case.
//!
//! 2. **Ceiling verdicts** (property-based) — for random (cell, ceiling)
//!    pairs, the certifier's verdict must agree with what actually happens
//!    when a `MemLimit` fault at that ceiling is armed under the
//!    supervisor: `Fits` runs finish clean and undegraded, `Fatal`
//!    ceilings kill the run with a typed error. `Unknown` is the honest
//!    middle band and asserts nothing.

use gnn_core::{sweep, CellStatus, RunConfig};
use gnn_datasets::{stratified_kfold, CitationSpec, TudSpec};
use gnn_faults::{FaultKind, FaultPlan};
use gnn_lint::{certify_graph_cell, certify_node_cell, certify_run, MemVerdict};
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::config::{graph_hparams, node_hparams, ALL_FRAMEWORKS, ALL_MODELS};
use gnn_models::{build, FrameworkKind, ModelKind};
use gnn_train::{
    run_graph_fold_supervised, run_node_task_supervised, GraphTaskConfig, NodeTaskConfig,
    Supervisor,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The smallest config that still trains all 60 cells (mirrors the sweep's
/// own tiny test config).
fn tiny_cfg() -> RunConfig {
    let mut cfg = RunConfig::smoke();
    cfg.scale = 0.03;
    cfg.node_epochs = 2;
    cfg.graph_epochs = 1;
    cfg
}

/// Certifies `cfg`'s sweep, runs it for real, and checks every cell's
/// observed allocator high-water mark against its certificate.
fn assert_certs_dominate(cfg: &RunConfig) {
    // Certify first: the sweep arms the config's fault plan and the
    // certifier must not run under an injector it did not ask for.
    let certs = certify_run(cfg);
    let out = sweep(cfg);
    assert_eq!(out.cells.len(), 60);
    for cell in &out.cells {
        let path = format!(
            "{}/{}/{}/{}",
            cell.experiment,
            cell.dataset,
            cell.model.label(),
            cell.framework.label()
        );
        assert_ne!(cell.status, CellStatus::Failed, "{path}: {}", cell.detail);
        let cert = certs
            .cell(&path)
            .unwrap_or_else(|| panic!("no certificate for {path}"));
        assert!(cell.peak_memory > 0, "{path}: sweep recorded no peak");
        assert!(
            cert.peak_upper >= cell.peak_memory,
            "{path}: certified peak {} B does not dominate observed {} B",
            cert.peak_upper,
            cell.peak_memory
        );
        assert!(
            cert.peak_upper as f64 <= 2.0 * cell.peak_memory as f64,
            "{path}: certified peak {} B is more than 2x the observed {} B",
            cert.peak_upper,
            cell.peak_memory
        );
    }
}

#[test]
fn certified_bounds_dominate_the_runtime_allocator() {
    assert_certs_dominate(&tiny_cfg());
}

#[test]
fn certified_bounds_hold_under_the_canonical_chaos_plan() {
    assert_certs_dominate(&tiny_cfg().with_faults(FaultPlan::canonical()));
}

/// Sampled cells certify in closed form (fan-out union bounds, no graph in
/// hand); the bound must still dominate what the supervised sampled runner
/// actually allocates, and stay within a 4x factor — looser than the
/// classic cells' 2x because the union bound assumes no frontier
/// deduplication, which real blocks always have.
#[test]
fn sampled_certs_dominate_the_runtime_allocator() {
    use gnn_sample::{RmatGraph, SampleSpec, SamplerKind};
    use gnn_train::{run_sampled_task_supervised, SampledTaskConfig};
    use std::rc::Rc;

    let spec = SampleSpec::get("rmat-4k").unwrap();
    let graph = Rc::new(RmatGraph::generate(spec.rmat).unwrap());
    let task = SampledTaskConfig {
        max_epochs: 2,
        lr: node_hparams(ModelKind::Sage).lr,
        batch_seeds: spec.batch_seeds,
        train_seeds: spec.batch_seeds * 4,
        eval_seeds: spec.batch_seeds,
        seed: 9,
    };
    let (f, c) = (spec.rmat.feature_dim, spec.rmat.num_classes);
    let sup = Supervisor::default();
    for kind in SamplerKind::all() {
        for fw in ALL_FRAMEWORKS {
            let cert = gnn_lint::certify_sample_cell(fw, &spec, kind);
            let mut rng = StdRng::seed_from_u64(9);
            let run = match fw {
                FrameworkKind::RustyG => {
                    let stack = build::node_model_rustyg(ModelKind::Sage, f, c, &mut rng);
                    let loader =
                        rustyg::sampled::SampledLoader::new(graph.clone(), &spec, kind).unwrap();
                    run_sampled_task_supervised(&stack, &loader, &task, &sup)
                }
                FrameworkKind::Rgl => {
                    let stack = build::node_model_rgl(ModelKind::Sage, f, c, &mut rng);
                    let loader =
                        rgl::sampled::SampledLoader::new(graph.clone(), &spec, kind).unwrap();
                    run_sampled_task_supervised(&stack, &loader, &task, &sup)
                }
            }
            .unwrap_or_else(|e| panic!("{}: clean run died: {e}", cert.path()));
            let observed = run.outcome.report.peak_memory;
            assert!(observed > 0, "{}: no peak recorded", cert.path());
            assert!(
                cert.peak_upper >= observed,
                "{}: certified peak {} B does not dominate observed {} B",
                cert.path(),
                cert.peak_upper,
                observed
            );
            assert!(
                cert.peak_upper <= 4 * observed,
                "{}: certified peak {} B is more than 4x the observed {} B",
                cert.path(),
                cert.peak_upper,
                observed
            );
        }
    }
}

/// Maps `frac` in [0, 100] onto a ceiling spanning from well below the
/// cell's fatal floor to comfortably above its certified peak, so the
/// strategy exercises all three verdict bands.
fn ceiling_from(frac: u64, floor_fatal: u64, peak_upper: u64) -> u64 {
    let lo = floor_fatal / 2;
    let hi = peak_upper + peak_upper / 2;
    lo + (hi - lo) * frac / 100
}

fn node_ceiling_case(model: ModelKind, fw: FrameworkKind, frac: u64) {
    let ds = CitationSpec::cora().scaled(0.05).generate(7);
    let cert = certify_node_cell(model, fw, &ds);
    let ceiling = ceiling_from(frac, cert.floor_fatal, cert.peak_upper);
    let verdict = cert.ceiling_verdict(ceiling);
    if verdict == MemVerdict::Unknown {
        return; // between the bounds: the certifier honestly proves nothing
    }
    let f = ds.features.cols();
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(7);
    let task = NodeTaskConfig {
        max_epochs: 2,
        lr: node_hparams(model).lr,
    };
    let sup = Supervisor::default();
    let handle =
        gnn_faults::install(FaultPlan::empty().with(FaultKind::MemLimit { bytes: ceiling }));
    let result = match fw {
        FrameworkKind::RustyG => {
            let stack = build::node_model_rustyg(model, f, c, &mut rng);
            let batch = rustyg::loader::full_graph_batch(&ds);
            run_node_task_supervised(&stack, &batch, &ds, &task, &sup)
        }
        FrameworkKind::Rgl => {
            let stack = build::node_model_rgl(model, f, c, &mut rng);
            let batch = rgl::loader::full_graph_batch(&ds);
            run_node_task_supervised(&stack, &batch, &ds, &task, &sup)
        }
    };
    gnn_faults::finish(handle);
    match verdict {
        MemVerdict::Fits => {
            let run = result.unwrap_or_else(|e| {
                panic!(
                    "{}: certified Fits at {ceiling} B but run died: {e}",
                    cert.path()
                )
            });
            assert!(
                !run.degraded,
                "{}: certified Fits at {ceiling} B but the run degraded",
                cert.path()
            );
        }
        MemVerdict::Fatal => assert!(
            result.is_err(),
            "{}: certified Fatal at {ceiling} B but the run survived",
            cert.path()
        ),
        MemVerdict::Unknown => unreachable!(),
    }
}

fn graph_ceiling_case(model: ModelKind, fw: FrameworkKind, frac: u64) {
    let ds = TudSpec::enzymes().scaled(0.15).generate(8);
    let folds = stratified_kfold(&ds.labels(), 10, 8);
    let mut task = GraphTaskConfig::from_hparams(&graph_hparams(model), 1, 8);
    task.batch_size = task.batch_size.min((folds[0].train.len() / 3).max(8));
    let cert = certify_graph_cell(model, fw, &ds, task.batch_size);
    let ceiling = ceiling_from(frac, cert.floor_fatal, cert.peak_upper);
    let verdict = cert.ceiling_verdict(ceiling);
    if verdict == MemVerdict::Unknown {
        return;
    }
    let f = ds.feature_dim;
    let c = ds.num_classes;
    let mut rng = StdRng::seed_from_u64(8);
    let sup = Supervisor::default();
    let handle =
        gnn_faults::install(FaultPlan::empty().with(FaultKind::MemLimit { bytes: ceiling }));
    let result = match fw {
        FrameworkKind::RustyG => {
            let stack = build::graph_model_rustyg(model, f, c, &mut rng);
            let loader = RustygLoader::new(&ds);
            run_graph_fold_supervised(&stack, &loader, &folds[0], &task, &sup)
        }
        FrameworkKind::Rgl => {
            let stack = build::graph_model_rgl(model, f, c, &mut rng);
            let loader = RglLoader::new(&ds);
            run_graph_fold_supervised(&stack, &loader, &folds[0], &task, &sup)
        }
    };
    gnn_faults::finish(handle);
    match verdict {
        MemVerdict::Fits => {
            let run = result.unwrap_or_else(|e| {
                panic!(
                    "{}: certified Fits at {ceiling} B but run died: {e}",
                    cert.path()
                )
            });
            assert!(
                !run.degraded,
                "{}: certified Fits at {ceiling} B but the run degraded",
                cert.path()
            );
        }
        MemVerdict::Fatal => assert!(
            result.is_err(),
            "{}: certified Fatal at {ceiling} B but the run survived",
            cert.path()
        ),
        MemVerdict::Unknown => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Full-graph node training under a random memory ceiling behaves
    /// exactly as the certificate's verdict predicts.
    #[test]
    fn node_ceiling_verdicts_match_the_supervised_runtime(
        midx in 0usize..ALL_MODELS.len(),
        fwi in 0usize..ALL_FRAMEWORKS.len(),
        frac in 0u64..=100,
    ) {
        node_ceiling_case(ALL_MODELS[midx], ALL_FRAMEWORKS[fwi], frac);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Mini-batch graph training, where the supervisor may halve the batch
    /// before giving up, still lands on the certified verdict: `Fatal`
    /// ceilings admit no batch size at all.
    #[test]
    fn graph_ceiling_verdicts_match_the_supervised_runtime(
        midx in 0usize..ALL_MODELS.len(),
        fwi in 0usize..ALL_FRAMEWORKS.len(),
        frac in 0u64..=100,
    ) {
        graph_ceiling_case(ALL_MODELS[midx], ALL_FRAMEWORKS[fwi], frac);
    }
}
