//! # gnn-models
//!
//! The six GNN models of the study — GCN, GIN, GraphSAGE (isotropic) and
//! GAT, MoNet, GatedGCN (anisotropic) — instantiated under both frameworks
//! with the exact hyper-parameters of the paper's Tables II and III.
//!
//! Models are assembled as a [`GnnStack`]: a sequence of framework conv
//! layers with optional batch-norm / ReLU / residual wiring and either a
//! node-logit head (2-layer node classification, Table II) or a mean-pool +
//! MLP graph-classifier head (4-layer graph classification, Table III).
//! The stack is generic over the framework's batch type; thin adapter impls
//! in [`adapt`] bind the `rustyg` and `rgl` layers to the common
//! [`Conv`]/[`ModelBatch`]/[`Loader`] traits.
//!
//! # Example
//!
//! ```
//! use gnn_datasets::TudSpec;
//! use gnn_models::{build, Loader, ModelKind};
//! use rand::SeedableRng;
//!
//! let ds = TudSpec::enzymes().scaled(0.05).generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
//! let loader = gnn_models::adapt::RustygLoader::new(&ds);
//! let batch = loader.load(&[0, 1, 2, 3]);
//! let logits = model.forward(&batch, false);
//! assert_eq!(logits.shape(), (4, 6));
//! ```

pub mod adapt;
pub mod build;
pub mod config;
pub mod stack;

pub use adapt::{Loader, ModelBatch};
pub use config::{
    graph_hparams, node_hparams, FrameworkKind, GraphHParams, ModelKind, NodeHParams,
};
pub use stack::{Conv, GnnStack};
