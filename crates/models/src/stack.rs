//! The generic GNN stack: conv layers + norm/activation/residual wiring +
//! task head.

use gnn_tensor::nn::{BatchNorm1d, Mlp};
use gnn_tensor::Tensor;

use crate::adapt::ModelBatch;

/// A framework conv layer usable inside a [`GnnStack`].
///
/// Implemented (via thin adapters in [`crate::adapt`]) by the six layer
/// types of each framework.
pub trait Conv<B> {
    /// Applies the layer to node features `x` over `batch`.
    fn forward(&self, batch: &B, x: &Tensor, training: bool) -> Tensor;
    /// Trainable parameters.
    fn params(&self) -> Vec<Tensor>;
    /// Whether the layer already applies its own normalization/activation
    /// internally (GIN's MLP+BN), so the stack skips its BN and keeps only
    /// the outer activation.
    fn has_internal_norm(&self) -> bool {
        false
    }
    /// The layer's internal batch-norm layers, if any (GIN). Their running
    /// statistics are mutable training state that checkpoint/retry
    /// machinery must capture.
    fn norms(&self) -> Vec<&BatchNorm1d> {
        Vec::new()
    }
}

/// The task head of a stack.
pub enum Head<B> {
    /// Node classification: the last conv emits class logits directly
    /// (the paper's 2-layer `input → hidden → output` architecture).
    NodeLogits,
    /// Graph classification: mean readout then an MLP classifier
    /// (the paper's Section IV-B "graph classifier layer").
    GraphClassifier {
        /// Framework readout (scatter-based for PyG, segment for DGL).
        pool: fn(&B, &Tensor) -> Tensor,
        /// Classifier MLP applied to pooled graph representations.
        mlp: Mlp,
    },
}

impl<B> std::fmt::Debug for Head<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Head::NodeLogits => write!(f, "NodeLogits"),
            Head::GraphClassifier { .. } => write!(f, "GraphClassifier"),
        }
    }
}

/// A complete model: conv stack + head, generic over the framework batch.
pub struct GnnStack<B> {
    name: &'static str,
    convs: Vec<Box<dyn Conv<B>>>,
    bns: Vec<Option<BatchNorm1d>>,
    relu_after: Vec<bool>,
    residual: bool,
    head: Head<B>,
}

impl<B> std::fmt::Debug for GnnStack<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GnnStack({}, {} layers, residual={}, head={:?})",
            self.name,
            self.convs.len(),
            self.residual,
            self.head
        )
    }
}

impl<B: ModelBatch> GnnStack<B> {
    /// Assembles a stack.
    ///
    /// # Panics
    ///
    /// Panics if the per-layer vectors disagree in length or are empty.
    pub fn new(
        name: &'static str,
        convs: Vec<Box<dyn Conv<B>>>,
        bns: Vec<Option<BatchNorm1d>>,
        relu_after: Vec<bool>,
        residual: bool,
        head: Head<B>,
    ) -> Self {
        assert!(!convs.is_empty(), "stack needs at least one conv layer");
        assert_eq!(convs.len(), bns.len(), "bns length mismatch");
        assert_eq!(convs.len(), relu_after.len(), "relu_after length mismatch");
        GnnStack {
            name,
            convs,
            bns,
            relu_after,
            residual,
            head,
        }
    }

    /// Model name (paper label).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of conv layers.
    pub fn num_layers(&self) -> usize {
        self.convs.len()
    }

    /// Full forward pass to logits (per-node or per-graph depending on the
    /// head). Each conv layer runs inside a device profiling scope
    /// (`conv1`, `conv2`, ...) so layer-wise times (the paper's Fig. 3) fall
    /// out of the session report.
    pub fn forward(&self, batch: &B, training: bool) -> Tensor {
        batch.begin_forward();
        let mut h = batch.x().clone();
        for (i, conv) in self.convs.iter().enumerate() {
            let scope = LAYER_SCOPES[i.min(LAYER_SCOPES.len() - 1)];
            let out = gnn_device::scope(scope, || {
                let mut out = conv.forward(batch, &h, training);
                if let Some(bn) = &self.bns[i] {
                    out = bn.forward(&out, training);
                }
                if self.relu_after[i] {
                    out = out.relu();
                }
                if self.residual && out.shape() == h.shape() {
                    out = out.add(&h);
                }
                out
            });
            h = out;
        }
        match &self.head {
            Head::NodeLogits => h,
            Head::GraphClassifier { pool, mlp } => gnn_device::scope("readout", || {
                let pooled = pool(batch, &h);
                mlp.forward(&pooled)
            }),
        }
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.convs.iter().flat_map(|c| c.params()).collect();
        for bn in self.bns.iter().flatten() {
            p.extend(bn.params());
        }
        if let Head::GraphClassifier { mlp, .. } = &self.head {
            p.extend(mlp.params());
        }
        p
    }

    /// Total parameter bytes (f32), used for persistent-memory registration
    /// and multi-GPU transfer modelling.
    pub fn param_bytes(&self) -> u64 {
        self.params().iter().map(|p| p.data().byte_size()).sum()
    }

    /// Every batch-norm layer in the stack, in a deterministic order: each
    /// layer's internal norms (GIN) then its outer norm. Training forwards
    /// mutate these layers' running statistics, so exact checkpoint/retry
    /// must snapshot them alongside the parameters.
    pub fn norm_layers(&self) -> Vec<&BatchNorm1d> {
        let mut norms = Vec::new();
        for (conv, bn) in self.convs.iter().zip(&self.bns) {
            norms.extend(conv.norms());
            if let Some(bn) = bn {
                norms.push(bn);
            }
        }
        norms
    }
}

/// Scope labels for layer-wise profiling (Fig. 3).
const LAYER_SCOPES: [&str; 8] = [
    "conv1", "conv2", "conv3", "conv4", "conv5", "conv6", "conv7", "conv8",
];

#[cfg(test)]
mod tests {
    use crate::adapt::Loader;
    use crate::build;
    use crate::config::ModelKind;
    use gnn_datasets::TudSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph_stack_emits_per_graph_logits() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        let loader = crate::adapt::RustygLoader::new(&ds);
        let batch = loader.load(&[0, 1, 2]);
        let logits = model.forward(&batch, true);
        assert_eq!(logits.shape(), (3, 6));
        assert_eq!(model.num_layers(), 4);
    }

    #[test]
    fn node_stack_emits_per_node_logits() {
        let ds = gnn_datasets::CitationSpec::cora().scaled(0.08).generate(0);
        let mut rng = StdRng::seed_from_u64(0);
        let model = build::node_model_rgl(ModelKind::Gat, 1433, 7, &mut rng);
        let batch = rgl::loader::full_graph_batch(&ds);
        let logits = model.forward(&batch, false);
        assert_eq!(logits.shape(), (ds.graph.num_nodes(), 7));
        assert_eq!(model.num_layers(), 2);
    }

    #[test]
    fn forward_records_layer_scopes() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(1);
        let mut rng = StdRng::seed_from_u64(1);
        let model = build::graph_model_rustyg(ModelKind::Gin, 18, 6, &mut rng);
        let loader = crate::adapt::RustygLoader::new(&ds);
        let batch = loader.load(&[0, 1]);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        model.forward(&batch, true);
        let report = gnn_device::session::finish(h);
        for scope in ["conv1", "conv2", "conv3", "conv4", "readout"] {
            assert!(report.scope_time(scope).is_some(), "missing scope {scope}");
        }
    }

    #[test]
    fn eval_stack_forward_is_bit_identical_under_inference_mode() {
        // Whole-stack version of the inference-mode contract: an eval
        // forward (training = false) through conv + BN + readout layers is
        // bit-identical whether or not the autograd tape records it, for
        // both frameworks. gnn-serve answers requests under
        // `gnn_tensor::inference`, so this equality is what makes served
        // logits match a training-loop evaluation exactly.
        let ds = TudSpec::enzymes().scaled(0.05).generate(3);
        let loader_a = crate::adapt::RustygLoader::new(&ds);
        let loader_b = crate::adapt::RglLoader::new(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        let pyg = build::graph_model_rustyg(ModelKind::Gin, 18, 6, &mut rng);
        let dgl = build::graph_model_rgl(ModelKind::Gat, 18, 6, &mut rng);

        let taped = pyg.forward(&loader_a.load(&[0, 1, 4]), false);
        let untaped = gnn_tensor::inference(|| pyg.forward(&loader_a.load(&[0, 1, 4]), false));
        assert_eq!(taped.data().data(), untaped.data().data());
        assert!(!untaped.needs_grad(), "inference mode must keep no tape");

        let taped = dgl.forward(&loader_b.load(&[2, 3]), false);
        let untaped = gnn_tensor::inference(|| dgl.forward(&loader_b.load(&[2, 3]), false));
        assert_eq!(taped.data().data(), untaped.data().data());
        assert!(!untaped.needs_grad(), "inference mode must keep no tape");
    }

    #[test]
    fn params_nonempty_and_param_bytes_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = build::graph_model_rgl(ModelKind::GatedGcn, 18, 6, &mut rng);
        assert!(model.params().len() > 20);
        assert!(model.param_bytes() > 1000);
    }
}
