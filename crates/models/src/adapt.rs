//! Adapters binding the two frameworks to the common model traits.

use gnn_datasets::GraphDataset;
use gnn_tensor::Tensor;

use crate::stack::Conv;

/// What a model stack needs from a framework batch.
pub trait ModelBatch {
    /// Input node features.
    fn x(&self) -> &Tensor;
    /// Target labels (per-node or per-graph).
    fn labels(&self) -> &[u32];
    /// Number of graphs in the batch.
    fn num_graphs(&self) -> usize;
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Number of edges.
    fn num_edges(&self) -> usize;
    /// Bytes of node features (transfer modelling).
    fn feature_bytes(&self) -> u64;
    /// Hook called at the start of every forward pass (clears per-forward
    /// state such as `rgl`'s GatedGCN edge features).
    fn begin_forward(&self) {}
}

impl ModelBatch for rustyg::Batch {
    fn x(&self) -> &Tensor {
        &self.x
    }
    fn labels(&self) -> &[u32] {
        &self.labels
    }
    fn num_graphs(&self) -> usize {
        self.num_graphs
    }
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
    fn num_edges(&self) -> usize {
        rustyg::Batch::num_edges(self)
    }
    fn feature_bytes(&self) -> u64 {
        self.feature_bytes
    }
}

impl ModelBatch for rgl::HeteroBatch {
    fn x(&self) -> &Tensor {
        &self.x
    }
    fn labels(&self) -> &[u32] {
        &self.labels
    }
    fn num_graphs(&self) -> usize {
        self.num_graphs
    }
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
    fn num_edges(&self) -> usize {
        rgl::HeteroBatch::num_edges(self)
    }
    fn feature_bytes(&self) -> u64 {
        self.feature_bytes
    }
    fn begin_forward(&self) {
        rgl::HeteroBatch::begin_forward(self);
    }
}

/// A framework mini-batch loader over a graph-classification dataset.
pub trait Loader {
    /// The framework's batch type.
    type Batch: ModelBatch;
    /// Collates the samples at `idx` into a batch.
    fn load(&self, idx: &[u32]) -> Self::Batch;
}

/// PyG-style loader adapter.
#[derive(Debug)]
pub struct RustygLoader<'a>(rustyg::DataLoader<'a>);

impl<'a> RustygLoader<'a> {
    /// Creates the loader.
    pub fn new(ds: &'a GraphDataset) -> Self {
        RustygLoader(rustyg::DataLoader::new(ds))
    }
}

impl Loader for RustygLoader<'_> {
    type Batch = rustyg::Batch;
    fn load(&self, idx: &[u32]) -> rustyg::Batch {
        self.0.load(idx)
    }
}

/// DGL-style loader adapter.
#[derive(Debug)]
pub struct RglLoader<'a>(rgl::DataLoader<'a>);

impl<'a> RglLoader<'a> {
    /// Creates the loader.
    pub fn new(ds: &'a GraphDataset) -> Self {
        RglLoader(rgl::DataLoader::new(ds))
    }
}

impl Loader for RglLoader<'_> {
    type Batch = rgl::HeteroBatch;
    fn load(&self, idx: &[u32]) -> rgl::HeteroBatch {
        self.0.load(idx)
    }
}

macro_rules! impl_conv {
    ($batch:ty => $($layer:ty),+ $(,)?) => {
        $(impl Conv<$batch> for $layer {
            fn forward(&self, batch: &$batch, x: &Tensor, training: bool) -> Tensor {
                <$layer>::forward(self, batch, x, training)
            }
            fn params(&self) -> Vec<Tensor> {
                <$layer>::params(self)
            }
        })+
    };
}

impl_conv!(rustyg::Batch =>
    rustyg::GcnConv, rustyg::SageConv, rustyg::GatConv, rustyg::MoNetConv,
    rustyg::GatedGcnConv,
);
impl_conv!(rgl::HeteroBatch =>
    rgl::GraphConv, rgl::SageConv, rgl::GatConv, rgl::MoNetConv,
    rgl::GatedGcnConv,
);

// GIN layers normalize internally (Eq. 3's BN sits inside the conv).
impl Conv<rustyg::Batch> for rustyg::GinConv {
    fn forward(&self, batch: &rustyg::Batch, x: &Tensor, training: bool) -> Tensor {
        rustyg::GinConv::forward(self, batch, x, training)
    }
    fn params(&self) -> Vec<Tensor> {
        rustyg::GinConv::params(self)
    }
    fn has_internal_norm(&self) -> bool {
        true
    }
    fn norms(&self) -> Vec<&gnn_tensor::nn::BatchNorm1d> {
        vec![rustyg::GinConv::bn(self)]
    }
}

impl Conv<rgl::HeteroBatch> for rgl::GinConv {
    fn forward(&self, batch: &rgl::HeteroBatch, x: &Tensor, training: bool) -> Tensor {
        rgl::GinConv::forward(self, batch, x, training)
    }
    fn params(&self) -> Vec<Tensor> {
        rgl::GinConv::params(self)
    }
    fn has_internal_norm(&self) -> bool {
        true
    }
    fn norms(&self) -> Vec<&gnn_tensor::nn::BatchNorm1d> {
        vec![rgl::GinConv::bn(self)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::TudSpec;

    #[test]
    fn loaders_agree_on_semantics() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(0);
        let a = RustygLoader::new(&ds).load(&[2, 5]);
        let b = RglLoader::new(&ds).load(&[2, 5]);
        assert_eq!(a.x().data().data(), b.x().data().data());
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_graphs(), 2);
    }

    #[test]
    fn gin_reports_internal_norm() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let gin = rustyg::GinConv::new(4, 8, &mut rng);
        let gcn = rustyg::GcnConv::new(4, 8, &mut rng);
        assert!(Conv::<rustyg::Batch>::has_internal_norm(&gin));
        assert!(!Conv::<rustyg::Batch>::has_internal_norm(&gcn));
    }
}

impl<B: ModelBatch> ModelBatch for std::rc::Rc<B> {
    fn x(&self) -> &Tensor {
        (**self).x()
    }
    fn labels(&self) -> &[u32] {
        (**self).labels()
    }
    fn num_graphs(&self) -> usize {
        (**self).num_graphs()
    }
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn feature_bytes(&self) -> u64 {
        (**self).feature_bytes()
    }
    fn begin_forward(&self) {
        (**self).begin_forward();
    }
}

/// Pre-collating loader adapter (the paper's "more efficient graph batching
/// strategies" suggestion): each distinct chunk is collated once and
/// replayed from device memory afterwards.
#[derive(Debug)]
pub struct CachedRustygLoader<'a>(rustyg::CachedLoader<'a>);

impl<'a> CachedRustygLoader<'a> {
    /// Creates the loader.
    pub fn new(ds: &'a GraphDataset) -> Self {
        CachedRustygLoader(rustyg::CachedLoader::new(ds))
    }
}

impl Loader for CachedRustygLoader<'_> {
    type Batch = rustyg::Batch;
    fn load(&self, idx: &[u32]) -> Self::Batch {
        self.0.load(idx)
    }
}
