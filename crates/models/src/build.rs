//! Model builders: (model kind, framework) → ready-to-train [`GnnStack`].
//!
//! Node-classification models follow the paper's Section IV-A setup
//! (2 layers, `input → hidden → output`, Table II widths); graph-
//! classification models follow Section IV-B (4 conv layers with batch norm,
//! ReLU and residual connections, mean readout into an MLP classifier,
//! Table III widths).

use gnn_tensor::nn::{BatchNorm1d, Mlp};
use rand::Rng;

use crate::config::{graph_hparams, node_hparams, ModelKind};
use crate::stack::{Conv, GnnStack, Head};

macro_rules! framework_builders {
    ($node_fn:ident, $graph_fn:ident, $fw:ident, $batch:ty, $gcn:ident, $pool:expr) => {
        /// Builds the 2-layer node-classification variant of `kind` for this
        /// framework (Table II hyper-parameters).
        pub fn $node_fn<R: Rng + ?Sized>(
            kind: ModelKind,
            in_dim: usize,
            num_classes: usize,
            rng: &mut R,
        ) -> GnnStack<$batch> {
            let hp = node_hparams(kind);
            let h = hp.hidden;
            let convs: Vec<Box<dyn Conv<$batch>>> = match kind {
                ModelKind::Gcn => vec![
                    Box::new($fw::$gcn::new(in_dim, h, rng)),
                    Box::new($fw::$gcn::new(h, num_classes, rng)),
                ],
                ModelKind::Gat => vec![
                    Box::new($fw::GatConv::new(in_dim, h, hp.heads, rng)),
                    Box::new($fw::GatConv::new(h * hp.heads, num_classes, 1, rng)),
                ],
                ModelKind::Sage => vec![
                    Box::new($fw::SageConv::new(in_dim, h, rng)),
                    Box::new($fw::SageConv::new(h, num_classes, rng)),
                ],
                ModelKind::Gin => vec![
                    Box::new($fw::GinConv::new(in_dim, h, rng)),
                    Box::new($fw::GinConv::new(h, num_classes, rng)),
                ],
                ModelKind::MoNet => vec![
                    Box::new($fw::MoNetConv::new(
                        in_dim,
                        h,
                        hp.kernels,
                        hp.pseudo_dim,
                        rng,
                    )),
                    Box::new($fw::MoNetConv::new(
                        h,
                        num_classes,
                        hp.kernels,
                        hp.pseudo_dim,
                        rng,
                    )),
                ],
                ModelKind::GatedGcn => vec![
                    Box::new($fw::GatedGcnConv::new(in_dim, h, rng)),
                    Box::new($fw::GatedGcnConv::new(h, num_classes, rng)),
                ],
            };
            let n = convs.len();
            let mut relu = vec![true; n];
            relu[n - 1] = false;
            GnnStack::new(
                kind.label(),
                convs,
                vec![None, None],
                relu,
                false,
                Head::NodeLogits,
            )
        }

        /// Builds the 4-layer graph-classification variant of `kind` for
        /// this framework (Table III hyper-parameters).
        pub fn $graph_fn<R: Rng + ?Sized>(
            kind: ModelKind,
            in_dim: usize,
            num_classes: usize,
            rng: &mut R,
        ) -> GnnStack<$batch> {
            let hp = graph_hparams(kind);
            let width = hp.out;
            let mut convs: Vec<Box<dyn Conv<$batch>>> = Vec::with_capacity(hp.layers);
            for l in 0..hp.layers {
                let din = if l == 0 { in_dim } else { width };
                let conv: Box<dyn Conv<$batch>> = match kind {
                    ModelKind::Gcn => Box::new($fw::$gcn::new(din, width, rng)),
                    ModelKind::Gat => Box::new($fw::GatConv::new(din, hp.hidden, hp.heads, rng)),
                    ModelKind::Sage => Box::new($fw::SageConv::new(din, width, rng)),
                    ModelKind::Gin => Box::new($fw::GinConv::new(din, width, rng)),
                    ModelKind::MoNet => Box::new($fw::MoNetConv::new(
                        din,
                        width,
                        hp.kernels,
                        hp.pseudo_dim,
                        rng,
                    )),
                    ModelKind::GatedGcn => Box::new($fw::GatedGcnConv::new(din, width, rng)),
                };
                convs.push(conv);
            }
            let internal_norm = matches!(kind, ModelKind::Gin);
            let bns = (0..hp.layers)
                .map(|_| {
                    if internal_norm {
                        None
                    } else {
                        Some(BatchNorm1d::new(width))
                    }
                })
                .collect();
            let relu = vec![true; hp.layers];
            let mlp = Mlp::new(&[width, width / 2, num_classes], rng);
            GnnStack::new(
                kind.label(),
                convs,
                bns,
                relu,
                true,
                Head::GraphClassifier { pool: $pool, mlp },
            )
        }
    };
}

framework_builders!(
    node_model_rustyg,
    graph_model_rustyg,
    rustyg,
    rustyg::Batch,
    GcnConv,
    rustyg::global_mean_pool
);
framework_builders!(
    node_model_rgl,
    graph_model_rgl,
    rgl,
    rgl::HeteroBatch,
    GraphConv,
    rgl::segment_mean_pool
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{Loader, RglLoader, RustygLoader};
    use crate::config::ALL_MODELS;
    use gnn_datasets::TudSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_twelve_graph_variants_forward() {
        let ds = TudSpec::enzymes().scaled(0.05).generate(0);
        let pyg = RustygLoader::new(&ds);
        let dgl = RglLoader::new(&ds);
        let pb = pyg.load(&[0, 1, 2]);
        let db = dgl.load(&[0, 1, 2]);
        for kind in ALL_MODELS {
            let mut rng = StdRng::seed_from_u64(7);
            let m1 = graph_model_rustyg(kind, 18, 6, &mut rng);
            assert_eq!(m1.forward(&pb, true).shape(), (3, 6), "{kind:?} rustyg");
            let mut rng = StdRng::seed_from_u64(7);
            let m2 = graph_model_rgl(kind, 18, 6, &mut rng);
            assert_eq!(m2.forward(&db, true).shape(), (3, 6), "{kind:?} rgl");
        }
    }

    #[test]
    fn all_twelve_node_variants_forward() {
        let ds = gnn_datasets::CitationSpec::cora().scaled(0.08).generate(1);
        let pb = rustyg::loader::full_graph_batch(&ds);
        let db = rgl::loader::full_graph_batch(&ds);
        let n = ds.graph.num_nodes();
        for kind in ALL_MODELS {
            let mut rng = StdRng::seed_from_u64(3);
            let m1 = node_model_rustyg(kind, 1433, 7, &mut rng);
            assert_eq!(m1.forward(&pb, false).shape(), (n, 7), "{kind:?} rustyg");
            let mut rng = StdRng::seed_from_u64(3);
            let m2 = node_model_rgl(kind, 1433, 7, &mut rng);
            assert_eq!(m2.forward(&db, false).shape(), (n, 7), "{kind:?} rgl");
        }
    }

    #[test]
    fn gat_graph_model_width_is_heads_times_hidden() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = graph_model_rustyg(ModelKind::Gat, 18, 6, &mut rng);
        // 4 GAT layers with 8 heads of 32 + BN + MLP; forward above already
        // checks shapes — here check the parameter inventory is substantial.
        assert!(m.params().len() >= 4 * 3 + 4 * 2 + 4);
    }

    #[test]
    fn gin_stacks_have_no_outer_bn() {
        let mut rng = StdRng::seed_from_u64(0);
        let gin = graph_model_rustyg(ModelKind::Gin, 18, 6, &mut rng);
        let gcn = graph_model_rustyg(ModelKind::Gcn, 18, 6, &mut rng);
        // GIN carries its BN inside each conv (2 extra params per conv) and
        // none outside; GCN has 2 outer BN params per layer. Distinguish by
        // counting: both must simply be > 0; structural check is that GIN's
        // epsilon params exist.
        assert!(
            gin.params().iter().any(|p| p.shape() == (1, 1)),
            "GIN eps present"
        );
        assert!(!gcn.params().iter().any(|p| p.shape() == (1, 1)));
    }
}
