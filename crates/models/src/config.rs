//! Model and hyper-parameter configuration (the paper's Tables II and III).

/// The six GNN architectures of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling) — isotropic.
    Gcn,
    /// Graph Attention Network (Veličković et al.) — anisotropic.
    Gat,
    /// GraphSAGE (Hamilton et al.), mean-pool aggregator — isotropic.
    Sage,
    /// Graph Isomorphism Network (Xu et al.) — isotropic.
    Gin,
    /// Gaussian Mixture Model network (Monti et al.) — anisotropic.
    MoNet,
    /// Residual gated graph convnet (Bresson & Laurent) — anisotropic.
    GatedGcn,
}

/// All six models in the paper's presentation order.
pub const ALL_MODELS: [ModelKind; 6] = [
    ModelKind::Gcn,
    ModelKind::Gat,
    ModelKind::Sage,
    ModelKind::Gin,
    ModelKind::MoNet,
    ModelKind::GatedGcn,
];

impl ModelKind {
    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gat => "GAT",
            ModelKind::Sage => "SAGE",
            ModelKind::Gin => "GIN",
            ModelKind::MoNet => "MoNet",
            ModelKind::GatedGcn => "GatedGCN",
        }
    }

    /// Whether the model weighs neighbours non-uniformly (the paper's
    /// isotropic/anisotropic split).
    pub fn is_anisotropic(self) -> bool {
        matches!(
            self,
            ModelKind::Gat | ModelKind::MoNet | ModelKind::GatedGcn
        )
    }
}

/// The two frameworks under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkKind {
    /// The PyG-like framework (`rustyg`).
    RustyG,
    /// The DGL-like framework (`rgl`).
    Rgl,
}

/// Both frameworks in the paper's column order.
pub const ALL_FRAMEWORKS: [FrameworkKind; 2] = [FrameworkKind::RustyG, FrameworkKind::Rgl];

impl FrameworkKind {
    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FrameworkKind::RustyG => "PyG",
            FrameworkKind::Rgl => "DGL",
        }
    }
}

/// Node-classification hyper-parameters (Table II): 2 layers, full batch,
/// max 200 epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeHParams {
    /// Hidden width (per head for GAT).
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Attention heads (GAT only; 1 otherwise).
    pub heads: usize,
    /// Gaussian kernels (MoNet only).
    pub kernels: usize,
    /// Pseudo-coordinate dims (MoNet only).
    pub pseudo_dim: usize,
}

/// Table II settings for `model`.
pub fn node_hparams(model: ModelKind) -> NodeHParams {
    let base = NodeHParams {
        hidden: 64,
        lr: 1e-3,
        heads: 1,
        kernels: 2,
        pseudo_dim: 2,
    };
    match model {
        ModelKind::Gcn => NodeHParams {
            hidden: 80,
            lr: 0.01,
            ..base
        },
        ModelKind::Gat => NodeHParams {
            hidden: 32,
            lr: 0.01,
            heads: 8,
            ..base
        },
        ModelKind::Gin => NodeHParams {
            hidden: 64,
            lr: 0.005,
            ..base
        },
        ModelKind::Sage => NodeHParams {
            hidden: 32,
            lr: 0.001,
            ..base
        },
        ModelKind::MoNet => NodeHParams {
            hidden: 64,
            lr: 0.003,
            ..base
        },
        ModelKind::GatedGcn => NodeHParams {
            hidden: 64,
            lr: 0.001,
            ..base
        },
    }
}

/// Graph-classification hyper-parameters (Table III): 4 layers, batch 128,
/// lr halved on 25-epoch plateaus down to 1e-6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphHParams {
    /// Number of conv layers.
    pub layers: usize,
    /// Hidden width (per head for GAT).
    pub hidden: usize,
    /// Output width of the conv stack (readout input).
    pub out: usize,
    /// Initial Adam learning rate.
    pub init_lr: f32,
    /// Plateau patience in epochs.
    pub patience: usize,
    /// Learning-rate decay factor on plateau.
    pub decay_factor: f32,
    /// Training stops when the lr decays below this.
    pub min_lr: f32,
    /// Attention heads (GAT only).
    pub heads: usize,
    /// Gaussian kernels (MoNet only).
    pub kernels: usize,
    /// Pseudo-coordinate dims (MoNet only).
    pub pseudo_dim: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

/// Table III settings for `model`.
pub fn graph_hparams(model: ModelKind) -> GraphHParams {
    let base = GraphHParams {
        layers: 4,
        hidden: 96,
        out: 96,
        init_lr: 1e-3,
        patience: 25,
        decay_factor: 0.5,
        min_lr: 1e-6,
        heads: 1,
        kernels: 2,
        pseudo_dim: 2,
        batch_size: 128,
    };
    match model {
        ModelKind::Gcn => GraphHParams {
            hidden: 128,
            out: 128,
            init_lr: 1e-3,
            ..base
        },
        ModelKind::Gat => GraphHParams {
            hidden: 32,
            out: 256,
            heads: 8,
            init_lr: 1e-3,
            ..base
        },
        ModelKind::Gin => GraphHParams {
            hidden: 80,
            out: 80,
            init_lr: 1e-3,
            ..base
        },
        ModelKind::Sage => GraphHParams {
            hidden: 96,
            out: 96,
            init_lr: 7e-4,
            ..base
        },
        ModelKind::MoNet => GraphHParams {
            hidden: 80,
            out: 80,
            init_lr: 1e-3,
            ..base
        },
        ModelKind::GatedGcn => GraphHParams {
            hidden: 96,
            out: 96,
            init_lr: 7e-4,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anisotropy_split_matches_paper() {
        assert!(!ModelKind::Gcn.is_anisotropic());
        assert!(!ModelKind::Gin.is_anisotropic());
        assert!(!ModelKind::Sage.is_anisotropic());
        assert!(ModelKind::Gat.is_anisotropic());
        assert!(ModelKind::MoNet.is_anisotropic());
        assert!(ModelKind::GatedGcn.is_anisotropic());
    }

    #[test]
    fn table2_values() {
        assert_eq!(node_hparams(ModelKind::Gcn).hidden, 80);
        assert_eq!(node_hparams(ModelKind::Gcn).lr, 0.01);
        assert_eq!(node_hparams(ModelKind::Gat).heads, 8);
        assert_eq!(node_hparams(ModelKind::Gin).lr, 0.005);
        assert_eq!(node_hparams(ModelKind::MoNet).kernels, 2);
        assert_eq!(node_hparams(ModelKind::MoNet).pseudo_dim, 2);
    }

    #[test]
    fn table3_values() {
        let gat = graph_hparams(ModelKind::Gat);
        assert_eq!(gat.layers, 4);
        assert_eq!(gat.hidden, 32);
        assert_eq!(gat.out, 256);
        assert_eq!(gat.heads, 8);
        assert_eq!(
            gat.hidden * gat.heads,
            gat.out,
            "GAT width = hidden x heads"
        );
        let sage = graph_hparams(ModelKind::Sage);
        assert_eq!(sage.init_lr, 7e-4);
        assert_eq!(sage.patience, 25);
        assert_eq!(sage.min_lr, 1e-6);
        assert_eq!(sage.batch_size, 128);
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(ModelKind::GatedGcn.label(), "GatedGCN");
        assert_eq!(FrameworkKind::RustyG.label(), "PyG");
        assert_eq!(FrameworkKind::Rgl.label(), "DGL");
        assert_eq!(ALL_MODELS.len(), 6);
        assert_eq!(ALL_FRAMEWORKS.len(), 2);
    }
}
