//! Property-based tests of the DGL-like conv layers and fused kernels on
//! random graphs.

use gnn_graph::Graph;
use gnn_tensor::{NdArray, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rgl::{GatConv, GatedGcnConv, GinConv, GraphConv, HeteroBatch, MoNetConv, SageConv};

fn random_batch(n: usize, edges: Vec<(u32, u32)>, feats: Vec<f32>, dim: usize) -> HeteroBatch {
    let g = Graph::from_edges(n, &edges);
    HeteroBatch::from_parts(&g, NdArray::from_vec(n, dim, feats), vec![0; n], 1, vec![0])
}

fn batch_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<f32>)> {
    (3usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..25);
        let feats = proptest::collection::vec(-2.0f32..2.0, n * 4);
        (Just(n), edges, feats)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_conv_is_finite_shaped_and_differentiable(
        (n, edges, feats) in batch_strategy(),
        seed in 0u64..100,
    ) {
        let b = random_batch(n, edges, feats, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let gcn = GraphConv::new(4, 5, &mut rng);
        let sage = SageConv::new(4, 5, &mut rng);
        let gin = GinConv::new(4, 5, &mut rng);
        let gat = GatConv::new(4, 2, 2, &mut rng);
        let monet = MoNetConv::new(4, 5, 2, 2, &mut rng);
        let gated = GatedGcnConv::new(4, 5, &mut rng);

        type Case<'a> = (&'a str, Box<dyn Fn(&HeteroBatch, &Tensor) -> Tensor + 'a>, Vec<Tensor>, usize);
        let cases: Vec<Case> = vec![
            ("gcn", Box::new(|b, x| gcn.forward(b, x, true)), gcn.params(), 5),
            ("sage", Box::new(|b, x| sage.forward(b, x, true)), sage.params(), 5),
            ("gin", Box::new(|b, x| gin.forward(b, x, true)), gin.params(), 5),
            ("gat", Box::new(|b, x| gat.forward(b, x, true)), gat.params(), 4),
            ("monet", Box::new(|b, x| monet.forward(b, x, true)), monet.params(), 5),
            ("gated", Box::new(|b, x| gated.forward(b, x, true)), gated.params(), 5),
        ];
        for (name, fwd, params, expect_cols) in &cases {
            b.begin_forward();
            let out = fwd(&b, &b.x);
            prop_assert_eq!(out.shape().0, n, "{} rows", name);
            prop_assert_eq!(out.shape().1, *expect_cols, "{} cols", name);
            prop_assert!(!out.data().has_non_finite(), "{} produced NaN/inf", name);
            b.begin_forward();
            let again = fwd(&b, &b.x);
            let (o, a) = (out.data().clone(), again.data().clone());
            prop_assert_eq!(o.data(), a.data(), "{} must be deterministic", name);
            out.sum_all().backward();
            prop_assert!(params[0].grad().is_some(), "{} first param missing grad", name);
            for p in params {
                p.zero_grad();
            }
        }
    }

    /// The fused gspmm_copy_sum must agree with the unfused gather/scatter
    /// on arbitrary topologies and features.
    #[test]
    fn fused_and_unfused_aggregation_agree(
        (n, edges, feats) in batch_strategy(),
    ) {
        let b = random_batch(n, edges, feats, 4);
        let x = Tensor::new(b.x.data().clone());
        let fused = rgl::kernels::gspmm_copy_sum(&b, &x);
        let unfused = x.gather_rows(&b.src).scatter_add_rows(&b.dst, b.num_nodes);
        let (f, u) = (fused.data(), unfused.data());
        for (a, c) in f.data().iter().zip(u.data()) {
            prop_assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    /// gspmm_mul_sum with all-ones weights equals gspmm_copy_sum.
    #[test]
    fn unit_weights_reduce_to_copy_sum((n, edges, feats) in batch_strategy()) {
        let b = random_batch(n, edges, feats, 4);
        let x = Tensor::new(b.x.data().clone());
        let ones = Tensor::new(NdArray::full(b.num_edges(), 1, 1.0));
        let weighted = rgl::kernels::gspmm_mul_sum(&b, &x, &ones);
        let copied = rgl::kernels::gspmm_copy_sum(&b, &x);
        let (w, c) = (weighted.data(), copied.data());
        for (a, d) in w.data().iter().zip(c.data()) {
            prop_assert!((a - d).abs() < 1e-4);
        }
    }
}
