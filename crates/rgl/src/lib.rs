//! # rgl — the DGL-like framework
//!
//! The second GNN framework under study, architected after Deep Graph
//! Library, with the three structural properties the paper traces DGL's
//! performance profile to:
//!
//! 1. **Heterograph generality.** Every batch is wrapped as a typed
//!    heterograph even when the data is homogeneous: node/edge type arrays
//!    are materialized, ids are remapped per type, and the COO topology is
//!    converted to CSC — "although graphs in dataset ENZYMES and DD are not
//!    heterogeneous graphs, all graphs are treated as heterogeneous graphs
//!    during data processing, which brings extra-time loss" (Section IV-C).
//!    The collation path also cannot use the backend's native data ops
//!    (DGL supports multiple DNN backends), so it pays a lower host copy
//!    bandwidth. See [`loader`] and [`costs`].
//! 2. **Fused generalized kernels.** Message passing lowers onto
//!    [`kernels::gspmm_copy_sum`] / [`kernels::gspmm_mul_sum`] (message +
//!    aggregate fused into one kernel) and [`kernels::gsddmm_u_add_v`]
//!    (per-edge binary ops), each paying a framework dispatch cost on the
//!    host. Fewer, fatter kernels than `rustyg`'s gather/scatter — but more
//!    surrounding normalization ops per layer (e.g. [`GraphConv`]'s pre- and
//!    post-norm, Section IV-C).
//! 3. **Mandatory edge state in GatedGCN.** [`GatedGcnConv`] updates an
//!    explicit `[E, F]` edge-feature tensor through a fully connected layer
//!    every layer — the paper's explanation for GatedGCN-under-DGL being
//!    ~2× slower and far more memory-hungry than under PyG.
//!
//! # Example
//!
//! ```
//! use gnn_datasets::TudSpec;
//! use rand::SeedableRng;
//!
//! let ds = TudSpec::enzymes().scaled(0.05).generate(0);
//! let loader = rgl::DataLoader::new(&ds);
//! let batch = loader.load(&[0, 1, 2]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let conv = rgl::GraphConv::new(18, 32, &mut rng);
//! let h = conv.forward(&batch, &batch.x, true);
//! assert_eq!(h.shape().1, 32);
//! ```

pub mod batch;
pub mod conv;
pub mod costs;
pub mod kernels;
pub mod loader;
pub mod pool;
pub mod sampled;

pub use batch::HeteroBatch;
pub use conv::{GatConv, GatedGcnConv, GinConv, GraphConv, MoNetConv, SageConv};
pub use loader::DataLoader;
pub use pool::{segment_max_pool, segment_mean_pool, segment_sum_pool};
