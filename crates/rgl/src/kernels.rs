//! Fused generalized sparse kernels (DGL's GSpMM / GSDDMM).
//!
//! GSpMM "fuses two steps, computing messages by the source node and edge
//! features and aggregating the messages as the features on destination
//! nodes, into one kernel" (Section IV-C). These are custom autograd
//! operations registered against `gnn-tensor`'s [`Backward`] extension
//! point: each records one fused device kernel (plus DGL's host-side
//! dispatch cost [`crate::costs::OP_DISPATCH`]) instead of the gather/
//! scatter pair the PyG-like framework launches.

// Kernel-style loops co-index several slices; index form is clearer here.
#![allow(clippy::needless_range_loop)]

use gnn_device::{host, record, Kernel, KernelKind};
use gnn_tensor::{accumulate, Backward, Ids, NdArray, Tensor};

use crate::batch::HeteroBatch;
use crate::costs;

/// Models writing a `[rows, cols]` tensor into a heterograph frame
/// (`g.edata[...]` / `g.ndata[...]`): DGL materializes a copy in the frame
/// before its kernels can read it — extra device memory, a copy kernel, and
/// host bookkeeping. This is a key structural difference from the PyG-like
/// framework, and the source of DGL's larger footprint on edge-heavy models
/// (paper Section IV-D).
pub(crate) fn frame_write(rows: usize, cols: usize) {
    gnn_device::alloc((4 * rows * cols) as u64);
    record(Kernel::elementwise("frame_write", rows * cols, 0, 2));
    host(costs::FRAME_WRITE_PER_ROW * rows as f64);
}

fn spmm_kernel(name: &'static str, edges: usize, cols: usize, mul: bool) -> Kernel {
    let elems = edges as u64 * cols as u64;
    Kernel::new(
        name,
        KernelKind::SpMM,
        if mul { 2 * elems } else { elems },
        8 * elems + 8 * edges as u64 + if mul { 4 * edges as u64 } else { 0 },
    )
}

fn sddmm_kernel(name: &'static str, edges: usize, cols: usize) -> Kernel {
    let elems = edges as u64 * cols as u64;
    Kernel::new(
        name,
        KernelKind::SDDMM,
        elems,
        12 * elems + 8 * edges as u64,
    )
}

/// Debug-build bounds check on an edge index pair; release builds rely on
/// `gnn-lint` having proven the indices in-bounds before the run.
fn debug_check_edges(src: &[u32], dst: &[u32], num_nodes: usize) {
    debug_assert!(
        src.iter().chain(dst).all(|&v| (v as usize) < num_nodes),
        "edge index out of bounds (num_nodes = {num_nodes})"
    );
}

fn copy_sum_raw(x: &NdArray, src: &[u32], dst: &[u32], out_rows: usize) -> NdArray {
    let cols = x.cols();
    debug_check_edges(src, &[], x.rows());
    debug_check_edges(&[], dst, out_rows);
    let mut out = NdArray::zeros(out_rows, cols);
    for e in 0..src.len() {
        let s = src[e] as usize;
        let d = dst[e] as usize;
        let (srow_start, drow_start) = (s * cols, d * cols);
        for c in 0..cols {
            out.data_mut()[drow_start + c] += x.data()[srow_start + c];
        }
    }
    out
}

struct GSpmmCopySumBack {
    src: Ids,
    dst: Ids,
    in_rows: usize,
}

impl Backward for GSpmmCopySumBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        host(costs::OP_DISPATCH);
        record(spmm_kernel(
            "gspmm_copy_sum_back",
            self.src.len(),
            grad.cols(),
            false,
        ));
        // Reverse-direction SpMM: dx[src] += grad[dst].
        accumulate(
            &parents[0],
            copy_sum_raw(grad, &self.dst, &self.src, self.in_rows),
        );
    }
    fn name(&self) -> &'static str {
        "gspmm_copy_sum"
    }
}

/// Fused copy-from-source + sum-by-destination: `out[i] = Σ_{j→i} x[j]`.
///
/// # Panics
///
/// Panics if `x` has fewer rows than the batch has nodes.
pub fn gspmm_copy_sum(batch: &HeteroBatch, x: &Tensor) -> Tensor {
    let xv = x.data();
    assert_eq!(
        xv.rows(),
        batch.num_nodes,
        "gspmm: node feature rows mismatch"
    );
    gnn_device::traced("rgl", "gspmm_copy_sum", || {
        host(costs::OP_DISPATCH);
        // `update_all` stages the source features in the ndata frame first.
        frame_write(batch.num_nodes, xv.cols());
        record(spmm_kernel(
            "gspmm_copy_sum",
            batch.num_edges(),
            xv.cols(),
            false,
        ));
        let out = copy_sum_raw(&xv, &batch.src, &batch.dst, batch.num_nodes);
        Tensor::from_op(
            out,
            vec![x.clone()],
            Box::new(GSpmmCopySumBack {
                src: batch.src.clone(),
                dst: batch.dst.clone(),
                in_rows: batch.num_nodes,
            }),
        )
    })
}

struct GSpmmMulSumBack {
    src: Ids,
    dst: Ids,
    x: NdArray,
    w: NdArray,
    in_rows: usize,
}

impl Backward for GSpmmMulSumBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        let cols = grad.cols();
        let heads = self.w.cols();
        let d = cols / heads;
        host(costs::OP_DISPATCH);
        if parents[0].needs_grad() {
            record(spmm_kernel(
                "gspmm_mul_sum_back_x",
                self.src.len(),
                cols,
                true,
            ));
            let mut dx = NdArray::zeros(self.in_rows, cols);
            for e in 0..self.src.len() {
                let s = self.src[e] as usize;
                let dn = self.dst[e] as usize;
                let wr = self.w.row(e);
                for h in 0..heads {
                    let wv = wr[h];
                    for k in 0..d {
                        *dx.at_mut(s, h * d + k) += wv * grad.at(dn, h * d + k);
                    }
                }
            }
            accumulate(&parents[0], dx);
        }
        if parents[1].needs_grad() {
            record(sddmm_kernel("gsddmm_dot_back_w", self.src.len(), cols));
            let mut dw = NdArray::zeros(self.src.len(), heads);
            for e in 0..self.src.len() {
                let s = self.src[e] as usize;
                let dn = self.dst[e] as usize;
                let dwr = dw.row_mut(e);
                for h in 0..heads {
                    let mut acc = 0.0;
                    for k in 0..d {
                        acc += grad.at(dn, h * d + k) * self.x.at(s, h * d + k);
                    }
                    dwr[h] = acc;
                }
            }
            accumulate(&parents[1], dw);
        }
    }
    fn name(&self) -> &'static str {
        "gspmm_mul_sum"
    }
}

/// Fused multiply-by-edge-weight + sum-by-destination:
/// `out[i, h·D+k] = Σ_{e: j→i} w[e, h] · x[j, h·D+k]`.
///
/// `w` is `[E, H]` with `x.cols()` divisible by `H` (use `H = 1` for scalar
/// edge weights).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gspmm_mul_sum(batch: &HeteroBatch, x: &Tensor, w: &Tensor) -> Tensor {
    let xv = x.data().clone();
    let wv = w.data().clone();
    assert_eq!(
        xv.rows(),
        batch.num_nodes,
        "gspmm: node feature rows mismatch"
    );
    assert_eq!(
        wv.rows(),
        batch.num_edges(),
        "gspmm: edge weight rows mismatch"
    );
    let heads = wv.cols();
    assert!(
        heads > 0 && xv.cols().is_multiple_of(heads),
        "gspmm: cols not divisible by heads"
    );
    let d = xv.cols() / heads;
    debug_check_edges(&batch.src, &batch.dst, batch.num_nodes);
    gnn_device::traced("rgl", "gspmm_mul_sum", || {
        host(costs::OP_DISPATCH);
        // Source features and edge weights are staged in the ndata/edata
        // frames before the fused kernel can read them.
        frame_write(batch.num_nodes, xv.cols());
        frame_write(batch.num_edges(), heads);
        record(spmm_kernel(
            "gspmm_mul_sum",
            batch.num_edges(),
            xv.cols(),
            true,
        ));
        let mut out = NdArray::zeros(batch.num_nodes, xv.cols());
        for e in 0..batch.num_edges() {
            let s = batch.src[e] as usize;
            let dn = batch.dst[e] as usize;
            let wr = wv.row(e);
            for h in 0..heads {
                let wvv = wr[h];
                for k in 0..d {
                    *out.at_mut(dn, h * d + k) += wvv * xv.at(s, h * d + k);
                }
            }
        }
        Tensor::from_op(
            out,
            vec![x.clone(), w.clone()],
            Box::new(GSpmmMulSumBack {
                src: batch.src.clone(),
                dst: batch.dst.clone(),
                x: xv,
                w: wv,
                in_rows: batch.num_nodes,
            }),
        )
    })
}

struct GsddmmAddBack {
    src: Ids,
    dst: Ids,
    u_rows: usize,
    v_rows: usize,
}

impl Backward for GsddmmAddBack {
    fn backward(&self, grad: &NdArray, parents: &[Tensor]) {
        host(costs::OP_DISPATCH);
        if parents[0].needs_grad() {
            record(spmm_kernel(
                "gsddmm_add_back_u",
                self.src.len(),
                grad.cols(),
                false,
            ));
            let mut du = NdArray::zeros(self.u_rows, grad.cols());
            for (e, &s) in self.src.iter().enumerate() {
                let dr = du.row_mut(s as usize);
                for (c, &g) in grad.row(e).iter().enumerate() {
                    dr[c] += g;
                }
            }
            accumulate(&parents[0], du);
        }
        if parents[1].needs_grad() {
            record(spmm_kernel(
                "gsddmm_add_back_v",
                self.dst.len(),
                grad.cols(),
                false,
            ));
            let mut dv = NdArray::zeros(self.v_rows, grad.cols());
            for (e, &dn) in self.dst.iter().enumerate() {
                let dr = dv.row_mut(dn as usize);
                for (c, &g) in grad.row(e).iter().enumerate() {
                    dr[c] += g;
                }
            }
            accumulate(&parents[1], dv);
        }
    }
    fn name(&self) -> &'static str {
        "gsddmm_u_add_v"
    }
}

/// Fused per-edge binary add (DGL's `u_add_v`): `out[e] = u[src_e] + v[dst_e]`.
///
/// # Panics
///
/// Panics if `u` and `v` disagree in width or don't cover the batch's nodes.
pub fn gsddmm_u_add_v(batch: &HeteroBatch, u: &Tensor, v: &Tensor) -> Tensor {
    let uv = u.data();
    let vv = v.data();
    assert_eq!(uv.cols(), vv.cols(), "gsddmm: operand widths differ");
    assert_eq!(uv.rows(), batch.num_nodes, "gsddmm: u rows mismatch");
    assert_eq!(vv.rows(), batch.num_nodes, "gsddmm: v rows mismatch");
    debug_check_edges(&batch.src, &batch.dst, batch.num_nodes);
    gnn_device::traced("rgl", "gsddmm_u_add_v", || {
        host(costs::OP_DISPATCH);
        record(sddmm_kernel("gsddmm_u_add_v", batch.num_edges(), uv.cols()));
        // The per-edge result lands in the edata frame.
        frame_write(batch.num_edges(), uv.cols());
        let mut out = NdArray::zeros(batch.num_edges(), uv.cols());
        for e in 0..batch.num_edges() {
            let s = batch.src[e] as usize;
            let dn = batch.dst[e] as usize;
            let orow = out.row_mut(e);
            for c in 0..uv.cols() {
                orow[c] = uv.at(s, c) + vv.at(dn, c);
            }
        }
        let (u_rows, v_rows) = (uv.rows(), vv.rows());
        Tensor::from_op(
            out,
            vec![u.clone(), v.clone()],
            Box::new(GsddmmAddBack {
                src: batch.src.clone(),
                dst: batch.dst.clone(),
                u_rows,
                v_rows,
            }),
        )
    })
}

/// DGL's `edge_softmax`: softmax of per-edge scores grouped by destination
/// node. Thin wrapper over the segment-softmax kernel plus dispatch cost.
pub fn edge_softmax(batch: &HeteroBatch, scores: &Tensor) -> Tensor {
    gnn_device::traced("rgl", "edge_softmax", || {
        host(costs::OP_DISPATCH);
        frame_write(batch.num_edges(), scores.shape().1);
        scores.segment_softmax(&batch.dst, batch.num_nodes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;

    fn toy_batch() -> HeteroBatch {
        // edges: 0->1, 2->1, 1->0
        let g = Graph::from_edges(3, &[(0, 1), (2, 1), (1, 0)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn copy_sum_matches_manual_aggregation() {
        let b = toy_batch();
        let x = Tensor::param(NdArray::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let out = gspmm_copy_sum(&b, &x);
        // node1 <- node0 + node2 ; node0 <- node1 ; node2 <- nothing
        assert_eq!(out.data().row(1), &[6., 8.]);
        assert_eq!(out.data().row(0), &[3., 4.]);
        assert_eq!(out.data().row(2), &[0., 0.]);
        out.sum_all().backward();
        // dx[j] = #out-edges of j.
        assert_eq!(x.grad().unwrap().data(), &[1., 1., 1., 1., 1., 1.]);
    }

    #[test]
    fn copy_sum_equals_pyg_gather_scatter() {
        // The fused kernel must be numerically identical to the PyG path.
        let b = toy_batch();
        let x = Tensor::new(NdArray::from_vec(3, 2, vec![0.5, -1., 2., 0.25, -3., 1.5]));
        let fused = gspmm_copy_sum(&b, &x);
        let unfused = x.gather_rows(&b.src).scatter_add_rows(&b.dst, b.num_nodes);
        assert_eq!(fused.data().data(), unfused.data().data());
    }

    #[test]
    fn mul_sum_weights_messages() {
        let b = toy_batch();
        let x = Tensor::param(NdArray::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let w = Tensor::param(NdArray::from_vec(3, 1, vec![10., 100., 0.5]));
        let out = gspmm_mul_sum(&b, &x, &w);
        // node1 <- 10*x0 + 100*x2 = [310, 310]; node0 <- 0.5*x1 = [1,1]
        assert_eq!(out.data().row(1), &[310., 310.]);
        assert_eq!(out.data().row(0), &[1., 1.]);
        out.sum_all().backward();
        // dw[e] = sum_c x[src_e]; for e0: x0 sums to 2.
        assert_eq!(w.grad().unwrap().data(), &[2., 6., 4.]);
        // dx[0] = w(e0) on both cols.
        assert_eq!(x.grad().unwrap().row(0), &[10., 10.]);
    }

    #[test]
    fn mul_sum_multihead_routes_per_head() {
        let b = toy_batch();
        // 2 heads x 1 dim.
        let x = Tensor::param(NdArray::from_vec(3, 2, vec![1., 5., 2., 6., 3., 7.]));
        let w = Tensor::new(NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]));
        let out = gspmm_mul_sum(&b, &x, &w);
        // node1: head0 gets 1*x0h0 + 0*x2h0 = 1; head1 gets 0*x0h1 + 1*x2h1 = 7.
        assert_eq!(out.data().row(1), &[1., 7.]);
    }

    #[test]
    fn u_add_v_and_gradients() {
        let b = toy_batch();
        let u = Tensor::param(NdArray::from_vec(3, 1, vec![1., 2., 3.]));
        let v = Tensor::param(NdArray::from_vec(3, 1, vec![10., 20., 30.]));
        let out = gsddmm_u_add_v(&b, &u, &v);
        // edges (0->1): u0+v1=21 ; (2->1): u2+v1=23 ; (1->0): u1+v0=12
        assert_eq!(out.data().data(), &[21., 23., 12.]);
        out.sum_all().backward();
        assert_eq!(u.grad().unwrap().data(), &[1., 1., 1.]);
        // Node 1 is the destination of two edges, node 2 of none.
        assert_eq!(v.grad().unwrap().data(), &[1., 2., 0.]);
    }

    #[test]
    fn edge_softmax_normalizes_per_destination() {
        let b = toy_batch();
        let s = Tensor::new(NdArray::from_vec(3, 1, vec![1., 3., 0.5]));
        let a = edge_softmax(&b, &s);
        let d = a.data();
        // Edges 0 and 1 share destination 1.
        assert!((d.data()[0] + d.data()[1] - 1.0).abs() < 1e-5);
        assert!((d.data()[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fused_kernels_launch_fewer_than_unfused() {
        let b = toy_batch();
        let x = Tensor::param(NdArray::zeros(3, 2));

        // Compare message-passing kernels by kind: the fused path also
        // records a frame_write staging copy (an Elementwise launch), so
        // total launch counts tie; the fusion claim is one SpMM replacing
        // the gather + scatter pair.
        let mp_kernels = |report: &gnn_device::DeviceReport| -> u64 {
            report
                .kind_counts
                .iter()
                .filter(|(k, _)| {
                    matches!(
                        k,
                        KernelKind::SpMM
                            | KernelKind::SDDMM
                            | KernelKind::Gather
                            | KernelKind::Scatter
                    )
                })
                .map(|(_, n)| n)
                .sum()
        };

        let h1 = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        gspmm_copy_sum(&b, &x);
        let fused = mp_kernels(&gnn_device::session::finish(h1));

        let h2 = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        x.gather_rows(&b.src).scatter_add_rows(&b.dst, b.num_nodes);
        let unfused = mp_kernels(&gnn_device::session::finish(h2));

        assert!(fused < unfused, "{fused} !< {unfused}");
    }

    #[test]
    #[should_panic(expected = "edge weight rows mismatch")]
    fn mul_sum_shape_check() {
        let b = toy_batch();
        let x = Tensor::new(NdArray::zeros(3, 2));
        let w = Tensor::new(NdArray::zeros(1, 1));
        gspmm_mul_sum(&b, &x, &w);
    }
}
