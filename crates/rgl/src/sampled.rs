//! Neighbor-sampled mini-batch loading, DGL style.
//!
//! Same sampled-block semantics as `rustyg::sampled`, but through the
//! heterograph path: every block is wrapped as a fresh heterograph, so
//! collation re-pays the per-graph wrapping constant, the per-node/edge
//! type-array and CSC-conversion constants, and the structure transfer
//! carries COO + CSC + type arrays (`16 × edges + 8 × nodes`). This is the
//! sampled-training analogue of the paper's "DGL data loading time is
//! significantly longer" observation — per-step collation dominates
//! exactly when every step builds a new subgraph.

use std::cell::RefCell;
use std::rc::Rc;

use gnn_device::{record, FeatureCache, FetchStats, Kernel};
use gnn_graph::Graph;
use gnn_sample::{
    sample_block, RmatGraph, SampleConfigError, SampleSpec, SampledBlock, SamplerKind,
};
use gnn_tensor::NdArray;

use crate::batch::HeteroBatch;
use crate::costs;

/// Loads sampled union blocks of an [`RmatGraph`] as heterograph batches.
#[derive(Debug)]
pub struct SampledLoader {
    graph: Rc<RmatGraph>,
    spec: SampleSpec,
    kind: SamplerKind,
    cache: RefCell<FeatureCache>,
}

impl SampledLoader {
    /// Builds a loader for `spec` over an already-generated graph.
    ///
    /// # Errors
    ///
    /// Returns the spec's [`SampleConfigError`] if it is degenerate.
    pub fn new(
        graph: Rc<RmatGraph>,
        spec: &SampleSpec,
        kind: SamplerKind,
    ) -> Result<Self, SampleConfigError> {
        spec.validate()?;
        let cache = FeatureCache::new(
            spec.cache_rows,
            spec.row_bytes(),
            graph.num_nodes(),
            spec.partitions,
            spec.home_partition,
        );
        Ok(SampledLoader {
            graph,
            spec: spec.clone(),
            kind,
            cache: RefCell::new(cache),
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &RmatGraph {
        &self.graph
    }

    /// The loader's spec.
    pub fn spec(&self) -> &SampleSpec {
        &self.spec
    }

    /// The sampler kind.
    pub fn kind(&self) -> SamplerKind {
        self.kind
    }

    /// Cumulative cache counters.
    pub fn cache_totals(&self) -> FetchStats {
        self.cache.borrow().totals()
    }

    /// Lifetime cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.borrow().hit_rate()
    }

    /// Samples and collates the block for `seeds` through the heterograph
    /// path: per-graph wrapping, type arrays, CSC conversion, and the
    /// heavier structure transfer, with feature movement through the cache.
    ///
    /// # Errors
    ///
    /// Typed error for out-of-range seeds or an empty seed list.
    pub fn try_load_block(
        &self,
        seeds: &[u32],
        salt: u64,
    ) -> Result<HeteroBatch, SampleConfigError> {
        let block = sample_block(&self.graph, seeds, &self.spec.fanouts, self.kind, salt)?;
        Ok(self.collate(&block))
    }

    fn collate(&self, block: &SampledBlock) -> HeteroBatch {
        let n = block.num_nodes();
        let e = block.num_edges();
        let f = self.graph.config().feature_dim;

        let mut features = NdArray::zeros(n, f);
        for (i, &v) in block.nodes.iter().enumerate() {
            self.graph.feature_into(v, features.row_mut(i));
        }
        let labels: Vec<u32> = block.nodes.iter().map(|&v| self.graph.label(v)).collect();

        let stats = self.cache.borrow_mut().fetch(&block.nodes);

        // Every sampled block is wrapped as a fresh heterograph.
        gnn_device::host(costs::collate_time(1, n, e, stats.bytes_moved));
        // H2D: COO + CSC + type arrays (features moved by the cache).
        record(Kernel::transfer(
            "h2d_sampled_hetero",
            16 * e as u64 + 8 * n as u64,
        ));

        let union = Graph::new(n, block.src.clone(), block.dst.clone());
        HeteroBatch::from_parts(&union, features, vec![0; n], 1, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_device::{session, CostModel, Session};

    fn loader(kind: SamplerKind) -> SampledLoader {
        let spec = SampleSpec::get("rmat-4k").unwrap();
        let graph = Rc::new(RmatGraph::generate(spec.rmat).unwrap());
        SampledLoader::new(graph, &spec, kind).unwrap()
    }

    #[test]
    fn hetero_blocks_pay_more_than_pyg_blocks() {
        let spec = SampleSpec::get("rmat-4k").unwrap();
        let graph = Rc::new(RmatGraph::generate(spec.rmat).unwrap());
        let seeds: Vec<u32> = (0..16).collect();

        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let pyg = rustyg::sampled::SampledLoader::new(graph.clone(), &spec, SamplerKind::Neighbor)
            .unwrap();
        pyg.try_load_block(&seeds, 0).unwrap();
        let pyg_report = session::finish(handle);

        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let dgl = SampledLoader::new(graph, &spec, SamplerKind::Neighbor).unwrap();
        dgl.try_load_block(&seeds, 0).unwrap();
        let dgl_report = session::finish(handle);

        assert!(
            dgl_report.total_time - dgl_report.busy_time
                > pyg_report.total_time - pyg_report.busy_time,
            "heterograph collation constants dominate: dgl {} vs pyg {}",
            dgl_report.total_time,
            pyg_report.total_time
        );
    }

    #[test]
    fn layerwise_loader_builds_valid_batches() {
        let handle = session::install(Session::new(CostModel::rtx2080ti()));
        let l = loader(SamplerKind::LayerWise);
        let b = l.try_load_block(&[3, 4, 5], 1).unwrap();
        assert!(b.num_nodes >= 3);
        assert_eq!(b.labels.len(), b.num_nodes);
        session::finish(handle);
    }

    #[test]
    fn sampled_hetero_batches_are_deterministic() {
        let make = || {
            let handle = session::install(Session::new(CostModel::rtx2080ti()));
            let l = loader(SamplerKind::Neighbor);
            let b = l.try_load_block(&[9, 10], 2).unwrap();
            session::finish(handle);
            (b.num_nodes, b.num_edges(), b.labels.clone())
        };
        assert_eq!(make(), make());
    }
}
