//! Mini-batch collation, DGL style (`dgl.batch`).
//!
//! Same disjoint-union semantics as the PyG-like loader, but through the
//! heterograph path: type arrays and CSC are built per batch, collation
//! cannot use backend-native tensor ops, and every quantity pays the higher
//! constants of [`crate::costs`]. This is the "data loading time of DGL is
//! significantly longer than that of PyG across all models" result of
//! Figs. 1–2.

use gnn_datasets::{GraphDataset, NodeDataset};
use gnn_device::{record, Kernel};
use gnn_graph::disjoint_union;
use gnn_tensor::NdArray;

use crate::batch::HeteroBatch;
use crate::costs;

/// Batches graphs of a [`GraphDataset`] by index, heterograph style.
#[derive(Debug)]
pub struct DataLoader<'a> {
    dataset: &'a GraphDataset,
}

impl<'a> DataLoader<'a> {
    /// Creates a loader over `dataset`.
    pub fn new(dataset: &'a GraphDataset) -> Self {
        DataLoader { dataset }
    }

    /// Collates the samples at `indices` into one heterograph batch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn load(&self, indices: &[u32]) -> HeteroBatch {
        assert!(!indices.is_empty(), "empty batch");
        let samples: Vec<_> = indices
            .iter()
            .map(|&i| &self.dataset.samples[i as usize])
            .collect();
        let graphs: Vec<_> = samples.iter().map(|s| &s.graph).collect();
        let union = disjoint_union(&graphs);

        let total_nodes = union.graph.num_nodes();
        let f = self.dataset.feature_dim;
        let mut features = NdArray::zeros(total_nodes, f);
        let mut row = 0usize;
        for s in &samples {
            for r in 0..s.graph.num_nodes() {
                features.row_mut(row).copy_from_slice(s.features.row(r));
                row += 1;
            }
        }
        let labels: Vec<u32> = samples.iter().map(|s| s.label).collect();

        let fbytes = features.byte_size();
        gnn_device::host(costs::collate_time(
            samples.len(),
            total_nodes,
            union.graph.num_edges(),
            fbytes,
        ));
        // H2D: features + COO + CSC + type arrays.
        record(Kernel::transfer(
            "h2d_hetero_batch",
            fbytes + 16 * union.graph.num_edges() as u64 + 8 * total_nodes as u64,
        ));

        HeteroBatch::from_parts(
            &union.graph,
            features,
            union.graph_ids,
            samples.len(),
            labels,
        )
    }
}

/// Wraps a full citation graph as a single heterograph "batch" for
/// full-batch node classification.
pub fn full_graph_batch(ds: &NodeDataset) -> HeteroBatch {
    gnn_device::host(costs::BATCH_OVERHEAD + costs::PER_GRAPH);
    record(Kernel::transfer(
        "h2d_full_hetero_graph",
        ds.features.byte_size()
            + 16 * ds.graph.num_edges() as u64
            + 8 * ds.graph.num_nodes() as u64,
    ));
    let n = ds.graph.num_nodes();
    HeteroBatch::from_parts(
        &ds.graph,
        ds.features.clone(),
        vec![0; n],
        1,
        ds.labels.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_datasets::{CitationSpec, TudSpec};

    #[test]
    fn load_matches_pyg_loader_semantics() {
        // Both loaders must produce identical numerics (the frameworks only
        // differ in execution, not semantics) — the paper's accuracy-parity
        // precondition.
        let ds = TudSpec::enzymes().scaled(0.05).generate(0);
        let dgl = DataLoader::new(&ds).load(&[1, 4, 7]);
        let pyg = rustyg_like_reference(&ds, &[1, 4, 7]);
        assert_eq!(dgl.x.data().data(), pyg.0.data());
        assert_eq!(dgl.labels, pyg.1);
    }

    fn rustyg_like_reference(ds: &GraphDataset, idx: &[u32]) -> (NdArray, Vec<u32>) {
        let samples: Vec<_> = idx.iter().map(|&i| &ds.samples[i as usize]).collect();
        let total: usize = samples.iter().map(|s| s.graph.num_nodes()).sum();
        let mut features = NdArray::zeros(total, ds.feature_dim);
        let mut row = 0;
        for s in &samples {
            for r in 0..s.graph.num_nodes() {
                features.row_mut(row).copy_from_slice(s.features.row(r));
                row += 1;
            }
        }
        (features, samples.iter().map(|s| s.label).collect())
    }

    #[test]
    fn dgl_loading_slower_than_pyg_same_batch() {
        let ds = TudSpec::enzymes().scaled(0.1).generate(1);
        let idx: Vec<u32> = (0..48).collect();

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        DataLoader::new(&ds).load(&idx);
        let dgl_time = gnn_device::session::finish(h).total_time;

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        rustyg::DataLoader::new(&ds).load(&idx);
        let pyg_time = gnn_device::session::finish(h).total_time;

        assert!(
            dgl_time > 1.8 * pyg_time,
            "hetero path must cost clearly more: {dgl_time} vs {pyg_time}"
        );
    }

    #[test]
    fn full_graph_batch_wraps_citation_dataset() {
        let ds = CitationSpec::pubmed().scaled(0.02).generate(2);
        let b = full_graph_batch(&ds);
        assert_eq!(b.num_nodes, ds.graph.num_nodes());
        assert_eq!(b.ntypes.len(), b.num_nodes);
        assert_eq!(b.etypes.len(), b.num_edges());
    }
}
