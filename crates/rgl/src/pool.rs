//! Graph readout, DGL style.
//!
//! DGL's pooling "is based on their segment reduction operator" (Section
//! IV-C): one dispatched segment-mean kernel over graph ids, as opposed to
//! PyG's scatter + divide.

use gnn_tensor::Tensor;

use crate::batch::HeteroBatch;
use crate::costs;

/// Mean-pools node features into per-graph features `[num_graphs, F]` via
/// the segment-reduction operator.
pub fn segment_mean_pool(batch: &HeteroBatch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    x.segment_mean(&batch.graph_ids, batch.num_graphs)
}

/// Sum-pools node features via the segment-reduction operator.
pub fn segment_sum_pool(batch: &HeteroBatch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    x.segment_sum(&batch.graph_ids, batch.num_graphs)
}

/// Max-pools node features via the segment-reduction operator.
pub fn segment_max_pool(batch: &HeteroBatch, x: &Tensor) -> Tensor {
    gnn_device::host(costs::POOL_OVERHEAD);
    x.segment_max(&batch.graph_ids, batch.num_graphs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;

    #[test]
    fn pools_per_graph_means() {
        let g = Graph::from_edges(4, &[]);
        let b = HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(4, 1, vec![1., 3., 10., 30.]),
            vec![0, 0, 1, 1],
            2,
            vec![0, 1],
        );
        let pooled = segment_mean_pool(&b, &b.x);
        assert_eq!(pooled.data().data(), &[2., 20.]);
    }

    #[test]
    fn sum_and_max_segment_pools() {
        let g = Graph::from_edges(4, &[]);
        let b = HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(4, 1, vec![1., 3., 10., 30.]),
            vec![0, 0, 1, 1],
            2,
            vec![0, 1],
        );
        assert_eq!(segment_sum_pool(&b, &b.x).data().data(), &[4., 40.]);
        assert_eq!(segment_max_pool(&b, &b.x).data().data(), &[3., 30.]);
    }

    #[test]
    fn uses_segment_kernel_not_scatter() {
        let g = Graph::from_edges(2, &[]);
        let b = HeteroBatch::from_parts(&g, NdArray::zeros(2, 4), vec![0, 0], 1, vec![0]);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        segment_mean_pool(&b, &b.x);
        let report = gnn_device::session::finish(h);
        let count = |k: gnn_device::KernelKind| {
            report
                .kind_counts
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(count(gnn_device::KernelKind::Segment), 1);
        assert_eq!(count(gnn_device::KernelKind::Scatter), 0);
    }
}
