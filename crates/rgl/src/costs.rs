//! Host-side cost constants of the DGL-like stack.
//!
//! Same categories as `rustyg::costs`, with the multipliers the paper
//! attributes to DGL's architecture:
//!
//! - collation goes through the **heterograph path** (type arrays, id
//!   remapping, per-type bookkeeping) → higher per-graph/node/edge costs;
//! - collation is **backend-agnostic** (DGL supports PyTorch, TF, MXNet) so
//!   it "can not use the highly efficient data operations provided by
//!   PyTorch" → lower effective host copy bandwidth;
//! - every fused graph kernel call crosses DGL's dispatch layer
//!   (heterograph format checks, kernel selection) → per-op dispatch cost on
//!   top of the CUDA launch.

/// Fixed overhead per mini-batch (`dgl.batch` machinery).
pub const BATCH_OVERHEAD: f64 = 250e-6;

/// Per-graph collate cost (heterograph wrapping, per-type metadata).
pub const PER_GRAPH: f64 = 230e-6;

/// Per-node collate cost (type arrays, id remapping; non-torch loops).
pub const PER_NODE: f64 = 70e-9;

/// Per-edge collate cost (type arrays + CSC format conversion).
pub const PER_EDGE: f64 = 110e-9;

/// Host copy bandwidth for feature stacking (bytes/s; backend-agnostic
/// data path).
pub const HOST_COPY_BW: f64 = 2.5e9;

/// Python dispatch overhead at the start of each conv-layer forward.
pub const LAYER_OVERHEAD: f64 = 550e-6;

/// Dispatch cost of one fused graph kernel (GSpMM/GSDDMM/edge-softmax):
/// heterograph format resolution + kernel selection.
pub const OP_DISPATCH: f64 = 85e-6;

/// Dispatch overhead of a segment-reduction pooling call.
pub const POOL_OVERHEAD: f64 = 160e-6;

/// Host cost per row of writing a tensor into a heterograph's node/edge
/// frame (`g.ndata[...]`/`g.edata[...]`): reference bookkeeping, shape
/// checks, and the frame's column dictionary.
pub const FRAME_WRITE_PER_ROW: f64 = 12e-9;

/// Host cost per edge of an `apply_edges` user-defined-function path —
/// the route DGL's GatedGCN takes for its edge-feature update when the
/// builtin fused kernels cannot express it. This is the "edge feature
/// update operation" the paper identifies as GatedGCN-under-DGL's dominant
/// cost (Section IV-A observation 3).
pub const EDGE_UDF_PER_EDGE: f64 = 150e-9;

/// Collation cost of a batch with the given shape, in seconds.
pub fn collate_time(
    num_graphs: usize,
    num_nodes: usize,
    num_edges: usize,
    feature_bytes: u64,
) -> f64 {
    BATCH_OVERHEAD
        + PER_GRAPH * num_graphs as f64
        + PER_NODE * num_nodes as f64
        + PER_EDGE * num_edges as f64
        + feature_bytes as f64 / HOST_COPY_BW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgl_collation_costs_more_than_pyg() {
        // The structural claim behind Figs. 1–2: same batch, higher cost.
        let (g, n, e, fb) = (128, 4224, 15_906, 304_128);
        assert!(collate_time(g, n, e, fb) > 2.0 * rustyg_collate(g, n, e, fb));
    }

    // Local copy of the PyG formula to avoid a circular dev-dependency.
    fn rustyg_collate(g: usize, n: usize, e: usize, fb: u64) -> f64 {
        120e-6 + 85e-6 * g as f64 + 25e-9 * n as f64 + 35e-9 * e as f64 + fb as f64 / 8.0e9
    }
}
