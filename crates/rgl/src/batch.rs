//! The DGL-style heterograph batch.

use std::cell::RefCell;
use std::rc::Rc;

use gnn_graph::{Csc, Graph};
use gnn_tensor::{Ids, NdArray, Tensor};

/// A collated mini-batch wrapped as a (single-type) heterograph.
///
/// Beyond the COO arrays the PyG-like batch carries, a heterograph
/// materializes node/edge **type arrays** and the **CSC layout** its fused
/// kernels aggregate over — even though every type id is 0 for the study's
/// homogeneous datasets. That generality is DGL's design choice and the
/// source of the collation overhead the paper measures.
#[derive(Debug)]
pub struct HeteroBatch {
    /// Node features `[N, F]` (constant leaf).
    pub x: Tensor,
    /// Edge sources (COO).
    pub src: Ids,
    /// Edge destinations (COO).
    pub dst: Ids,
    /// CSC layout (in-edges grouped per destination).
    pub csc: Csc,
    /// Node type of every node (all zero for homogeneous data, still built).
    pub ntypes: Vec<u32>,
    /// Edge type of every edge (all zero for homogeneous data, still built).
    pub etypes: Vec<u32>,
    /// Total node count.
    pub num_nodes: usize,
    /// Number of graphs collated into this batch.
    pub num_graphs: usize,
    /// Per-node graph membership.
    pub graph_ids: Ids,
    /// In-degree + 1, as `[N, 1]`.
    pub deg: Tensor,
    /// `1 / (in-degree + 1)`, as `[N, 1]`.
    pub inv_deg: Tensor,
    /// `1 / sqrt(in-degree + 1)`, as `[N, 1]`.
    pub inv_sqrt_deg: Tensor,
    /// Target labels (per-graph or per-node).
    pub labels: Vec<u32>,
    /// Bytes of node features.
    pub feature_bytes: u64,
    /// GatedGCN's persistent edge-feature state, threaded between layers.
    pub edge_state: RefCell<Option<Tensor>>,
}

impl HeteroBatch {
    /// Assembles a heterograph batch: builds type arrays and CSC and
    /// registers the corresponding device allocations.
    pub fn from_parts(
        graph: &Graph,
        features: NdArray,
        graph_ids: Vec<u32>,
        num_graphs: usize,
        labels: Vec<u32>,
    ) -> Self {
        assert_eq!(
            features.rows(),
            graph.num_nodes(),
            "feature/node count mismatch"
        );
        let n = graph.num_nodes();
        let e = graph.num_edges();
        let feature_bytes = features.byte_size();
        // Heterograph bookkeeping: type arrays + CSC (real compute, real
        // allocations).
        let ntypes = vec![0u32; n];
        let etypes = vec![0u32; e];
        let csc = graph.csc();
        let deg_raw: Vec<f32> = graph.in_degrees().iter().map(|&d| (d + 1) as f32).collect();
        let inv: Vec<f32> = deg_raw.iter().map(|&d| 1.0 / d).collect();
        let inv_sqrt: Vec<f32> = deg_raw.iter().map(|&d| 1.0 / d.sqrt()).collect();
        // features + deg triple + COO + CSC + type arrays.
        gnn_device::alloc(
            feature_bytes
                + 12 * n as u64
                + 8 * e as u64
                + (8 * e + 4 * n) as u64
                + 4 * (n + e) as u64,
        );
        HeteroBatch {
            x: Tensor::new(features),
            src: Rc::new(graph.src().to_vec()),
            dst: Rc::new(graph.dst().to_vec()),
            csc,
            ntypes,
            etypes,
            num_nodes: n,
            num_graphs,
            graph_ids: Rc::new(graph_ids),
            deg: Tensor::new(NdArray::from_vec(n, 1, deg_raw)),
            inv_deg: Tensor::new(NdArray::from_vec(n, 1, inv)),
            inv_sqrt_deg: Tensor::new(NdArray::from_vec(n, 1, inv_sqrt)),
            labels,
            feature_bytes,
            edge_state: RefCell::new(None),
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Clears per-forward state (GatedGCN edge features). Model stacks call
    /// this at the start of every forward pass.
    pub fn begin_forward(&self) {
        *self.edge_state.borrow_mut() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_bookkeeping_is_materialized() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let b = HeteroBatch::from_parts(&g, NdArray::zeros(3, 2), vec![0; 3], 1, vec![0]);
        assert_eq!(b.ntypes, vec![0, 0, 0]);
        assert_eq!(b.etypes, vec![0, 0, 0]);
        assert_eq!(b.csc.in_sources(1), &[0]);
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn edge_state_resets_on_begin_forward() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let b = HeteroBatch::from_parts(&g, NdArray::zeros(2, 2), vec![0; 2], 1, vec![0]);
        *b.edge_state.borrow_mut() = Some(Tensor::new(NdArray::zeros(1, 2)));
        b.begin_forward();
        assert!(b.edge_state.borrow().is_none());
    }
}
