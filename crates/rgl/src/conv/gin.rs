//! GINConv, DGL style.

use gnn_tensor::nn::{BatchNorm1d, Linear};
use gnn_tensor::{NdArray, Tensor};
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::gspmm_copy_sum;

/// Graph Isomorphism Network layer (paper Eq. 3), aggregation lowered onto
/// the fused GSpMM copy-sum — the kernel the paper's Fig. 3 analysis singles
/// out as dominating GIN's conv1 time in DGL.
#[derive(Debug)]
pub struct GinConv {
    eps: Tensor,
    v: Linear,
    bn: BatchNorm1d,
    w: Linear,
}

impl GinConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GinConv {
            eps: Tensor::param(NdArray::scalar(0.0)),
            v: Linear::new(in_dim, out_dim, rng),
            bn: BatchNorm1d::new(out_dim),
            w: Linear::new(out_dim, out_dim, rng),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let agg = gspmm_copy_sum(batch, x);
        let mixed = x.scale_by(&self.eps.add_scalar(1.0)).add(&agg);
        let h = self.bn.forward(&self.v.forward(&mixed), training).relu();
        self.w.forward(&h)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.w.out_dim()
    }

    /// The layer's internal batch norm (its running statistics are mutable
    /// training state that checkpointing must capture).
    pub fn bn(&self) -> &BatchNorm1d {
        &self.bn
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.eps.clone()];
        p.extend(self.v.params());
        p.extend(self.bn.params());
        p.extend(self.w.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn shape_params_and_grads() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GinConv::new(2, 5, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 5));
        assert_eq!(conv.params().len(), 7);
        out.sum_all().backward();
        assert!(conv.eps.grad().is_some());
    }

    #[test]
    fn aggregation_uses_one_fused_spmm() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GinConv::new(2, 4, &mut rng);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        conv.forward(&b, &b.x, true);
        let report = gnn_device::session::finish(h);
        let spmm = report
            .kind_counts
            .iter()
            .find(|(k, _)| *k == gnn_device::KernelKind::SpMM)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(spmm, 1, "forward must launch exactly one fused GSpMM");
        let scatter = report
            .kind_counts
            .iter()
            .find(|(k, _)| *k == gnn_device::KernelKind::Scatter)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(scatter, 0, "no PyG-style scatter in the DGL lowering");
    }
}
