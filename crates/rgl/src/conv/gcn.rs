//! GraphConv (DGL's GCN layer).

use gnn_tensor::nn::Linear;
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::gspmm_copy_sum;

/// DGL `GraphConv` with `norm="both"`: symmetric renormalized convolution
/// `h' = D^{-1/2} (A + I) D^{-1/2} h W`.
///
/// DGL lowering: **pre-norm kernel** on the source features, GEMM, fused
/// GSpMM copy-sum, self-loop add, **post-norm kernel** on the destination —
/// the extra normalization launches the paper's layer-time analysis calls
/// out against PyG's single edge-weight multiply.
#[derive(Debug)]
pub struct GraphConv {
    lin: Linear,
}

impl GraphConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GraphConv {
            lin: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        // Pre-normalization (separate kernel in DGL).
        let xn = x.mul_col(&batch.inv_sqrt_deg);
        let h = self.lin.forward(&xn);
        // Fused aggregation + self-loop term.
        let agg = gspmm_copy_sum(batch, &h).add(&h);
        // Post-normalization (separate kernel in DGL).
        agg.mul_col(&batch.inv_sqrt_deg)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        self.lin.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn symmetric_norm_on_two_cycle() {
        // Nodes 0,1 both have renormalized degree 2: out_0 = (h0 + h1)/2.
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GraphConv::new(2, 3, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        // Manual: xn = x / sqrt(2) (rows 0,1), h = xn W + b, out0 = (h0+h1)/sqrt(2)
        let xn = b.x.mul_col(&b.inv_sqrt_deg);
        let h = xn
            .matmul(&conv.lin.params()[0])
            .add_bias(&conv.lin.params()[1]);
        let hd = h.data();
        for c in 0..3 {
            let expect = (hd.at(0, c) + hd.at(1, c)) / 2.0f32.sqrt();
            assert!(
                (out.data().at(0, c) - expect).abs() < 1e-5,
                "col {c}: {} vs {expect}",
                out.data().at(0, c)
            );
        }
    }

    #[test]
    fn isolated_node_passes_self_through() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GraphConv::new(2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        // Node 2: degree 1, so out = lin(x2) exactly.
        let h =
            b.x.matmul(&conv.lin.params()[0])
                .add_bias(&conv.lin.params()[1]);
        assert_eq!(out.data().row(2), h.data().row(2));
    }

    #[test]
    fn uses_more_norm_kernels_than_pyg_gcn() {
        // Structural check behind the paper's GCN layer-time gap: the DGL
        // layer launches pre+post norm (2 mul_col) where PyG launches one.
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GraphConv::new(2, 2, &mut rng);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        conv.forward(&b, &b.x, true);
        let report = gnn_device::session::finish(h);
        let elementwise = report
            .kind_counts
            .iter()
            .find(|(k, _)| *k == gnn_device::KernelKind::Elementwise)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(
            elementwise >= 3,
            "expected pre-norm, post-norm, self-add: {elementwise}"
        );
    }

    #[test]
    fn gradients_reach_weights() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(3);
        let conv = GraphConv::new(2, 2, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for p in conv.params() {
            assert!(p.grad().is_some());
        }
    }
}
