//! SAGEConv, DGL style.

use gnn_tensor::nn::Linear;
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::gspmm_copy_sum;

/// GraphSAGE with the mean-pool aggregator, lowered onto GSpMM: the
/// neighbour pool runs through a fused copy-sum followed by a separate mean
/// division (DGL's `copy_u`/`sum` + degree division), then the concatenated
/// update and L2 projection.
#[derive(Debug)]
pub struct SageConv {
    pool: Linear,
    lin: Linear,
}

impl SageConv {
    /// Creates the layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        SageConv {
            pool: Linear::new(in_dim, in_dim, rng),
            lin: Linear::new(2 * in_dim, out_dim, rng),
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let pooled = self.pool.forward(x).relu();
        let agg = gspmm_copy_sum(batch, &pooled).mul_col(&batch.inv_deg);
        let h = self.lin.forward(&x.concat_cols(&agg));
        h.l2_normalize_rows(1e-12)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.pool.params();
        p.extend(self.lin.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn rows_unit_norm_and_shapes() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = SageConv::new(2, 4, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 4));
        for r in 0..3 {
            let n: f32 = out.data().row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn matches_rustyg_sage_numerics_with_shared_weights() {
        // Same weights, same math, different lowering: outputs must agree.
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let dgl = SageConv::new(2, 4, &mut rng);
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        let pb = rustyg::Batch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        );
        // Reimplement the PyG path with dgl's weights.
        let pooled = dgl.pool.forward(&pb.x).relu();
        let agg = pooled
            .gather_rows(&pb.src)
            .scatter_add_rows(&pb.dst, pb.num_nodes)
            .mul_col(&pb.inv_deg);
        let expect = dgl
            .lin
            .forward(&pb.x.concat_cols(&agg))
            .l2_normalize_rows(1e-12);
        let got = dgl.forward(&b, &b.x, true);
        for r in 0..3 {
            for c in 0..4 {
                assert!((got.data().at(r, c) - expect.data().at(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_flow() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = SageConv::new(2, 3, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        for p in conv.params() {
            assert!(p.grad().is_some());
        }
    }
}
