//! GatedGCN, DGL style — with mandatory explicit edge features.

use gnn_tensor::nn::Linear;
use gnn_tensor::{NdArray, Tensor};
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::{gsddmm_u_add_v, gspmm_mul_sum};

/// Residual gated graph convolution with explicit edge-feature state:
///
/// `e_ij' = C e_ij + D h_i + E h_j` (a **fully connected layer over all
/// edges**, every layer), gates `η_ij = σ(e_ij')`, and
/// `h_i' = A h_i + (Σ_j η_ij ⊙ B h_j) / (Σ_j η_ij + ε)`.
///
/// The paper's DGL implementation "has to set the edge types parameter …
/// and then the features of all edges will be updated through a fully
/// connected layer", even when the dataset has no edge features — the
/// dominant cost of GatedGCN under DGL and the reason for its outsized
/// memory footprint (Sections IV-A obs. 3, IV-D obs. 2). The updated edge
/// tensor is threaded to the next layer via
/// [`HeteroBatch::edge_state`].
#[derive(Debug)]
pub struct GatedGcnConv {
    a: Linear,
    b: Linear,
    c: Linear,
    d: Linear,
    e: Linear,
}

impl GatedGcnConv {
    /// Creates the layer. When no edge features exist yet (`edge_feat:
    /// False`, the study's setting), the first layer seeds them with a
    /// constant 1-vector; the linear map `C` absorbs the embedding.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GatedGcnConv {
            a: Linear::new(in_dim, out_dim, rng),
            b: Linear::new(in_dim, out_dim, rng),
            c: Linear::new(in_dim, out_dim, rng),
            d: Linear::new(in_dim, out_dim, rng),
            e: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Applies the layer, reading and updating the batch's edge state.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        // Materialize (or reuse) the explicit edge features.
        let e_in = {
            let state = batch.edge_state.borrow();
            match state.as_ref() {
                Some(e) => e.clone(),
                None => {
                    // edge_feat = False still allocates a constant per-edge
                    // feature tensor in the DGL implementation.
                    let in_dim = self.c.in_dim();
                    gnn_device::alloc((4 * batch.num_edges() * in_dim) as u64);
                    Tensor::new(NdArray::full(batch.num_edges(), in_dim, 1.0))
                }
            }
        };
        let ah = self.a.forward(x);
        let bh = self.b.forward(x);
        let dh = self.d.forward(x);
        let eh = self.e.forward(x);
        // The fully connected update over ALL edges: C e + D h_dst + E h_src.
        // This goes through DGL's `apply_edges` UDF path — a per-edge host
        // cost on top of the kernels, the dominant term the paper measures.
        // The UDF materializes both endpoints' features per edge
        // (`edges.src['h']`, `edges.dst['h']`), the memory signature behind
        // GatedGCN-under-DGL's outsized footprint (Fig. 4).
        gnn_device::host(crate::costs::EDGE_UDF_PER_EDGE * batch.num_edges() as f64);
        crate::kernels::frame_write(batch.num_edges(), dh.shape().1);
        crate::kernels::frame_write(batch.num_edges(), eh.shape().1);
        let e_out = self.c.forward(&e_in).add(&gsddmm_u_add_v(batch, &eh, &dh));
        // The updated edge features are stored back into the edata frame.
        crate::kernels::frame_write(batch.num_edges(), e_out.shape().1);
        let gates = e_out.sigmoid();
        // Aggregate gated messages and gate normalizer with fused kernels.
        let num = gspmm_mul_sum(batch, &bh, &gates);
        let gate_sums = gates_sum(batch, &gates);
        let h = ah.add(&num.div(&gate_sums.add_scalar(1e-6)));
        // Thread updated edge features to the next layer (extra persistent
        // activation memory — the paper's DGL GatedGCN memory signature).
        *batch.edge_state.borrow_mut() = Some(e_out);
        h
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.a.out_dim()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        [&self.a, &self.b, &self.c, &self.d, &self.e]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

/// Per-destination sum of gate activations (`copy_e`/`sum` in DGL terms):
/// scatter the `[E, F]` gates into `[N, F]`.
fn gates_sum(batch: &HeteroBatch, gates: &Tensor) -> Tensor {
    gnn_device::host(costs::OP_DISPATCH);
    gates.segment_sum(&batch.dst, batch.num_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn forward_shape_and_edge_state_created() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GatedGcnConv::new(2, 4, &mut rng);
        b.begin_forward();
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 4));
        let state = b.edge_state.borrow();
        let e = state.as_ref().expect("edge state must be materialized");
        assert_eq!(e.shape(), (3, 4));
    }

    #[test]
    fn edge_state_threads_between_layers() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let l1 = GatedGcnConv::new(2, 4, &mut rng);
        let l2 = GatedGcnConv::new(4, 4, &mut rng);
        b.begin_forward();
        let h1 = l1.forward(&b, &b.x, true);
        let e1 = b.edge_state.borrow().as_ref().unwrap().data().clone();
        let _h2 = l2.forward(&b, &h1, true);
        let e2 = b.edge_state.borrow().as_ref().unwrap().data().clone();
        assert_ne!(e1.data(), e2.data(), "layer 2 must update the edge state");
    }

    #[test]
    fn all_six_linears_receive_gradients() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GatedGcnConv::new(2, 3, &mut rng);
        b.begin_forward();
        conv.forward(&b, &b.x, true).sum_all().backward();
        for (i, p) in conv.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
        assert_eq!(conv.params().len(), 10, "five linears with bias");
    }

    #[test]
    fn allocates_more_than_rustyg_gated() {
        // The paper's memory signature: explicit [E, F] edge tensors per
        // layer make DGL's GatedGCN footprint much larger.
        let dims = 16;
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        let feats = NdArray::zeros(3, dims);

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let b = HeteroBatch::from_parts(&g, feats.clone(), vec![0; 3], 1, vec![0]);
        let mut rng = StdRng::seed_from_u64(3);
        let conv = GatedGcnConv::new(dims, dims, &mut rng);
        b.begin_forward();
        conv.forward(&b, &b.x, true);
        let dgl_mem = gnn_device::session::finish(h).peak_memory;

        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        let pb = rustyg::Batch::from_parts(&g, feats, vec![0; 3], 1, vec![0]);
        let mut rng = StdRng::seed_from_u64(3);
        let pconv = rustyg::GatedGcnConv::new(dims, dims, &mut rng);
        pconv.forward(&pb, &pb.x, true);
        let pyg_mem = gnn_device::session::finish(h).peak_memory;

        assert!(dgl_mem > pyg_mem, "{dgl_mem} !> {pyg_mem}");
    }
}
