//! The six conv layers of the study, DGL style.
//!
//! Every layer lowers message passing onto the fused [`crate::kernels`]
//! (GSpMM/GSDDMM/edge-softmax), pays the heavier DGL dispatch overhead
//! [`crate::costs::LAYER_OVERHEAD`] per forward, and exposes
//! `forward(&HeteroBatch, &Tensor, training) -> Tensor` plus `params()`.
//!
//! Architectural differences from the `rustyg` counterparts — all taken
//! from the paper's Section IV-C observations:
//!
//! - [`GraphConv`] normalizes node features **before and after** the fused
//!   aggregation ("the node features are normalized before and after
//!   updating by the key operations").
//! - [`GatConv`] spends extra operations computing attention ("computing
//!   attention parameters for GAT in DGL takes more time than PyG"),
//!   although its fused aggregation kernel itself is cheaper.
//! - [`GatedGcnConv`] maintains and updates an explicit `[E, F]`
//!   edge-feature tensor through a fully connected layer every layer.

mod gat;
mod gated;
mod gcn;
mod gin;
mod monet;
mod sage;

pub use gat::GatConv;
pub use gated::GatedGcnConv;
pub use gcn::GraphConv;
pub use gin::GinConv;
pub use monet::MoNetConv;
pub use sage::SageConv;
