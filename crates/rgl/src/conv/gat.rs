//! GATConv, DGL style.

use gnn_device::{record, Kernel};
use gnn_tensor::nn::{init, Linear};
use gnn_tensor::Tensor;
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::{edge_softmax, gsddmm_u_add_v, gspmm_mul_sum};

/// Multi-head graph attention, DGL lowering: per-node attention halves,
/// a GSDDMM `u_add_v` to form per-edge scores, DGL's `edge_softmax`, and one
/// fused GSpMM for the weighted aggregation.
///
/// Mirrors the paper's two GAT findings: the fused aggregation ("key
/// operation") is *cheaper* than PyG's gather/scatter pair, but the
/// attention-parameter computation costs *more* — DGL materializes the
/// head-shaped `[N, H, D]` view (an explicit reshape copy here) and runs
/// the score construction through dispatched GSDDMM calls.
#[derive(Debug)]
pub struct GatConv {
    lin: Linear,
    attn_l: Tensor,
    attn_r: Tensor,
    heads: usize,
    out_per_head: usize,
}

impl GatConv {
    /// Creates the layer; output dimension is `out_per_head * heads`.
    ///
    /// # Panics
    ///
    /// Panics if `heads == 0`.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_per_head: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(heads > 0, "GAT needs at least one head");
        let width = out_per_head * heads;
        let limit = (6.0 / (width + heads) as f32).sqrt();
        GatConv {
            lin: Linear::new_no_bias(in_dim, width, rng),
            attn_l: Tensor::param(init::uniform(1, width, limit, rng)),
            attn_r: Tensor::param(init::uniform(1, width, limit, rng)),
            heads,
            out_per_head,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        let z = self.lin.forward(x);
        // DGL materializes the [N, H, D] head view — an explicit copy.
        record(Kernel::elementwise("head_view_copy", z.data().len(), 0, 2));
        gnn_device::host(costs::OP_DISPATCH);
        let al = z.head_dot(&self.attn_l, self.heads); // attending (dst) half
        let ar = z.head_dot(&self.attn_r, self.heads); // attended (src) half
                                                       // Per-edge scores via fused u_add_v, then leaky relu + edge softmax.
        let scores = gsddmm_u_add_v(batch, &ar, &al).leaky_relu(0.2);
        let alpha = edge_softmax(batch, &scores);
        gspmm_mul_sum(batch, &z, &alpha)
    }

    /// Output feature dimension (`out_per_head * heads`).
    pub fn out_dim(&self) -> usize {
        self.out_per_head * self.heads
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.lin.params();
        p.push(self.attn_l.clone());
        p.push(self.attn_r.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use gnn_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1), (1, 0)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn output_width_and_convexity() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GatConv::new(2, 3, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 6));
        // Node 1 output must lie between neighbours' z rows coordinatewise.
        let z = conv.lin.forward(&b.x);
        let zd = z.data();
        for c in 0..6 {
            let lo = zd.at(0, c).min(zd.at(2, c)) - 1e-5;
            let hi = zd.at(0, c).max(zd.at(2, c)) + 1e-5;
            assert!((lo..=hi).contains(&out.data().at(1, c)));
        }
    }

    #[test]
    fn attention_grads_flow() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GatConv::new(2, 3, 4, &mut rng);
        conv.forward(&b, &b.x, true).sum_all().backward();
        assert!(conv.attn_l.grad().is_some());
        assert!(conv.attn_r.grad().is_some());
    }

    #[test]
    fn aggregation_is_fused_but_attention_costs_extra() {
        // Paper Section IV-C: DGL GAT's key op (aggregation) is cheaper than
        // PyG's, but attention computation is more expensive. Structurally:
        // exactly one SpMM for aggregation, plus SDDMM + softmax + reshape
        // copies on the attention path.
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GatConv::new(2, 3, 2, &mut rng);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        conv.forward(&b, &b.x, true);
        let report = gnn_device::session::finish(h);
        let count = |k: gnn_device::KernelKind| {
            report
                .kind_counts
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(count(gnn_device::KernelKind::SpMM), 1);
        assert_eq!(count(gnn_device::KernelKind::SDDMM), 1);
        assert_eq!(count(gnn_device::KernelKind::Softmax), 1);
        assert_eq!(count(gnn_device::KernelKind::Scatter), 0);
    }
}
