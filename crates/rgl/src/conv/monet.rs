//! GMMConv (MoNet), DGL style.

use gnn_tensor::nn::{init, Linear};
use gnn_tensor::{NdArray, Tensor};
use rand::Rng;

use crate::batch::HeteroBatch;
use crate::costs;
use crate::kernels::gspmm_mul_sum;

/// Gaussian Mixture Model convolution with degree pseudo-coordinates, DGL
/// lowering: the per-edge Gaussian weights are built with dispatched edge
/// ops and each kernel's weighted aggregation runs through a fused GSpMM.
#[derive(Debug)]
pub struct MoNetConv {
    pseudo_proj: Linear,
    mu: Vec<Tensor>,
    inv_sigma: Vec<Tensor>,
    fc: Vec<Linear>,
    pseudo_dim: usize,
}

impl MoNetConv {
    /// Creates the layer with `kernels` Gaussians over a `pseudo_dim`-d
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `kernels == 0` or `pseudo_dim == 0`.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        kernels: usize,
        pseudo_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            kernels > 0 && pseudo_dim > 0,
            "MoNet needs kernels and pseudo dims"
        );
        MoNetConv {
            pseudo_proj: Linear::new(2, pseudo_dim, rng),
            mu: (0..kernels)
                .map(|_| Tensor::param(init::uniform(1, pseudo_dim, 1.0, rng)))
                .collect(),
            inv_sigma: (0..kernels)
                .map(|_| Tensor::param(NdArray::full(1, pseudo_dim, 1.0)))
                .collect(),
            fc: (0..kernels)
                .map(|_| Linear::new_no_bias(in_dim, out_dim, rng))
                .collect(),
            pseudo_dim,
        }
    }

    /// Applies the layer.
    pub fn forward(&self, batch: &HeteroBatch, x: &Tensor, _training: bool) -> Tensor {
        gnn_device::host(costs::LAYER_OVERHEAD);
        // Pseudo-coordinates assembled per edge (dispatched edge op in DGL).
        gnn_device::host(costs::OP_DISPATCH);
        let u_dst = batch.inv_sqrt_deg.gather_rows(&batch.dst);
        let u_src = batch.inv_sqrt_deg.gather_rows(&batch.src);
        let pseudo = self
            .pseudo_proj
            .forward(&u_dst.concat_cols(&u_src))
            .tanh_act();

        let mut out: Option<Tensor> = None;
        for k in 0..self.fc.len() {
            let diff = pseudo.add_bias(&self.mu[k].scale(-1.0));
            let scaled = diff
                .mul(&diff)
                .mul_row(&self.inv_sigma[k].mul(&self.inv_sigma[k]));
            let w = scaled.sum_cols().scale(-0.5).exp(); // [E, 1]
            let agg = gspmm_mul_sum(batch, &self.fc[k].forward(x), &w);
            out = Some(match out {
                Some(acc) => acc.add(&agg),
                None => agg,
            });
        }
        out.expect("at least one kernel")
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.fc[0].out_dim()
    }

    /// Pseudo-coordinate dimensionality.
    pub fn pseudo_dim(&self) -> usize {
        self.pseudo_dim
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.pseudo_proj.params();
        for k in 0..self.fc.len() {
            p.push(self.mu[k].clone());
            p.push(self.inv_sigma[k].clone());
            p.extend(self.fc[k].params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_batch() -> HeteroBatch {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        HeteroBatch::from_parts(
            &g,
            NdArray::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]),
            vec![0; 3],
            1,
            vec![0],
        )
    }

    #[test]
    fn shape_and_all_params_trained() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = MoNetConv::new(2, 4, 2, 2, &mut rng);
        let out = conv.forward(&b, &b.x, true);
        assert_eq!(out.shape(), (3, 4));
        out.sum_all().backward();
        for (i, p) in conv.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn aggregations_use_fused_spmm_per_kernel() {
        let b = toy_batch();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = MoNetConv::new(2, 4, 2, 2, &mut rng);
        let h = gnn_device::session::install(gnn_device::Session::new(
            gnn_device::CostModel::rtx2080ti(),
        ));
        conv.forward(&b, &b.x, true);
        let report = gnn_device::session::finish(h);
        let spmm = report
            .kind_counts
            .iter()
            .find(|(k, _)| *k == gnn_device::KernelKind::SpMM)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(spmm, 2, "one fused GSpMM per Gaussian kernel");
    }
}
