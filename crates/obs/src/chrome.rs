//! Chrome trace-event JSON export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Each session
//! generation becomes a *process* (its simulated clock restarts at zero, so
//! separate pids keep timelines from overlapping); each track becomes a
//! named *thread* within it. Spans map to `B`/`E` pairs, kernels to `X`
//! complete slices, counters to `C`, markers to `i`. Timestamps are
//! simulated microseconds; every slice carries the host wall-clock stamp in
//! its `args.wall_s` so both clocks survive the export.

use crate::json::Value;
use crate::recorder::{EventKind, TraceEvent};

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut doc: Vec<Value> = Vec::new();
    // Stable track → tid mapping per generation, in first-seen order, with
    // metadata events naming each process and thread.
    let mut tracks: Vec<(u32, String)> = Vec::new();
    for event in events {
        let key = (event.generation, event.track.clone());
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    for (generation, track) in &tracks {
        let tid = tid_for(&tracks, *generation, track);
        if tid == 0 {
            doc.push(meta_event(
                "process_name",
                *generation,
                tid,
                &format!("session {generation}"),
            ));
        }
        doc.push(meta_event("thread_name", *generation, tid, track));
    }
    for event in events {
        let tid = tid_for(&tracks, event.generation, &event.track);
        let mut members: Vec<(String, Value)> = vec![
            ("pid".into(), Value::from(event.generation)),
            ("tid".into(), Value::from(tid)),
            ("ts".into(), Value::Num(event.sim * 1e6)),
        ];
        let wall = ("wall_s".to_owned(), Value::Num(event.wall));
        match &event.kind {
            EventKind::Begin { name } => {
                members.push(("ph".into(), Value::from("B")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("args".into(), Value::Obj(vec![wall])));
            }
            EventKind::End => {
                members.push(("ph".into(), Value::from("E")));
            }
            EventKind::Complete { name, dur, args } => {
                members.push(("ph".into(), Value::from("X")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("dur".into(), Value::Num(dur * 1e6)));
                let mut all = vec![wall];
                all.extend(args.iter().cloned());
                members.push(("args".into(), Value::Obj(all)));
            }
            EventKind::Instant { name, args } => {
                members.push(("ph".into(), Value::from("i")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("s".into(), Value::from("t")));
                let mut all = vec![wall];
                all.extend(args.iter().cloned());
                members.push(("args".into(), Value::Obj(all)));
            }
            EventKind::Counter { name, value } => {
                members.push(("ph".into(), Value::from("C")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push((
                    "args".into(),
                    Value::Obj(vec![(name.clone(), Value::Num(*value))]),
                ));
            }
        }
        doc.push(Value::Obj(members));
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(doc)),
        ("displayTimeUnit".into(), Value::from("ms")),
    ])
    .to_json()
}

fn tid_for(tracks: &[(u32, String)], generation: u32, track: &str) -> u32 {
    tracks
        .iter()
        .filter(|(g, _)| *g == generation)
        .position(|(_, t)| t == track)
        .expect("track registered above") as u32
}

fn meta_event(name: &str, pid: u32, tid: u32, value: &str) -> Value {
    Value::Obj(vec![
        ("ph".into(), Value::from("M")),
        ("pid".into(), Value::from(pid)),
        ("tid".into(), Value::from(tid)),
        ("name".into(), Value::from(name)),
        (
            "args".into(),
            Value::Obj(vec![("name".to_owned(), Value::from(value))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{finish, install, span_begin, span_end, Collector};

    #[test]
    fn exports_valid_json_with_balanced_spans() {
        let h = install(Collector::new());
        crate::recorder::session_started();
        span_begin("phase", "forward", 0.0);
        crate::recorder::complete(
            "kernels",
            "gemm",
            0.01,
            0.02,
            vec![("kind".into(), Value::from("gemm"))],
        );
        span_end("phase", 0.05);
        crate::recorder::counter("memory", "device_bytes", 4096.0, 0.05);
        let trace = finish(h);
        let text = trace.to_chrome_json();
        let doc = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(
            phases.iter().filter(|p| **p == "B").count(),
            phases.iter().filter(|p| **p == "E").count(),
            "B/E events must balance"
        );
        assert!(phases.contains(&"X") && phases.contains(&"C") && phases.contains(&"M"));
        // The gemm slice: sim µs timestamps and a wall-clock arg.
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").and_then(Value::as_f64), Some(1e4));
        assert_eq!(x.get("dur").and_then(Value::as_f64), Some(2e4));
        assert!(x
            .get("args")
            .and_then(|a| a.get("wall_s"))
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("kind"))
                .and_then(Value::as_str),
            Some("gemm")
        );
    }

    #[test]
    fn separate_generations_get_separate_pids() {
        let h = install(Collector::new());
        crate::recorder::session_started();
        span_begin("phase", "a", 0.0);
        span_end("phase", 1.0);
        crate::recorder::session_started();
        span_begin("phase", "b", 0.0);
        span_end("phase", 1.0);
        let trace = finish(h);
        let doc = json::parse(&trace.to_chrome_json()).unwrap();
        let pids: std::collections::BTreeSet<u64> = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        assert_eq!(pids.len(), 2, "each session needs its own pid: {pids:?}");
    }
}
