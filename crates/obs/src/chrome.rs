//! Chrome trace-event JSON export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Each session
//! generation becomes a *process* (its simulated clock restarts at zero, so
//! separate pids keep timelines from overlapping); each track becomes a
//! named *thread* within it. Spans map to `B`/`E` pairs, kernels to `X`
//! complete slices, counters to `C`, markers to `i`. Timestamps are
//! simulated microseconds; every slice carries the host wall-clock stamp in
//! its `args.wall_s` so both clocks survive the export.

use crate::json::Value;
use crate::recorder::{EventKind, TraceEvent};

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut doc: Vec<Value> = Vec::new();
    // Stable track → tid mapping per generation, in first-seen order, with
    // metadata events naming each process and thread.
    let mut tracks: Vec<(u32, String)> = Vec::new();
    for event in events {
        let key = (event.generation, event.track.clone());
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    for (generation, track) in &tracks {
        let tid = tid_for(&tracks, *generation, track);
        if tid == 0 {
            doc.push(meta_event(
                "process_name",
                *generation,
                tid,
                &format!("session {generation}"),
            ));
        }
        doc.push(meta_event("thread_name", *generation, tid, track));
    }
    for event in events {
        let tid = tid_for(&tracks, event.generation, &event.track);
        let mut members: Vec<(String, Value)> = vec![
            ("pid".into(), Value::from(event.generation)),
            ("tid".into(), Value::from(tid)),
            ("ts".into(), Value::Num(event.sim * 1e6)),
        ];
        let wall = ("wall_s".to_owned(), Value::Num(event.wall));
        match &event.kind {
            EventKind::Begin { name } => {
                members.push(("ph".into(), Value::from("B")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("args".into(), Value::Obj(vec![wall])));
            }
            EventKind::End => {
                members.push(("ph".into(), Value::from("E")));
            }
            EventKind::Complete { name, dur, args } => {
                members.push(("ph".into(), Value::from("X")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("dur".into(), Value::Num(dur * 1e6)));
                let mut all = vec![wall];
                all.extend(args.iter().cloned());
                members.push(("args".into(), Value::Obj(all)));
            }
            EventKind::Instant { name, args } => {
                members.push(("ph".into(), Value::from("i")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push(("s".into(), Value::from("t")));
                let mut all = vec![wall];
                all.extend(args.iter().cloned());
                members.push(("args".into(), Value::Obj(all)));
            }
            EventKind::Counter { name, value } => {
                members.push(("ph".into(), Value::from("C")));
                members.push(("name".into(), Value::from(name.as_str())));
                members.push((
                    "args".into(),
                    Value::Obj(vec![(name.clone(), Value::Num(*value))]),
                ));
            }
        }
        doc.push(Value::Obj(members));
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(doc)),
        ("displayTimeUnit".into(), Value::from("ms")),
    ])
    .to_json()
}

fn tid_for(tracks: &[(u32, String)], generation: u32, track: &str) -> u32 {
    tracks
        .iter()
        .filter(|(g, _)| *g == generation)
        .position(|(_, t)| t == track)
        .expect("track registered above") as u32
}

/// Parses a Chrome trace-event JSON document produced by
/// [`chrome_trace_json`] back into the event stream.
///
/// Inverse up to timestamp precision: track names are recovered from the
/// `thread_name` metadata, generations from pids, wall-clock stamps from
/// `args.wall_s`, and every custom arg survives the round trip verbatim
/// (`args` re-enter in document order minus the injected `wall_s`).
/// Timestamps go through the µs scaling and back, so they match to float
/// rounding rather than bit-for-bit.
///
/// # Errors
///
/// Returns a diagnostic when the document is not valid JSON, is missing
/// `traceEvents`, references a thread with no `thread_name` metadata, or
/// contains an event of unknown phase.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    // First pass: thread_name metadata maps (pid, tid) back to tracks.
    let mut threads: Vec<((u64, u64), String)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("name").and_then(Value::as_str) == Some("thread_name")
        {
            let pid = e.get("pid").and_then(Value::as_u64).ok_or("meta pid")?;
            let tid = e.get("tid").and_then(Value::as_u64).ok_or("meta tid")?;
            let track = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .ok_or("thread_name without args.name")?;
            threads.push(((pid, tid), track.to_owned()));
        }
    }
    let mut out = Vec::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        if ph == "M" {
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_u64).ok_or("event pid")?;
        let tid = e.get("tid").and_then(Value::as_u64).ok_or("event tid")?;
        let track = threads
            .iter()
            .find(|(k, _)| *k == (pid, tid))
            .map(|(_, t)| t.clone())
            .ok_or_else(|| format!("no thread_name metadata for pid {pid} tid {tid}"))?;
        let sim = e.get("ts").and_then(Value::as_f64).ok_or("event ts")? / 1e6;
        let wall = e
            .get("args")
            .and_then(|a| a.get("wall_s"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let name = || {
            e.get("name")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or("event without name")
        };
        let custom_args = || -> Vec<(String, Value)> {
            e.get("args")
                .and_then(Value::as_obj)
                .map(|members| {
                    members
                        .iter()
                        .filter(|(k, _)| k != "wall_s")
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        let kind = match ph {
            "B" => EventKind::Begin { name: name()? },
            "E" => EventKind::End,
            "X" => EventKind::Complete {
                name: name()?,
                dur: e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or("X without dur")?
                    / 1e6,
                args: custom_args(),
            },
            "i" => EventKind::Instant {
                name: name()?,
                args: custom_args(),
            },
            "C" => {
                let name = name()?;
                let value = e
                    .get("args")
                    .and_then(|a| a.get(&name))
                    .and_then(Value::as_f64)
                    .ok_or("C without value")?;
                EventKind::Counter { name, value }
            }
            other => return Err(format!("unknown event phase {other}")),
        };
        out.push(TraceEvent {
            track,
            kind,
            sim,
            wall,
            generation: pid as u32,
        });
    }
    Ok(out)
}

fn meta_event(name: &str, pid: u32, tid: u32, value: &str) -> Value {
    Value::Obj(vec![
        ("ph".into(), Value::from("M")),
        ("pid".into(), Value::from(pid)),
        ("tid".into(), Value::from(tid)),
        ("name".into(), Value::from(name)),
        (
            "args".into(),
            Value::Obj(vec![("name".to_owned(), Value::from(value))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{finish, install, span_begin, span_end, Collector};

    #[test]
    fn exports_valid_json_with_balanced_spans() {
        let h = install(Collector::new());
        crate::recorder::session_started();
        span_begin("phase", "forward", 0.0);
        crate::recorder::complete(
            "kernels",
            "gemm",
            0.01,
            0.02,
            vec![("kind".into(), Value::from("gemm"))],
        );
        span_end("phase", 0.05);
        crate::recorder::counter("memory", "device_bytes", 4096.0, 0.05);
        let trace = finish(h);
        let text = trace.to_chrome_json();
        let doc = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(
            phases.iter().filter(|p| **p == "B").count(),
            phases.iter().filter(|p| **p == "E").count(),
            "B/E events must balance"
        );
        assert!(phases.contains(&"X") && phases.contains(&"C") && phases.contains(&"M"));
        // The gemm slice: sim µs timestamps and a wall-clock arg.
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").and_then(Value::as_f64), Some(1e4));
        assert_eq!(x.get("dur").and_then(Value::as_f64), Some(2e4));
        assert!(x
            .get("args")
            .and_then(|a| a.get("wall_s"))
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("kind"))
                .and_then(Value::as_str),
            Some("gemm")
        );
    }

    #[test]
    fn round_trip_preserves_counter_args() {
        let h = install(Collector::new());
        crate::recorder::session_started();
        span_begin("phase", "forward", 0.5);
        crate::recorder::complete(
            "kernels",
            "gemm",
            0.5,
            0.25,
            vec![
                ("kind".into(), Value::from("gemm")),
                ("flops".into(), Value::from(123456u64)),
                ("bytes".into(), Value::from(7890u64)),
                ("ai".into(), Value::Num(15.647)),
                ("roofline".into(), Value::Num(0.55)),
                ("bound".into(), Value::from("compute")),
            ],
        );
        crate::recorder::instant(
            "train",
            "epoch",
            0.75,
            vec![("n".into(), Value::from(3u32))],
        );
        crate::recorder::counter("memory", "device_bytes", 4096.0, 1.0);
        span_end("phase", 1.0);
        let trace = finish(h);
        let parsed = parse_chrome_trace(&trace.to_chrome_json()).expect("round trip");
        assert_eq!(parsed.len(), trace.events.len());
        for (orig, back) in trace.events.iter().zip(&parsed) {
            assert_eq!(orig.track, back.track);
            assert_eq!(orig.generation, back.generation);
            assert!((orig.sim - back.sim).abs() < 1e-9, "sim drifted");
            // End/Counter events carry no wall_s in the export; every
            // other kind's wall stamp survives.
            if !matches!(orig.kind, EventKind::End | EventKind::Counter { .. }) {
                assert!((orig.wall - back.wall).abs() < 1e-12, "wall lost");
            }
            // Kinds — including every custom arg — survive verbatim.
            match (&orig.kind, &back.kind) {
                (
                    EventKind::Complete {
                        name: a,
                        dur: da,
                        args: aa,
                    },
                    EventKind::Complete {
                        name: b,
                        dur: db,
                        args: ab,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert!((da - db).abs() < 1e-9);
                    assert_eq!(aa, ab, "counter args must survive the round trip");
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        // An event referencing a thread with no metadata.
        let doc = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":9,"ts":0,"name":"x"}]}"#;
        assert!(parse_chrome_trace(doc).unwrap_err().contains("thread_name"));
    }

    #[test]
    fn separate_generations_get_separate_pids() {
        let h = install(Collector::new());
        crate::recorder::session_started();
        span_begin("phase", "a", 0.0);
        span_end("phase", 1.0);
        crate::recorder::session_started();
        span_begin("phase", "b", 0.0);
        span_end("phase", 1.0);
        let trace = finish(h);
        let doc = json::parse(&trace.to_chrome_json()).unwrap();
        let pids: std::collections::BTreeSet<u64> = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        assert_eq!(pids.len(), 2, "each session needs its own pid: {pids:?}");
    }
}
