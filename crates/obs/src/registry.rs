//! Typed metrics registry: counters, gauges, and log-scale histograms.
//!
//! Replaces the ad-hoc summary math scattered through train/serve with one
//! deterministic vocabulary. Three metric shapes:
//!
//! - [`Counter`] — a monotone `u64` (kernel launches, requests served).
//!   Also supports snapshot-diffing against an external monotone total via
//!   [`Counter::advance_to`], which is how per-epoch deltas are carved out
//!   of a session's running totals.
//! - [`Gauge`] — a sampled `f64` (utilization, loss), with the same
//!   [`Gauge::advance_to`] diffing for monotone time totals.
//! - [`Histogram`] — a latency distribution. Every observation is retained
//!   exactly, so quantiles are *nearest-rank on the sorted sample* —
//!   bit-identical to sorting the raw values yourself — while a log-scale
//!   bucketing (4 buckets per decade) summarizes the shape for display
//!   without losing the tail.
//!
//! A [`MetricsRegistry`] names metrics in first-seen order, keeping every
//! rendering deterministic.

/// A monotone integer counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Advances the counter to an externally tracked monotone `total`,
    /// returning the delta since the previous observation. Saturates at
    /// zero if `total` regressed (e.g. a fresh session reset its totals).
    pub fn advance_to(&mut self, total: u64) -> u64 {
        let delta = total.saturating_sub(self.value);
        self.value = total;
        delta
    }
}

/// A sampled floating-point gauge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Advances the gauge to a monotone `total`, returning the delta since
    /// the previous observation (clamped at zero).
    pub fn advance_to(&mut self, total: f64) -> f64 {
        let delta = (total - self.value).max(0.0);
        self.value = total;
        delta
    }
}

/// Buckets per decade of the histogram's log scale.
const BUCKETS_PER_DECADE: f64 = 4.0;

/// A latency histogram with exact quantiles and log-scale display buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds a histogram from a sample.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorted = true;
        }
    }

    /// Nearest-rank quantile: the smallest observation such that at least
    /// `p` percent of the sample is ≤ it. Identical to indexing the sorted
    /// sample directly — no interpolation — so results are bit-exact and
    /// deterministic. Returns 0 for an empty histogram.
    pub fn quantile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.sort();
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        self.values[rank.clamp(1, self.values.len()) - 1]
    }

    /// Fraction of observations ≤ `threshold` (1.0 for an empty sample):
    /// SLO attainment when observations are latencies.
    pub fn fraction_le(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.values.iter().filter(|v| **v <= threshold).count() as f64 / self.values.len() as f64
    }

    /// Non-empty log-scale buckets as `(lo, hi, count)`, 4 per decade.
    /// Non-positive observations land in a single underflow bucket
    /// `(0, 0, n)`.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut counts: Vec<(i64, u64)> = Vec::new();
        let mut underflow = 0u64;
        for v in &self.values {
            if *v <= 0.0 {
                underflow += 1;
                continue;
            }
            let idx = (v.log10() * BUCKETS_PER_DECADE).floor() as i64;
            match counts.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, n)) => *n += 1,
                None => counts.push((idx, 1)),
            }
        }
        counts.sort_by_key(|(i, _)| *i);
        let mut out = Vec::new();
        if underflow > 0 {
            out.push((0.0, 0.0, underflow));
        }
        for (idx, n) in counts {
            let lo = 10f64.powf(idx as f64 / BUCKETS_PER_DECADE);
            let hi = 10f64.powf((idx + 1) as f64 / BUCKETS_PER_DECADE);
            out.push((lo, hi, n));
        }
        out
    }
}

/// A named collection of metrics, in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return &mut self.counters[i].1;
        }
        self.counters.push((name.to_owned(), Counter::new()));
        &mut self.counters.last_mut().unwrap().1
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return &mut self.gauges[i].1;
        }
        self.gauges.push((name.to_owned(), Gauge::new()));
        &mut self.gauges.last_mut().unwrap().1
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return &mut self.histograms[i].1;
        }
        self.histograms.push((name.to_owned(), Histogram::new()));
        &mut self.histograms.last_mut().unwrap().1
    }

    /// All counters in first-seen order.
    pub fn counters(&self) -> &[(String, Counter)] {
        &self.counters
    }

    /// All gauges in first-seen order.
    pub fn gauges(&self) -> &[(String, Gauge)] {
        &self.gauges
    }

    /// All histograms in first-seen order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Renders a deterministic text summary of every metric.
    pub fn render(&mut self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            out.push_str(&format!("counter   {name} = {}\n", c.get()));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {:.6}\n", g.get()));
        }
        let names: Vec<String> = self.histograms.iter().map(|(n, _)| n.clone()).collect();
        for name in names {
            let h = self.histogram(&name);
            let (p50, p95, p99) = (h.quantile(50.0), h.quantile(95.0), h.quantile(99.0));
            out.push_str(&format!(
                "histogram {name}: n={} mean={:.6} p50={p50:.6} p95={p95:.6} p99={p99:.6}\n",
                h.count(),
                h.mean(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_diffs() {
        let mut c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        assert_eq!(c.advance_to(10), 3);
        assert_eq!(c.advance_to(10), 0);
        // Regressed total (fresh session): clamps, re-anchors.
        assert_eq!(c.advance_to(2), 0);
        assert_eq!(c.advance_to(5), 3);
    }

    #[test]
    fn gauge_diffs_monotone_totals() {
        let mut g = Gauge::new();
        assert_eq!(g.advance_to(1.5), 1.5);
        assert_eq!(g.advance_to(4.0), 2.5);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn quantiles_match_exact_sorted_quantiles() {
        // The satellite guarantee: nearest-rank on the retained sample is
        // identical to indexing the sorted inputs.
        let sample = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0];
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut h = Histogram::from_values(sample.iter().copied());
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            assert_eq!(h.quantile(p), exact, "p{p}");
        }
        assert_eq!(h.quantile(50.0), 5.0);
        assert_eq!(h.quantile(100.0), 10.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(99.0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_le(1.0), 1.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn log_buckets_cover_all_observations() {
        let mut h = Histogram::new();
        for v in [0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 0.0002, 0.00025] {
            h.record(v);
        }
        let buckets = h.buckets();
        let total: u64 = buckets.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total as usize, h.count());
        // Boundaries are monotone and each value lies in [lo, hi).
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12);
        }
        // 4 buckets per decade: 0.0001 and 0.00025 land in different buckets.
        assert!(buckets.len() >= 6, "got {buckets:?}");
    }

    #[test]
    fn underflow_bucket_captures_nonpositive() {
        let h = Histogram::from_values([0.0, -1.0, 0.5]);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0.0, 0.0, 2));
    }

    #[test]
    fn fraction_le_is_slo_attainment() {
        let h = Histogram::from_values([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.fraction_le(2.5), 0.5);
        assert_eq!(h.fraction_le(0.5), 0.0);
        assert_eq!(h.fraction_le(4.0), 1.0);
    }

    #[test]
    fn single_sample_histogram_is_that_sample_everywhere() {
        let mut h = Histogram::from_values([0.0042]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.0042);
        assert_eq!(h.min(), 0.0042);
        assert_eq!(h.max(), 0.0042);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.quantile(p), 0.0042, "p{p}");
        }
        assert_eq!(h.fraction_le(0.0042), 1.0);
        assert_eq!(h.fraction_le(0.0041), 0.0);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].2, 1);
        assert!(buckets[0].0 <= 0.0042 && 0.0042 < buckets[0].1);
    }

    #[test]
    fn quantile_is_exact_at_rank_boundaries() {
        // Ten distinct values: every multiple of 10% sits exactly on a
        // nearest-rank boundary, so p=10k must return the k-th smallest
        // while p=10k+ε must step to the (k+1)-th. No interpolation ever.
        let mut h = Histogram::from_values((1..=10).map(|i| i as f64));
        for k in 1..=10usize {
            let p = 10.0 * k as f64;
            assert_eq!(h.quantile(p), k as f64, "p{p} is the rank-{k} value");
            if k < 10 {
                let eps = 1e-9;
                assert_eq!(h.quantile(p + eps), (k + 1) as f64, "p{p}+eps steps");
            }
        }
        // p=0 clamps to the minimum rather than indexing below the sample.
        assert_eq!(h.quantile(0.0), 1.0);
        // Duplicated boundary values: the plateau absorbs nearby ranks.
        let mut dup = Histogram::from_values([1.0, 2.0, 2.0, 2.0, 3.0]);
        assert_eq!(dup.quantile(20.0), 1.0);
        assert_eq!(dup.quantile(40.0), 2.0);
        assert_eq!(dup.quantile(80.0), 2.0);
        assert_eq!(dup.quantile(81.0), 3.0);
    }

    /// The oracle the histogram's docs promise: sort the raw sample and
    /// index it at the nearest rank.
    fn sorted_sample_oracle(sample: &[f64], p: f64) -> f64 {
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 64,
            ..proptest::ProptestConfig::default()
        })]

        /// Seeded property: for arbitrary finite samples (including
        /// duplicates and non-positives) and arbitrary percentiles, the
        /// histogram's quantile is bit-identical to the sorted-sample
        /// nearest-rank oracle, and `fraction_le` matches a direct count.
        #[test]
        fn quantiles_match_sorted_sample_oracle(
            sample in proptest::collection::vec(-2.0..50.0f64, 1..40),
            // Tenth-of-a-percent grid covering both endpoints exactly.
            p in proptest::strategy::Strategy::prop_map(0..=1000u32, |t| t as f64 / 10.0),
        ) {
            use proptest::prelude::*;
            let mut h = Histogram::from_values(sample.iter().copied());
            prop_assert_eq!(
                h.quantile(p).to_bits(),
                sorted_sample_oracle(&sample, p).to_bits(),
                "quantile p{} diverged from the oracle on {:?}",
                p,
                sample
            );
            let threshold = sorted_sample_oracle(&sample, p);
            let direct =
                sample.iter().filter(|v| **v <= threshold).count() as f64 / sample.len() as f64;
            prop_assert_eq!(h.fraction_le(threshold).to_bits(), direct.to_bits());
            // Nearest-rank self-consistency: at least p% of the sample is
            // ≤ the reported quantile.
            let q = h.quantile(p);
            prop_assert!(h.fraction_le(q) * 100.0 >= p - 1e-9);
        }
    }

    #[test]
    fn registry_names_are_stable_and_first_seen() {
        let mut r = MetricsRegistry::new();
        r.counter("requests").add(2);
        r.counter("batches").add(1);
        r.counter("requests").add(1);
        r.gauge("util").set(0.5);
        r.histogram("latency").record(0.01);
        assert_eq!(r.counters()[0].0, "requests");
        assert_eq!(r.counters()[0].1.get(), 3);
        assert_eq!(r.counters()[1].0, "batches");
        let text = r.render();
        assert!(text.contains("counter   requests = 3"));
        assert!(text.contains("gauge     util"));
        assert!(text.contains("histogram latency: n=1"));
    }
}
