//! # gnn-obs: structured tracing and run-wide metrics
//!
//! A low-overhead observability layer for the GNN performance study. The
//! rest of the workspace reports what it is doing through the free
//! functions in [`recorder`] ([`span_begin`], [`complete`], [`instant`],
//! [`counter`], [`epoch`], ...); a thread-local [`Collector`] gathers the
//! stream and two exporters turn it into artifacts:
//!
//! - **Chrome trace JSON** ([`chrome`]) — load `trace.json` into
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see training phases,
//!   per-layer scopes, individual kernels, and memory counters on a
//!   timeline.
//! - **JSONL metrics** ([`metrics`]) — `metrics.jsonl` has one record per
//!   training epoch (loss, accuracy, phase breakdown, kernel counts by
//!   kind, peak memory, utilization) for plotting and regression tracking.
//!
//! On top of the stream sit two analysis layers:
//!
//! - **Trace analysis** ([`analysis`]) — reconstructs the critical path of
//!   an epoch or serve run from the recorded events: per-kind device time,
//!   idle, phase spans, hotspots, and serve queue-wait/execute/idle — each
//!   budget summing exactly to its total.
//! - **Metrics registry** ([`registry`]) — typed counters, gauges, and
//!   log-scale latency histograms with exact nearest-rank quantiles,
//!   replacing ad-hoc summary math in train/serve.
//!
//! The Chrome export also parses back ([`parse_chrome_trace`]), so saved
//! traces can be re-analyzed offline with the same code paths.
//!
//! ## Dual timestamps
//!
//! The workspace *simulates* a GPU: kernel durations come from a roofline
//! cost model and elapse on a [`Timeline`] whose clock is independent of
//! the host's. Every event therefore carries **two** timestamps:
//!
//! - `sim` — seconds on the simulated device/host timeline, supplied by
//!   the caller (ultimately from the active `gnn_device::Session`). This
//!   is the clock the study's figures are drawn in, and the one the Chrome
//!   export uses for its time axis.
//! - `wall` — host wall-clock seconds since the collector was installed,
//!   stamped by the collector itself. This measures what the *simulation*
//!   costs to run, and lets the JSONL stream correlate simulated progress
//!   with real elapsed time (e.g. epochs/second of actual compute).
//!
//! The two clocks advance at unrelated rates: a simulated second of GPU
//! work might take microseconds of host time to model. Exports keep both —
//! Chrome slices put `wall_s` in their `args`; metrics records carry
//! `sim_time` and `wall_time` side by side.
//!
//! ## No-op guarantee
//!
//! With no collector installed every reporting function returns without
//! observable effect, and — critically — instrumentation never advances or
//! synchronizes the simulated clocks on its own: simulated timestamps are
//! read with non-mutating accessors, so enabling tracing does not perturb
//! the numbers being measured. The integration suite asserts that a traced
//! run and an untraced run produce identical `Session` phase totals.
//!
//! ## Install pattern
//!
//! Same shape as `gnn_device::session`:
//!
//! ```
//! use gnn_obs::{Collector, install, finish, span_begin, span_end};
//!
//! let handle = install(Collector::new());
//! span_begin("phase", "forward", 0.0);
//! span_end("phase", 0.25);
//! let trace = finish(handle);
//! assert_eq!(trace.events.len(), 2);
//! let json = trace.to_chrome_json(); // feed to chrome://tracing
//! ```
//!
//! [`Timeline`]: https://docs.rs/gnn-device
//! [`span_begin`]: recorder::span_begin
//! [`complete`]: recorder::complete
//! [`instant`]: recorder::instant
//! [`counter`]: recorder::counter
//! [`epoch`]: recorder::epoch
//! [`Collector`]: recorder::Collector

pub mod analysis;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod whatif;

pub use analysis::{analyze, ServeAttribution, SessionAttribution, TraceAnalysis};
pub use chrome::parse_chrome_trace;
pub use json::Value;
pub use metrics::parse_metrics_jsonl;
pub use recorder::{
    complete, counter, epoch, finish, install, instant, is_active, sched_host, sched_launch,
    sched_sync, session_started, span_begin, span_end, Collector, CollectorHandle, EpochRecord,
    EventKind, Trace, TraceEvent,
};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use whatif::{SchedEntry, SchedOp, Speedups};

/// Well-known track names used by the workspace's instrumentation, so the
/// Chrome export groups consistently across crates.
pub mod tracks {
    /// Training-phase spans (data load / forward / backward / update).
    pub const PHASE: &str = "phase";
    /// Individual kernel slices on the simulated device stream.
    pub const KERNELS: &str = "kernels";
    /// Named scopes (per-layer, per-operator).
    pub const SCOPES: &str = "scopes";
    /// Device memory counters.
    pub const MEMORY: &str = "memory";
    /// Training-loop markers (epochs, evaluations).
    pub const TRAIN: &str = "train";
    /// Experiment-runner markers (sweep cells).
    pub const RUNNER: &str = "runner";
    /// Injected-fault markers (`gnn-faults` fire events).
    pub const FAULTS: &str = "faults";
    /// Inference-serving spans and counters (`gnn-serve`: per-request
    /// enqueue→reply spans, per-batch forward slices, queue-depth counters).
    pub const SERVE: &str = "serve";
    /// Fleet-serving markers (`gnn-serve` fleet engine: routing decisions,
    /// sheds, retries, hedges, health ejections/re-admissions, autoscale
    /// events).
    pub const FLEET: &str = "fleet";
    /// Giant-graph sampling markers (`gnn-sample` + sampled loaders:
    /// per-block fan-out instants, feature-cache hit/miss counters,
    /// partition-remote traffic).
    pub const SAMPLE: &str = "sample";
}
