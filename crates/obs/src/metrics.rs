//! JSONL per-epoch metrics export and its inverse.
//!
//! One JSON object per line, one line per epoch. The schema is stable and
//! covered by tests ([`parse_metrics_jsonl`] round-trips the writer's
//! output):
//!
//! ```json
//! {"run":"gcn/rustyg/cora","epoch":0,"loss":1.94,"accuracy":0.31,
//!  "lr":0.01,"sim_time":0.41,"wall_time":0.002,"utilization":0.55,
//!  "flops":52000000,"bytes":31000000,"peak_memory":1048576,
//!  "phase_times":{"data_load":0.1,"forward":0.2},
//!  "kernel_counts":{"gemm":12,"scatter":4}}
//! ```
//!
//! `accuracy` is `null` for tasks that do not evaluate one.

use crate::json::{self, Value};
use crate::recorder::EpochRecord;

/// Renders `records` as JSONL, one object per line (trailing newline when
/// non-empty).
pub fn metrics_jsonl(records: &[EpochRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let doc = Value::Obj(vec![
            ("run".into(), Value::from(r.run.as_str())),
            ("epoch".into(), Value::from(r.epoch)),
            ("loss".into(), Value::Num(r.loss)),
            (
                "accuracy".into(),
                r.accuracy.map(Value::Num).unwrap_or(Value::Null),
            ),
            ("lr".into(), Value::Num(r.lr)),
            ("sim_time".into(), Value::Num(r.sim_time)),
            ("wall_time".into(), Value::Num(r.wall_time)),
            ("utilization".into(), Value::Num(r.utilization)),
            ("flops".into(), Value::from(r.flops)),
            ("bytes".into(), Value::from(r.bytes)),
            ("peak_memory".into(), Value::from(r.peak_memory)),
            (
                "phase_times".into(),
                Value::Obj(
                    r.phase_times
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "kernel_counts".into(),
                Value::Obj(
                    r.kernel_counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&doc.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL metrics stream back into records.
///
/// Strict about the schema the writer produces: every required field must
/// be present with the right type. Blank lines are skipped.
pub fn parse_metrics_jsonl(text: &str) -> Result<Vec<EpochRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("line {}: missing field '{name}'", i + 1))
        };
        let num = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("line {}: field '{name}' is not a number", i + 1))
        };
        let accuracy = match field("accuracy")? {
            Value::Null => None,
            v => Some(
                v.as_f64()
                    .ok_or_else(|| format!("line {}: accuracy is not a number", i + 1))?,
            ),
        };
        let pairs = |name: &str| -> Result<Vec<(String, f64)>, String> {
            field(name)?
                .as_obj()
                .ok_or_else(|| format!("line {}: field '{name}' is not an object", i + 1))?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("line {}: {name}.{k} is not a number", i + 1))
                })
                .collect::<Result<_, _>>()
        };
        records.push(EpochRecord {
            run: field("run")?
                .as_str()
                .ok_or_else(|| format!("line {}: run is not a string", i + 1))?
                .to_owned(),
            epoch: num("epoch")? as u32,
            loss: num("loss")?,
            accuracy,
            lr: num("lr")?,
            phase_times: pairs("phase_times")?,
            kernel_counts: pairs("kernel_counts")?
                .into_iter()
                .map(|(k, v)| (k, v as u64))
                .collect(),
            flops: field("flops")?
                .as_u64()
                .ok_or_else(|| format!("line {}: flops is not an integer", i + 1))?,
            bytes: field("bytes")?
                .as_u64()
                .ok_or_else(|| format!("line {}: bytes is not an integer", i + 1))?,
            peak_memory: field("peak_memory")?
                .as_u64()
                .ok_or_else(|| format!("line {}: peak_memory is not an integer", i + 1))?,
            utilization: num("utilization")?,
            sim_time: num("sim_time")?,
            wall_time: num("wall_time")?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u32, accuracy: Option<f64>) -> EpochRecord {
        EpochRecord {
            run: "gcn/rustyg/cora".into(),
            epoch,
            loss: 1.5 / (epoch + 1) as f64,
            accuracy,
            lr: 0.01,
            phase_times: vec![("forward".into(), 0.25), ("backward".into(), 0.5)],
            kernel_counts: vec![("gemm".into(), 12), ("scatter".into(), 4)],
            flops: 123_456_789,
            bytes: 987_654_321,
            peak_memory: 1 << 20,
            utilization: 0.625,
            sim_time: 0.75 * (epoch + 1) as f64,
            wall_time: 0.001 * (epoch + 1) as f64,
        }
    }

    #[test]
    fn writer_and_parser_round_trip() {
        let records = vec![sample(0, Some(0.8)), sample(1, None)];
        let text = metrics_jsonl(&records);
        assert_eq!(text.lines().count(), 2, "one line per epoch");
        let back = parse_metrics_jsonl(&text).expect("parse own output");
        assert_eq!(back, records);
    }

    #[test]
    fn parser_rejects_missing_fields() {
        let err = parse_metrics_jsonl("{\"run\":\"r\",\"epoch\":0}\n").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn empty_stream_is_empty() {
        assert_eq!(metrics_jsonl(&[]), "");
        assert!(parse_metrics_jsonl("\n\n").unwrap().is_empty());
    }
}
