//! Critical-path extraction and exhaustive time attribution from a trace.
//!
//! The device model executes on a single stream, so a session's critical
//! path *is* its timeline: every simulated second is either a kernel of
//! some kind executing, or the device sitting idle while the host issues
//! launches and does framework work. [`analyze`] reconstructs that budget
//! from the recorded events alone — no live session required — and
//! guarantees the pieces sum **exactly** to the total, because the residual
//! (idle) is computed as `total - accounted` rather than measured
//! independently.
//!
//! Two attribution scopes come out of one trace:
//!
//! - [`SessionAttribution`] — per session generation (one training run /
//!   one serve batch execution): device time split by kernel kind plus
//!   idle, phase spans, and the hottest kernels by accumulated time.
//! - [`ServeAttribution`] — across the serve track: the run's makespan
//!   split into batch-execute time, queue-wait-only time (requests waiting
//!   with no batch running — the batching delay), and idle, from the
//!   queue-wait / execute sub-spans the engine emits per request.

use crate::json::Value;
use crate::recorder::{EventKind, Trace, TraceEvent};

/// Exhaustive time attribution of one session generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAttribution {
    /// The trace generation (Chrome-trace process) this covers.
    pub generation: u32,
    /// Total simulated time spanned by the generation's events.
    pub total: f64,
    /// Device-busy time per kernel kind label, in first-seen order.
    pub kinds: Vec<(String, f64)>,
    /// Device idle time: `total` minus all kind times (exact residual).
    pub idle: f64,
    /// Time per training phase, from the phase track's begin/end spans.
    pub phases: Vec<(String, f64)>,
    /// Kernels ranked by accumulated device time: `(name, time, launches)`.
    pub hotspots: Vec<(String, f64, u64)>,
}

impl SessionAttribution {
    /// The attribution rows — every kind plus idle — summing exactly to
    /// [`SessionAttribution::total`] by construction.
    pub fn rows(&self) -> Vec<(String, f64)> {
        let mut rows = self.kinds.clone();
        rows.push(("idle".to_owned(), self.idle));
        rows
    }
}

/// Exhaustive attribution of a serving run's makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeAttribution {
    /// End of the last serve event on the engine's clock.
    pub makespan: f64,
    /// Time at least one batch was executing.
    pub execute: f64,
    /// Time at least one request was queued while *no* batch executed —
    /// pure batching/backlog delay.
    pub queue_only: f64,
    /// Residual: `makespan - execute - queue_only` (exact).
    pub idle: f64,
    /// Requests observed.
    pub requests: u64,
    /// Batches observed.
    pub batches: u64,
}

impl ServeAttribution {
    /// The attribution rows — execute, queue-wait, idle — summing exactly
    /// to [`ServeAttribution::makespan`] by construction.
    pub fn rows(&self) -> Vec<(String, f64)> {
        vec![
            ("execute".to_owned(), self.execute),
            ("queue_wait".to_owned(), self.queue_only),
            ("idle".to_owned(), self.idle),
        ]
    }
}

/// Everything [`analyze`] extracts from one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAnalysis {
    /// One attribution per session generation, in generation order.
    pub sessions: Vec<SessionAttribution>,
    /// Serve-run attribution, when the trace contains serve-track events.
    pub serve: Option<ServeAttribution>,
}

impl TraceAnalysis {
    /// Renders a human-readable critical-path report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for s in &self.sessions {
            out.push_str(&format!(
                "session {} — total {:.3} ms\n",
                s.generation,
                s.total * 1e3
            ));
            for (label, t) in s.rows() {
                let pct = if s.total > 0.0 {
                    t / s.total * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {label:<12} {:>10.3} ms  {pct:>5.1}%\n",
                    t * 1e3
                ));
            }
            for (phase, t) in &s.phases {
                out.push_str(&format!("  phase {phase:<11} {:>8.3} ms\n", t * 1e3));
            }
            for (name, t, n) in s.hotspots.iter().take(5) {
                out.push_str(&format!(
                    "  hot {name:<16} {:>8.3} ms over {n} launches\n",
                    t * 1e3
                ));
            }
        }
        if let Some(serve) = &self.serve {
            out.push_str(&format!(
                "serve — makespan {:.3} ms, {} requests in {} batches\n",
                serve.makespan * 1e3,
                serve.requests,
                serve.batches
            ));
            for (label, t) in serve.rows() {
                let pct = if serve.makespan > 0.0 {
                    t / serve.makespan * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {label:<12} {:>10.3} ms  {pct:>5.1}%\n",
                    t * 1e3
                ));
            }
        }
        out
    }
}

/// End of an event on the simulated clock.
fn event_end(e: &TraceEvent) -> f64 {
    match &e.kind {
        EventKind::Complete { dur, .. } => e.sim + dur,
        _ => e.sim,
    }
}

fn arg_str<'a>(args: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
}

/// Analyzes a recorded trace into per-session and serve attributions.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let mut generations: Vec<u32> = Vec::new();
    for e in &trace.events {
        if !generations.contains(&e.generation) {
            generations.push(e.generation);
        }
    }
    let sessions = generations
        .iter()
        .map(|g| analyze_session(trace, *g))
        .collect();
    TraceAnalysis {
        sessions,
        serve: analyze_serve(trace),
    }
}

fn analyze_session(trace: &Trace, generation: u32) -> SessionAttribution {
    let events: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.generation == generation)
        .collect();
    let total = events.iter().map(|e| event_end(e)).fold(0.0, f64::max);

    // Kernel slices on the device stream, in execution order. The stream
    // is single, so slices never overlap; a cursor guards against float
    // noise double-counting anyway.
    let mut slices: Vec<(f64, f64, String, String)> = events
        .iter()
        .filter(|e| e.track == crate::tracks::KERNELS)
        .filter_map(|e| match &e.kind {
            EventKind::Complete { name, dur, args } => {
                let kind = arg_str(args, "kind").unwrap_or(name.as_str()).to_owned();
                Some((e.sim, e.sim + dur, kind, name.clone()))
            }
            _ => None,
        })
        .collect();
    slices.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut kinds: Vec<(String, f64)> = Vec::new();
    let mut hotspots: Vec<(String, f64, u64)> = Vec::new();
    let mut cursor = 0.0f64;
    let mut accounted = 0.0f64;
    for (start, end, kind, name) in &slices {
        let s = start.max(cursor);
        let e = end.max(s);
        let dur = e - s;
        cursor = e;
        accounted += dur;
        match kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, t)) => *t += dur,
            None => kinds.push((kind.clone(), dur)),
        }
        match hotspots.iter_mut().find(|(n, _, _)| n == name) {
            Some((_, t, c)) => {
                *t += dur;
                *c += 1;
            }
            None => hotspots.push((name.clone(), dur, 1)),
        }
    }
    hotspots.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let idle = (total - accounted).max(0.0);

    // Phase spans: begin/end pairs on the phase track. An unclosed span
    // (trace cut mid-run) closes at the generation's end.
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut open: Option<(String, f64)> = None;
    for e in &events {
        if e.track != crate::tracks::PHASE {
            continue;
        }
        match &e.kind {
            EventKind::Begin { name } => {
                if let Some((n, start)) = open.take() {
                    add_time(&mut phases, &n, e.sim - start);
                }
                open = Some((name.clone(), e.sim));
            }
            EventKind::End => {
                if let Some((n, start)) = open.take() {
                    add_time(&mut phases, &n, e.sim - start);
                }
            }
            _ => {}
        }
    }
    if let Some((n, start)) = open.take() {
        add_time(&mut phases, &n, total - start);
    }

    SessionAttribution {
        generation,
        total,
        kinds,
        idle,
        phases,
        hotspots,
    }
}

fn add_time(acc: &mut Vec<(String, f64)>, name: &str, dur: f64) {
    let dur = dur.max(0.0);
    match acc.iter_mut().find(|(n, _)| n == name) {
        Some((_, t)) => *t += dur,
        None => acc.push((name.to_owned(), dur)),
    }
}

/// Sorts and merges intervals into a disjoint union.
fn union(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.retain(|(s, e)| e > s);
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (s, e) in intervals {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = last_e.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_len(intervals: &[(f64, f64)]) -> f64 {
    intervals.iter().map(|(s, e)| e - s).sum()
}

/// Subtracts the disjoint union `b` from the disjoint union `a`.
fn subtract(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(mut s, e) in a {
        for &(bs, be) in b {
            if be <= s || bs >= e {
                continue;
            }
            if bs > s {
                out.push((s, bs));
            }
            s = s.max(be);
            if s >= e {
                break;
            }
        }
        if s < e {
            out.push((s, e));
        }
    }
    out
}

fn analyze_serve(trace: &Trace) -> Option<ServeAttribution> {
    let events: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.track == crate::tracks::SERVE)
        .collect();
    if events.is_empty() {
        return None;
    }
    let makespan = events.iter().map(|e| event_end(e)).fold(0.0, f64::max);
    let mut exec_intervals = Vec::new();
    let mut queue_intervals = Vec::new();
    let mut requests = 0u64;
    let mut batches = 0u64;
    for e in &events {
        if let EventKind::Complete { name, dur, .. } = &e.kind {
            match name.as_str() {
                "batch" => {
                    batches += 1;
                    exec_intervals.push((e.sim, e.sim + dur));
                }
                "request" => requests += 1,
                "queue_wait" => queue_intervals.push((e.sim, e.sim + dur)),
                _ => {}
            }
        }
    }
    let exec = union(exec_intervals);
    let queue_only = subtract(&union(queue_intervals), &exec);
    let execute = total_len(&exec);
    let queue_only_len = total_len(&queue_only);
    let idle = (makespan - execute - queue_only_len).max(0.0);
    Some(ServeAttribution {
        makespan,
        execute,
        queue_only: queue_only_len,
        idle,
        requests,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{EventKind, Trace, TraceEvent};

    fn ev(track: &str, kind: EventKind, sim: f64, generation: u32) -> TraceEvent {
        TraceEvent {
            track: track.to_owned(),
            kind,
            sim,
            wall: 0.0,
            generation,
        }
    }

    fn slice(name: &str, dur: f64, args: Vec<(String, Value)>) -> EventKind {
        EventKind::Complete {
            name: name.to_owned(),
            dur,
            args,
        }
    }

    fn kernel(name: &str, kind: &str, sim: f64, dur: f64, generation: u32) -> TraceEvent {
        ev(
            crate::tracks::KERNELS,
            EventKind::Complete {
                name: name.to_owned(),
                dur,
                args: vec![("kind".to_owned(), Value::from(kind))],
            },
            sim,
            generation,
        )
    }

    #[test]
    fn session_attribution_sums_exactly_to_total() {
        let trace = Trace {
            events: vec![
                ev(
                    crate::tracks::PHASE,
                    EventKind::Begin {
                        name: "forward".into(),
                    },
                    0.0,
                    1,
                ),
                kernel("gemm_a", "gemm", 0.1, 0.2, 1),
                kernel("gather_b", "gather", 0.3, 0.1, 1),
                ev(
                    crate::tracks::PHASE,
                    EventKind::Begin {
                        name: "backward".into(),
                    },
                    0.5,
                    1,
                ),
                kernel("gemm_a", "gemm", 0.6, 0.3, 1),
                ev(crate::tracks::PHASE, EventKind::End, 1.0, 1),
            ],
            epochs: vec![],
            schedule: vec![],
        };
        let a = analyze(&trace);
        assert_eq!(a.sessions.len(), 1);
        let s = &a.sessions[0];
        assert_eq!(s.total, 1.0);
        let sum: f64 = s.rows().iter().map(|(_, t)| t).sum();
        assert_eq!(sum, s.total, "attribution must be exhaustive");
        assert_eq!(s.kinds.len(), 2);
        assert!((s.kinds[0].1 - 0.5).abs() < 1e-12); // gemm
        assert!((s.kinds[1].1 - 0.1).abs() < 1e-12); // gather
        assert!((s.idle - 0.4).abs() < 1e-12);
        // Phases partition the span.
        let phase_sum: f64 = s.phases.iter().map(|(_, t)| t).sum();
        assert!((phase_sum - s.total).abs() < 1e-12);
        // Hotspots ranked by time.
        assert_eq!(s.hotspots[0].0, "gemm_a");
        assert_eq!(s.hotspots[0].2, 2);
    }

    #[test]
    fn generations_attribute_independently() {
        let trace = Trace {
            events: vec![
                kernel("k", "gemm", 0.0, 1.0, 1),
                kernel("k", "gemm", 0.0, 2.0, 2),
            ],
            epochs: vec![],
            schedule: vec![],
        };
        let a = analyze(&trace);
        assert_eq!(a.sessions.len(), 2);
        assert_eq!(a.sessions[0].total, 1.0);
        assert_eq!(a.sessions[1].total, 2.0);
        assert_eq!(a.sessions[0].idle, 0.0);
    }

    #[test]
    fn serve_attribution_sums_exactly_to_makespan() {
        let sv = crate::tracks::SERVE;
        let trace = Trace {
            events: vec![
                // Request enqueued at 0, waits until its batch runs 1→2.
                ev(sv, slice("queue_wait", 1.0, vec![]), 0.0, 1),
                ev(sv, slice("batch", 1.0, vec![]), 1.0, 1),
                ev(sv, slice("execute", 1.0, vec![]), 1.0, 1),
                ev(sv, slice("request", 2.0, vec![]), 0.0, 1),
                // A later lone batch 3→4 with no queueing before it.
                ev(sv, slice("batch", 1.0, vec![]), 3.0, 1),
            ],
            epochs: vec![],
            schedule: vec![],
        };
        let a = analyze(&trace).serve.expect("serve events present");
        assert_eq!(a.makespan, 4.0);
        assert_eq!(a.execute, 2.0);
        assert_eq!(a.queue_only, 1.0);
        assert_eq!(a.idle, 1.0);
        let sum: f64 = a.rows().iter().map(|(_, t)| t).sum();
        assert_eq!(sum, a.makespan, "serve attribution must be exhaustive");
        assert_eq!(a.requests, 1);
        assert_eq!(a.batches, 2);
    }

    #[test]
    fn queue_wait_overlapping_execute_counts_as_execute() {
        let sv = crate::tracks::SERVE;
        let trace = Trace {
            events: vec![
                // Queueing 0→3 fully covers the batch 1→2: only the
                // non-overlapping 2 seconds are queue-only.
                ev(sv, slice("queue_wait", 3.0, vec![]), 0.0, 1),
                ev(sv, slice("batch", 1.0, vec![]), 1.0, 1),
            ],
            epochs: vec![],
            schedule: vec![],
        };
        let a = analyze(&trace).serve.unwrap();
        assert_eq!(a.execute, 1.0);
        assert_eq!(a.queue_only, 2.0);
        assert_eq!(a.idle, 0.0);
    }

    #[test]
    fn interval_helpers_merge_and_subtract() {
        let u = union(vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 4.0)]);
        assert_eq!(u, vec![(0.0, 2.0), (3.0, 4.0)]);
        assert_eq!(total_len(&u), 3.0);
        let d = subtract(&u, &[(0.5, 1.0), (1.5, 3.5)]);
        assert_eq!(d, vec![(0.0, 0.5), (1.0, 1.5), (3.5, 4.0)]);
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let a = analyze(&Trace::default());
        assert!(a.sessions.is_empty());
        assert!(a.serve.is_none());
        assert_eq!(a.report(), "");
    }

    #[test]
    fn report_renders_percentages() {
        let trace = Trace {
            events: vec![kernel("k", "gemm", 0.0, 1.0, 1)],
            epochs: vec![],
            schedule: vec![],
        };
        let text = analyze(&trace).report();
        assert!(text.contains("session 1"));
        assert!(text.contains("gemm"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("idle"));
    }
}
