//! Event collection: the thread-local subscriber and the free functions
//! instrumented code calls.
//!
//! Mirrors the install/finish pattern of `gnn_device::session`: a
//! [`Collector`] is [`install`]ed thread-locally, instrumented code reports
//! through free functions that are no-ops when nothing is installed, and
//! [`finish`] returns the accumulated [`Trace`]. Simulated timestamps are
//! supplied by the caller (they live in the device model's timeline); the
//! collector stamps host wall-clock time itself, relative to its creation.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::json::Value;
use crate::whatif::{SchedEntry, SchedOp};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Track (Chrome-trace thread) the event belongs to, e.g. `"phase"`,
    /// `"kernels"`, `"scopes"`, `"train"`.
    pub track: String,
    /// What happened.
    pub kind: EventKind,
    /// Simulated time in seconds, on the active session's clock.
    pub sim: f64,
    /// Host wall-clock seconds since the collector was installed.
    pub wall: f64,
    /// Session generation this event belongs to (see [`session_started`]).
    pub generation: u32,
}

/// Event payload variants, mapping 1:1 onto Chrome trace-event phases.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Opens a span (`ph: "B"`). Closed by the next [`EventKind::End`] on
    /// the same track.
    Begin {
        /// Span name.
        name: String,
    },
    /// Closes the innermost open span on the track (`ph: "E"`).
    End,
    /// A span with a known duration (`ph: "X"`), used for kernels.
    Complete {
        /// Slice name.
        name: String,
        /// Duration in simulated seconds.
        dur: f64,
        /// Extra payload rendered into Chrome-trace `args`.
        args: Vec<(String, Value)>,
    },
    /// A zero-duration marker (`ph: "i"`).
    Instant {
        /// Marker name.
        name: String,
        /// Extra payload rendered into Chrome-trace `args`.
        args: Vec<(String, Value)>,
    },
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// Counter series name.
        name: String,
        /// Sampled value.
        value: f64,
    },
}

/// One row of the per-epoch metrics stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Run identifier, e.g. `"gcn/rustyg/cora"`.
    pub run: String,
    /// Zero-based epoch index.
    pub epoch: u32,
    /// Training loss at the end of the epoch.
    pub loss: f64,
    /// Evaluation accuracy, when the task computes one.
    pub accuracy: Option<f64>,
    /// Learning rate in effect.
    pub lr: f64,
    /// Simulated seconds spent in each phase *during this epoch*
    /// (label → seconds).
    pub phase_times: Vec<(String, f64)>,
    /// Kernel launches *during this epoch* per kernel kind (label → count).
    pub kernel_counts: Vec<(String, u64)>,
    /// Floating-point operations executed *during this epoch*, from the
    /// device counter model.
    pub flops: u64,
    /// Bytes moved through device memory *during this epoch* (reads +
    /// writes, including transfers).
    pub bytes: u64,
    /// Peak device memory over the run so far, in bytes.
    pub peak_memory: u64,
    /// Device utilization over the run so far (busy / elapsed, 0–1).
    pub utilization: f64,
    /// Simulated seconds since the session started.
    pub sim_time: f64,
    /// Host wall-clock seconds since the collector was installed.
    pub wall_time: f64,
}

/// Everything a collector gathered, returned by [`finish`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Trace events in emission order.
    pub events: Vec<TraceEvent>,
    /// Per-epoch metrics records in emission order.
    pub epochs: Vec<EpochRecord>,
    /// Device-timeline operations in emission order, the raw material for
    /// causal what-if replay ([`crate::whatif::replay_schedule`]).
    pub schedule: Vec<SchedEntry>,
}

impl Trace {
    /// Renders the Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::chrome_trace_json(&self.events)
    }

    /// Renders the JSONL metrics stream (one record per line).
    pub fn to_metrics_jsonl(&self) -> String {
        crate::metrics::metrics_jsonl(&self.epochs)
    }

    /// Writes `trace.json` and `metrics.jsonl` under `dir`, creating it if
    /// needed. Returns the two file paths.
    pub fn save(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.jsonl");
        std::fs::write(&trace_path, self.to_chrome_json())?;
        std::fs::write(&metrics_path, self.to_metrics_jsonl())?;
        Ok((trace_path, metrics_path))
    }
}

/// The in-flight event sink.
#[derive(Debug)]
pub struct Collector {
    trace: Trace,
    origin: Instant,
    generation: u32,
}

impl Collector {
    /// Creates an empty collector; wall-clock zero is now.
    pub fn new() -> Self {
        Collector {
            trace: Trace::default(),
            origin: Instant::now(),
            generation: 0,
        }
    }

    fn push(&mut self, track: &str, kind: EventKind, sim: f64) {
        let wall = self.origin.elapsed().as_secs_f64();
        self.trace.events.push(TraceEvent {
            track: track.to_owned(),
            kind,
            sim,
            wall,
            generation: self.generation,
        });
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<RefCell<Collector>>>> = const { RefCell::new(None) };
}

/// Handle to an installed collector; pass back to [`finish`] to retrieve
/// the trace.
#[derive(Debug, Clone)]
pub struct CollectorHandle(Rc<RefCell<Collector>>);

/// Installs `collector` as the thread-local trace sink, replacing any
/// previous one.
pub fn install(collector: Collector) -> CollectorHandle {
    let rc = Rc::new(RefCell::new(collector));
    CURRENT.with(|c| *c.borrow_mut() = Some(rc.clone()));
    CollectorHandle(rc)
}

/// Uninstalls the collector and returns everything it gathered.
///
/// # Panics
///
/// Panics if other clones of the handle are still alive.
pub fn finish(handle: CollectorHandle) -> Trace {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if let Some(rc) = cur.as_ref() {
            if Rc::ptr_eq(rc, &handle.0) {
                *cur = None;
            }
        }
    });
    Rc::try_unwrap(handle.0)
        .expect("collector handle still shared at finish")
        .into_inner()
        .trace
}

/// Whether a collector is installed on this thread.
///
/// Instrumentation uses this to skip building event payloads (names, arg
/// vectors) on the disabled path, keeping tracing a true no-op when off.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with<F: FnOnce(&mut Collector)>(f: F) {
    CURRENT.with(|c| {
        if let Some(rc) = c.borrow().as_ref() {
            f(&mut rc.borrow_mut());
        }
    });
}

/// Marks the start of a new device session: subsequent events belong to the
/// next generation. Each session's simulated clock restarts at zero, so the
/// Chrome exporter lays generations out as separate processes.
pub fn session_started() {
    with(|c| c.generation += 1);
}

/// Opens a span on `track` at simulated time `sim` (no-op when inactive).
pub fn span_begin(track: &str, name: &str, sim: f64) {
    with(|c| {
        c.push(
            track,
            EventKind::Begin {
                name: name.to_owned(),
            },
            sim,
        )
    });
}

/// Closes the innermost span on `track` at simulated time `sim` (no-op when
/// inactive).
pub fn span_end(track: &str, sim: f64) {
    with(|c| c.push(track, EventKind::End, sim));
}

/// Records a fixed-duration slice (e.g. one kernel) starting at simulated
/// time `sim` (no-op when inactive).
pub fn complete(track: &str, name: &str, sim: f64, dur: f64, args: Vec<(String, Value)>) {
    with(|c| {
        c.push(
            track,
            EventKind::Complete {
                name: name.to_owned(),
                dur,
                args,
            },
            sim,
        )
    });
}

/// Records an instantaneous marker (no-op when inactive).
pub fn instant(track: &str, name: &str, sim: f64, args: Vec<(String, Value)>) {
    with(|c| {
        c.push(
            track,
            EventKind::Instant {
                name: name.to_owned(),
                args,
            },
            sim,
        )
    });
}

fn sched(op: SchedOp) {
    with(|c| {
        let generation = c.generation;
        c.trace.schedule.push(SchedEntry { generation, op });
    });
}

/// Records pure host work on the device timeline (no-op when inactive).
pub fn sched_host(seconds: f64) {
    sched(SchedOp::Host { seconds });
}

/// Records a kernel launch on the device timeline: `kind` is the priced-kind
/// index, `launch`/`duration` the applied host and device seconds (no-op
/// when inactive).
pub fn sched_launch(kind: u8, launch: f64, duration: f64) {
    sched(SchedOp::Launch {
        kind,
        launch,
        duration,
    });
}

/// Records a host-device synchronization on the device timeline (no-op when
/// inactive).
pub fn sched_sync() {
    sched(SchedOp::Sync);
}

/// Samples a counter series (no-op when inactive).
pub fn counter(track: &str, name: &str, value: f64, sim: f64) {
    with(|c| {
        c.push(
            track,
            EventKind::Counter {
                name: name.to_owned(),
                value,
            },
            sim,
        )
    });
}

/// Appends a per-epoch metrics record, stamping its wall-clock field
/// (no-op when inactive).
pub fn epoch(mut record: EpochRecord) {
    with(|c| {
        record.wall_time = c.origin.elapsed().as_secs_f64();
        c.trace.epochs.push(record);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_collect_finish() {
        let h = install(Collector::new());
        assert!(is_active());
        session_started();
        span_begin("phase", "forward", 0.0);
        complete("kernels", "gemm", 0.1, 0.05, vec![]);
        counter("memory", "device_bytes", 1024.0, 0.2);
        span_end("phase", 0.3);
        let trace = finish(h);
        assert!(!is_active());
        assert_eq!(trace.events.len(), 4);
        assert!(trace.events.iter().all(|e| e.generation == 1));
        assert!(
            trace.events.windows(2).all(|w| w[0].wall <= w[1].wall),
            "wall clock must be monotonic"
        );
    }

    #[test]
    fn free_functions_are_noops_without_collector() {
        span_begin("phase", "forward", 0.0);
        span_end("phase", 1.0);
        complete("kernels", "gemm", 0.0, 1.0, vec![]);
        instant("train", "epoch", 0.0, vec![]);
        counter("memory", "bytes", 0.0, 0.0);
        session_started();
        epoch(EpochRecord {
            run: "r".into(),
            epoch: 0,
            loss: 0.0,
            accuracy: None,
            lr: 0.0,
            phase_times: vec![],
            kernel_counts: vec![],
            flops: 0,
            bytes: 0,
            peak_memory: 0,
            utilization: 0.0,
            sim_time: 0.0,
            wall_time: 0.0,
        });
        assert!(!is_active());
    }

    #[test]
    fn epoch_records_get_wall_stamped() {
        let h = install(Collector::new());
        epoch(EpochRecord {
            run: "gcn/rustyg/cora".into(),
            epoch: 3,
            loss: 0.5,
            accuracy: Some(0.8),
            lr: 0.01,
            phase_times: vec![("forward".into(), 0.2)],
            kernel_counts: vec![("gemm".into(), 12)],
            flops: 1_000_000,
            bytes: 4_000_000,
            peak_memory: 1 << 20,
            utilization: 0.7,
            sim_time: 1.5,
            wall_time: -1.0, // overwritten at emission
        });
        let trace = finish(h);
        assert_eq!(trace.epochs.len(), 1);
        assert!(trace.epochs[0].wall_time >= 0.0);
    }

    #[test]
    fn sched_ops_capture_with_generations() {
        let h = install(Collector::new());
        session_started();
        sched_host(1e-4);
        sched_launch(0, 6e-6, 5e-5);
        sched_sync();
        session_started();
        sched_host(2e-4);
        let trace = finish(h);
        assert_eq!(trace.schedule.len(), 4);
        assert_eq!(trace.schedule[0].op, SchedOp::Host { seconds: 1e-4 },);
        assert_eq!(
            trace.schedule[1].op,
            SchedOp::Launch {
                kind: 0,
                launch: 6e-6,
                duration: 5e-5
            },
        );
        assert_eq!(trace.schedule[2].op, SchedOp::Sync);
        let gens: Vec<u32> = trace.schedule.iter().map(|e| e.generation).collect();
        assert_eq!(gens, vec![1, 1, 1, 2]);
        // Disabled path stays a no-op.
        sched_host(1.0);
        sched_sync();
        assert!(!is_active());
    }

    #[test]
    fn generations_partition_events() {
        let h = install(Collector::new());
        session_started();
        span_begin("phase", "a", 0.0);
        span_end("phase", 1.0);
        session_started();
        span_begin("phase", "b", 0.0);
        span_end("phase", 1.0);
        let trace = finish(h);
        let gens: Vec<u32> = trace.events.iter().map(|e| e.generation).collect();
        assert_eq!(gens, vec![1, 1, 2, 2]);
    }
}
