//! Minimal JSON tree, writer, and parser.
//!
//! The workspace has no serde; the exporters hand-build JSON and the tests
//! parse it back with this module to prove the output is well-formed. Only
//! the constructs the trace formats need are supported (objects, arrays,
//! strings, finite numbers, booleans, null) — which is also exactly the
//! JSON grammar, so the parser accepts any valid document.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Non-finite values are serialized as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if any.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if any.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Appends the JSON encoding of `s` (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the JSON encoding of `n` to `out` (`null` when non-finite,
/// integer form when exactly integral).
pub fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's f64 Display is shortest-roundtrip, valid JSON.
        let _ = write!(out, "{n}");
    }
}

/// Appends the JSON encoding of `value` to `out`.
pub fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Parses one complete JSON document.
///
/// Trailing whitespace is allowed; any other trailing content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("gcn \"quoted\"\n".into())),
            ("count".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(0.125)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::Arr(vec![Value::Num(-1.5e-3), Value::Str("µs".into())]),
            ),
        ]);
        let text = doc.to_json();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_serialize_without_exponent() {
        assert_eq!(Value::Num(1e6).to_json(), "1000000");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("hello").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let v = parse(r#"{"a": {"b": [1, "two", null]}, "n": 7}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(Value::as_arr);
        let arr = arr.unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(arr[2], Value::Null);
    }
}
