//! Causal what-if profiling: exact replay of recorded device schedules
//! under hypothetical component speedups.
//!
//! The device session records every timeline operation it performs — host
//! work, kernel launches, synchronizations — as a [`SchedOp`] stream on the
//! active trace (see [`crate::sched_host`] and friends). [`replay`] re-runs
//! that stream through arithmetic identical to the device timeline's, with
//! each component's cost divided by a virtual speedup factor. Because the
//! real cost model applies an overlaid speedup as the *same final division*
//! (`gnn_device::CostModel::with_speedups`), the replayed horizon is
//! bit-identical to what a real re-run with that overlay would measure —
//! the profiler's predictions are exact, not approximate, and the
//! conformance suite holds it to that.

/// One recorded device-timeline operation.
///
/// Values are the *applied* seconds, exactly as the timeline consumed them;
/// on a capture run with the identity overlay these are the unscaled base
/// costs that replay divides by hypothetical factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedOp {
    /// Pure host work advancing the host clock.
    Host {
        /// Seconds of host work applied to the timeline.
        seconds: f64,
    },
    /// A kernel launch: the host pays `launch`, the device queues `duration`.
    Launch {
        /// Priced-kind index of the kernel (order of
        /// `gnn_device::PRICED_KINDS`).
        kind: u8,
        /// Host launch overhead in seconds.
        launch: f64,
        /// Device execution time in seconds.
        duration: f64,
    },
    /// A host-device synchronization: the host clock jumps to the device
    /// frontier.
    Sync,
}

/// One captured schedule entry: the op plus the session generation it
/// belongs to (each generation restarts simulated time at zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedEntry {
    /// Session generation (see [`crate::session_started`]).
    pub generation: u32,
    /// The recorded operation.
    pub op: SchedOp,
}

/// Number of what-if components: the 11 priced kernel kinds plus the launch
/// overhead plus pure host work.
pub const WHATIF_COMPONENTS: usize = 13;

/// Component index of the launch-overhead lever.
pub const COMPONENT_LAUNCH: usize = 11;

/// Component index of the host-work (idle-gap) lever.
pub const COMPONENT_HOST: usize = 12;

/// Virtual speedup factors for every priced component of the simulation.
///
/// A factor of `1.0` leaves the component untouched; `2.0` halves its cost;
/// `f64::INFINITY` removes it entirely. Both the replay here and the real
/// cost-model overlay compute `base_cost / factor`, which is what makes
/// predictions bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Speedups {
    /// Speedup per kernel kind, indexed like `gnn_device::PRICED_KINDS`.
    pub kinds: [f64; 11],
    /// Speedup applied to the host-side kernel launch overhead.
    pub launch: f64,
    /// Speedup applied to pure host work.
    pub host: f64,
}

impl Default for Speedups {
    fn default() -> Self {
        Speedups::identity()
    }
}

impl Speedups {
    /// The identity overlay: every factor `1.0`, costs unchanged.
    pub fn identity() -> Self {
        Speedups {
            kinds: [1.0; 11],
            launch: 1.0,
            host: 1.0,
        }
    }

    /// An overlay speeding up a single component by `k`: indexes `0..11`
    /// address the priced kernel kinds, [`COMPONENT_LAUNCH`] the launch
    /// overhead, [`COMPONENT_HOST`] pure host work.
    ///
    /// # Panics
    ///
    /// Panics if `component >= WHATIF_COMPONENTS` or `k` is not positive
    /// (`f64::INFINITY` is allowed).
    pub fn component(component: usize, k: f64) -> Self {
        assert!(
            component < WHATIF_COMPONENTS,
            "component index {component} out of range"
        );
        assert!(k > 0.0, "speedup factor must be positive, got {k}");
        let mut s = Speedups::identity();
        match component {
            COMPONENT_LAUNCH => s.launch = k,
            COMPONENT_HOST => s.host = k,
            i => s.kinds[i] = k,
        }
        s
    }

    /// True when every factor is exactly `1.0`.
    pub fn is_identity(&self) -> bool {
        self.kinds.iter().all(|&k| k == 1.0) && self.launch == 1.0 && self.host == 1.0
    }
}

/// Result of replaying a schedule under a [`Speedups`] overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replayed {
    /// Predicted end-to-end simulated time (the timeline horizon).
    pub total: f64,
    /// Predicted accumulated device busy time.
    pub busy: f64,
    /// Kernel launches replayed.
    pub launches: u64,
}

/// Replays one session's op stream under `speedups`, mirroring the device
/// timeline's arithmetic operation for operation.
///
/// With the identity overlay this reproduces the captured session's horizon
/// exactly; with a component sped up it reproduces — bit for bit — the
/// horizon a real re-run would measure with the same factor overlaid on the
/// cost model.
pub fn replay(ops: impl IntoIterator<Item = SchedOp>, speedups: &Speedups) -> Replayed {
    // Mirrors gnn_device::Timeline: `now` is the host clock, `device_free`
    // the device frontier; launches queue after both, syncs join them.
    let mut now = 0.0f64;
    let mut device_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut launches = 0u64;
    for op in ops {
        match op {
            SchedOp::Host { seconds } => now += seconds / speedups.host,
            SchedOp::Launch {
                kind,
                launch,
                duration,
            } => {
                now += launch / speedups.launch;
                let d = duration / speedups.kinds[kind as usize];
                let start = device_free.max(now);
                device_free = start + d;
                busy += d;
                launches += 1;
            }
            SchedOp::Sync => now = now.max(device_free),
        }
    }
    Replayed {
        total: now.max(device_free),
        busy,
        launches,
    }
}

/// Replays a multi-session schedule: each generation restarts the simulated
/// clock at zero, so per-generation horizons are replayed independently and
/// summed (matching the sum of the sessions' device reports).
pub fn replay_schedule(schedule: &[SchedEntry], speedups: &Speedups) -> Replayed {
    let mut total = 0.0f64;
    let mut busy = 0.0f64;
    let mut launches = 0u64;
    let mut start = 0usize;
    while start < schedule.len() {
        let generation = schedule[start].generation;
        let mut end = start;
        while end < schedule.len() && schedule[end].generation == generation {
            end += 1;
        }
        let r = replay(schedule[start..end].iter().map(|e| e.op), speedups);
        total += r.total;
        busy += r.busy;
        launches += r.launches;
        start = end;
    }
    Replayed {
        total,
        busy,
        launches,
    }
}

/// Total recorded base cost per what-if component, in seconds: device time
/// per kernel kind, summed launch overhead, summed host work. An upper
/// bound on what any speedup of that component can save end-to-end — the
/// `gnn-lint` what-if audit checks predictions against these budgets.
pub fn component_budgets(schedule: &[SchedEntry]) -> [f64; WHATIF_COMPONENTS] {
    let mut budget = [0.0f64; WHATIF_COMPONENTS];
    for entry in schedule {
        match entry.op {
            SchedOp::Host { seconds } => budget[COMPONENT_HOST] += seconds,
            SchedOp::Launch {
                kind,
                launch,
                duration,
            } => {
                budget[COMPONENT_LAUNCH] += launch;
                budget[kind as usize] += duration;
            }
            SchedOp::Sync => {}
        }
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<SchedOp> {
        vec![
            SchedOp::Host { seconds: 1e-4 },
            SchedOp::Launch {
                kind: 0,
                launch: 6e-6,
                duration: 5e-5,
            },
            SchedOp::Launch {
                kind: 3,
                launch: 6e-6,
                duration: 2e-5,
            },
            SchedOp::Sync,
            SchedOp::Host { seconds: 3e-5 },
            SchedOp::Launch {
                kind: 0,
                launch: 6e-6,
                duration: 4e-5,
            },
            SchedOp::Sync,
        ]
    }

    #[test]
    fn identity_replay_matches_manual_timeline() {
        let r = replay(sample_ops(), &Speedups::identity());
        // Hand-simulated: host 1e-4, launch pushes now to 1.06e-4, device
        // runs 5e-5 then 2e-5 back to back, sync, more host work, third
        // kernel, sync.
        let mut now: f64 = 1e-4 + 6e-6;
        let mut free: f64 = now + 5e-5;
        now += 6e-6;
        free += 2e-5;
        now = now.max(free);
        now += 3e-5 + 6e-6;
        free = free.max(now) + 4e-5;
        now = now.max(free);
        assert_eq!(r.total, now);
        assert_eq!(r.busy, 5e-5 + 2e-5 + 4e-5);
        assert_eq!(r.launches, 3);
    }

    #[test]
    fn speedups_are_monotone_and_bounded_by_budget() {
        let ops = sample_ops();
        let schedule: Vec<SchedEntry> = ops
            .iter()
            .map(|&op| SchedEntry { generation: 1, op })
            .collect();
        let base = replay(ops.clone(), &Speedups::identity());
        let budgets = component_budgets(&schedule);
        for (component, &budget) in budgets.iter().enumerate() {
            let mut prev = base.total;
            for k in [1.1, 1.25, 1.5, 2.0, f64::INFINITY] {
                let r = replay(ops.clone(), &Speedups::component(component, k));
                assert!(r.total <= prev + 1e-15, "speedup must not slow the run");
                assert!(
                    base.total - r.total <= budget + 1e-15,
                    "saving cannot exceed the component's recorded budget"
                );
                prev = r.total;
            }
        }
    }

    #[test]
    fn infinite_speedup_removes_component_entirely() {
        let ops = sample_ops();
        let r = replay(ops.clone(), &Speedups::component(0, f64::INFINITY));
        // Gemm kernels vanish; only the gather kernel contributes busy time.
        assert_eq!(r.busy, 2e-5);
        let no_host = replay(ops, &Speedups::component(COMPONENT_HOST, f64::INFINITY));
        assert!(no_host.total < 2e-4);
        assert!(no_host.total.is_finite() && no_host.total > 0.0);
    }

    #[test]
    fn generations_replay_independently() {
        let mut schedule = Vec::new();
        for generation in 1..=2 {
            for op in sample_ops() {
                schedule.push(SchedEntry { generation, op });
            }
        }
        let one = replay(sample_ops(), &Speedups::identity());
        let both = replay_schedule(&schedule, &Speedups::identity());
        assert_eq!(both.total, one.total * 2.0);
        assert_eq!(both.launches, one.launches * 2);
    }

    #[test]
    fn component_constructor_validates() {
        assert!(std::panic::catch_unwind(|| Speedups::component(13, 2.0)).is_err());
        assert!(std::panic::catch_unwind(|| Speedups::component(0, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Speedups::component(0, -1.0)).is_err());
        assert!(Speedups::identity().is_identity());
        assert!(!Speedups::component(0, 2.0).is_identity());
    }
}
