//! COO edge-list graphs and CSC conversion.

use std::collections::HashSet;

/// A directed graph in COO (coordinate) form: parallel `src`/`dst` arrays.
///
/// Edges are message-passing directed: edge `e` carries information from
/// `src[e]` to `dst[e]`. Datasets that are conceptually undirected store both
/// directions (see [`Graph::to_symmetric`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl Graph {
    /// Creates a graph from parallel endpoint arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length or any endpoint is out of range.
    pub fn new(num_nodes: usize, src: Vec<u32>, dst: Vec<u32>) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert!(
            src.iter().chain(&dst).all(|&v| (v as usize) < num_nodes),
            "edge endpoint out of range (num_nodes = {num_nodes})"
        );
        Graph {
            num_nodes,
            src,
            dst,
        }
    }

    /// Creates a graph from `(src, dst)` pairs.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let src = edges.iter().map(|&(s, _)| s).collect();
        let dst = edges.iter().map(|&(_, d)| d).collect();
        Graph::new(num_nodes, src, dst)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoint of every edge.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination endpoint of every edge.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Edge iterator over `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &s in &self.src {
            deg[s as usize] += 1;
        }
        deg
    }

    /// Undirected view: both directions of every edge, deduplicated, with
    /// self-loops preserved once.
    pub fn to_symmetric(&self) -> Graph {
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(self.src.len() * 2);
        let mut src = Vec::with_capacity(self.src.len() * 2);
        let mut dst = Vec::with_capacity(self.src.len() * 2);
        for (s, d) in self.edges() {
            for &(a, b) in &[(s, d), (d, s)] {
                if (a != b || (a, b) == (s, d)) && seen.insert((a, b)) {
                    src.push(a);
                    dst.push(b);
                }
            }
        }
        Graph {
            num_nodes: self.num_nodes,
            src,
            dst,
        }
    }

    /// Copy with one self-loop added to every node (GCN's renormalization
    /// trick); pre-existing self-loops are kept as-is.
    pub fn with_self_loops(&self) -> Graph {
        let mut has_loop = vec![false; self.num_nodes];
        for (s, d) in self.edges() {
            if s == d {
                has_loop[s as usize] = true;
            }
        }
        let mut src = self.src.clone();
        let mut dst = self.dst.clone();
        for (n, &has) in has_loop.iter().enumerate() {
            if !has {
                src.push(n as u32);
                dst.push(n as u32);
            }
        }
        Graph {
            num_nodes: self.num_nodes,
            src,
            dst,
        }
    }

    /// Converts to CSC (in-edges grouped per destination node).
    ///
    /// This is the format DGL-style frameworks aggregate over; the conversion
    /// cost is part of their batching overhead.
    pub fn csc(&self) -> Csc {
        let mut indptr = vec![0u32; self.num_nodes + 1];
        for &d in &self.dst {
            indptr[d as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            indptr[i + 1] += indptr[i];
        }
        let mut cursor = indptr.clone();
        let mut src_sorted = vec![0u32; self.src.len()];
        let mut edge_ids = vec![0u32; self.src.len()];
        for e in 0..self.src.len() {
            let d = self.dst[e] as usize;
            let pos = cursor[d] as usize;
            cursor[d] += 1;
            src_sorted[pos] = self.src[e];
            edge_ids[pos] = e as u32;
        }
        Csc {
            indptr,
            src: src_sorted,
            edge_ids,
        }
    }
}

/// Compressed sparse column storage: for each destination node, the slice of
/// in-edge sources and original edge ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csc {
    /// `indptr[d]..indptr[d+1]` is the in-edge range of node `d`.
    pub indptr: Vec<u32>,
    /// Source node of each in-edge, grouped by destination.
    pub src: Vec<u32>,
    /// Original COO edge id of each in-edge, grouped by destination.
    pub edge_ids: Vec<u32>,
}

impl Csc {
    /// In-neighbour sources of node `d`.
    pub fn in_sources(&self, d: usize) -> &[u32] {
        &self.src[self.indptr[d] as usize..self.indptr[d + 1] as usize]
    }

    /// Original edge ids of node `d`'s in-edges.
    pub fn in_edges(&self, d: usize) -> &[u32] {
        &self.edge_ids[self.indptr[d] as usize..self.indptr[d + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        // 0 -> 1 -> 2
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn degrees() {
        let g = path3();
        assert_eq!(g.in_degrees(), vec![0, 1, 1]);
        assert_eq!(g.out_degrees(), vec![1, 1, 0]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetric_dedups_and_handles_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 2)]);
        let u = g.to_symmetric();
        assert_eq!(
            u.num_edges(),
            3,
            "0<->1 once each direction + one self-loop"
        );
        let mut pairs: Vec<(u32, u32)> = u.edges().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn self_loops_added_once() {
        let g = Graph::from_edges(2, &[(0, 0)]);
        let l = g.with_self_loops();
        assert_eq!(l.num_edges(), 2);
        assert_eq!(l.in_degrees(), vec![1, 1]);
        // idempotent
        assert_eq!(l.with_self_loops().num_edges(), 2);
    }

    #[test]
    fn csc_groups_in_edges() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2), (2, 0)]);
        let csc = g.csc();
        assert_eq!(csc.in_sources(2), &[0, 1]);
        assert_eq!(csc.in_sources(0), &[2]);
        assert_eq!(csc.in_sources(1), &[] as &[u32]);
        assert_eq!(csc.in_edges(2), &[0, 1]);
    }

    #[test]
    fn csc_roundtrips_edge_count() {
        let g = path3().to_symmetric();
        let csc = g.csc();
        let total: usize = (0..g.num_nodes()).map(|d| csc.in_sources(d).len()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn oob_edge_rejected() {
        Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_arrays_rejected() {
        Graph::new(3, vec![0], vec![1, 2]);
    }
}
