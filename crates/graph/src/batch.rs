//! Disjoint-union mini-batching.
//!
//! Both frameworks in the study batch a set of small graphs by relabelling
//! them into one big disconnected graph ("the data processing operation
//! models a batch of graphs as one big and disconnected graph", Section
//! IV-C). This module provides the *topology* part of that operation; each
//! framework's loader wraps it with its own bookkeeping and host-cost
//! accounting.

use crate::graph::Graph;

/// A batch of graphs merged into one disconnected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointUnion {
    /// The merged graph.
    pub graph: Graph,
    /// For every node of the merged graph, the index of its originating
    /// graph within the batch.
    pub graph_ids: Vec<u32>,
    /// Node-offset of each input graph in the merged node numbering
    /// (length `graphs.len() + 1`).
    pub node_offsets: Vec<u32>,
}

impl DisjointUnion {
    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.node_offsets.len() - 1
    }
}

/// Merges `graphs` into one disconnected graph with relabelled node ids.
///
/// # Panics
///
/// Panics if `graphs` is empty.
pub fn disjoint_union(graphs: &[&Graph]) -> DisjointUnion {
    assert!(!graphs.is_empty(), "cannot batch zero graphs");
    let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let total_edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
    let mut src = Vec::with_capacity(total_edges);
    let mut dst = Vec::with_capacity(total_edges);
    let mut graph_ids = Vec::with_capacity(total_nodes);
    let mut node_offsets = Vec::with_capacity(graphs.len() + 1);
    node_offsets.push(0u32);
    let mut offset = 0u32;
    for (gi, g) in graphs.iter().enumerate() {
        for (s, d) in g.edges() {
            src.push(s + offset);
            dst.push(d + offset);
        }
        graph_ids.extend(std::iter::repeat_n(gi as u32, g.num_nodes()));
        offset += g.num_nodes() as u32;
        node_offsets.push(offset);
    }
    DisjointUnion {
        graph: Graph::new(total_nodes, src, dst),
        graph_ids,
        node_offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_relabels_nodes() {
        let a = Graph::from_edges(2, &[(0, 1)]);
        let b = Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let u = disjoint_union(&[&a, &b]);
        assert_eq!(u.graph.num_nodes(), 5);
        assert_eq!(u.graph.num_edges(), 3);
        let pairs: Vec<(u32, u32)> = u.graph.edges().collect();
        assert_eq!(pairs, vec![(0, 1), (2, 4), (3, 4)]);
        assert_eq!(u.graph_ids, vec![0, 0, 1, 1, 1]);
        assert_eq!(u.node_offsets, vec![0, 2, 5]);
        assert_eq!(u.num_graphs(), 2);
    }

    #[test]
    fn union_keeps_components_disconnected() {
        let a = Graph::from_edges(2, &[(0, 1), (1, 0)]);
        let b = Graph::from_edges(2, &[(0, 1), (1, 0)]);
        let u = disjoint_union(&[&a, &b]);
        // No edge crosses the component boundary at node 2.
        for (s, d) in u.graph.edges() {
            assert_eq!(s < 2, d < 2, "edge ({s}, {d}) crosses graphs");
        }
    }

    #[test]
    fn single_graph_union_is_identity_topology() {
        let a = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        let u = disjoint_union(&[&a]);
        assert_eq!(u.graph, a);
        assert_eq!(u.graph_ids, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot batch zero graphs")]
    fn empty_batch_panics() {
        disjoint_union(&[]);
    }
}
