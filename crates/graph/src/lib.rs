//! # gnn-graph
//!
//! Graph topology structures for the GNN framework performance study:
//! a validated COO edge-list [`Graph`], CSC conversion ([`Csc`], the storage
//! DGL-style frameworks aggregate over), disjoint-union mini-batching
//! ([`batch::DisjointUnion`], the collation step whose cost dominates the
//! paper's epoch-time breakdowns), and k-nearest-neighbour construction
//! ([`knn::knn_graph`], used to build MNIST superpixel graphs).
//!
//! This crate is pure topology — node features live in `gnn-tensor` arrays
//! owned by the dataset and framework crates.
//!
//! # Example
//!
//! ```
//! use gnn_graph::Graph;
//!
//! // A directed triangle, then symmetrized for message passing.
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let u = g.to_symmetric();
//! assert_eq!(u.num_edges(), 6);
//! assert_eq!(u.in_degrees(), vec![2, 2, 2]);
//! ```

pub mod batch;
pub mod graph;
pub mod knn;

pub use batch::{disjoint_union, DisjointUnion};
pub use graph::{Csc, Graph};
pub use knn::knn_graph;
