//! k-nearest-neighbour graph construction.
//!
//! The paper's MNIST dataset converts images to graphs over SLIC superpixels;
//! following the benchmarking-gnns reference (Dwivedi et al.), each
//! superpixel connects to its k nearest neighbours in (x, y, intensity)
//! space. Brute force is exact and fast at superpixel counts (~70 nodes).

use crate::graph::Graph;

/// Builds a k-NN graph over points in `dim`-dimensional space.
///
/// `points` is row-major: point `i` is `points[i*dim..(i+1)*dim]`. Each node
/// `i` receives a directed in-edge from each of its `k` nearest neighbours
/// (excluding itself); ties are broken by index. If fewer than `k` other
/// points exist, all of them are used.
///
/// # Panics
///
/// Panics if `dim == 0` or `points.len()` is not a multiple of `dim`.
pub fn knn_graph(points: &[f32], dim: usize, k: usize) -> Graph {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(points.len() % dim, 0, "points length not a multiple of dim");
    let n = points.len() / dim;
    let mut src = Vec::with_capacity(n * k);
    let mut dst = Vec::with_capacity(n * k);
    let mut dists: Vec<(f32, u32)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        dists.clear();
        let pi = &points[i * dim..(i + 1) * dim];
        for j in 0..n {
            if j == i {
                continue;
            }
            let pj = &points[j * dim..(j + 1) * dim];
            let d2: f32 = pi.iter().zip(pj).map(|(&a, &b)| (a - b) * (a - b)).sum();
            dists.push((d2, j as u32));
        }
        let kk = k.min(dists.len());
        if kk > 0 && kk < dists.len() {
            dists.select_nth_unstable_by(kk - 1, |a, b| a.partial_cmp(b).expect("NaN distance"));
        }
        let mut chosen: Vec<(f32, u32)> = dists[..kk].to_vec();
        chosen.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        for &(_, j) in &chosen {
            src.push(j);
            dst.push(i as u32);
        }
    }
    Graph::new(n, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_corners_k1_connects_nearest() {
        // Unit square, slightly stretched so each corner's nearest is unique.
        let pts = [0.0, 0.0, 1.0, 0.1, 0.0, 1.1, 1.0, 1.3];
        let g = knn_graph(&pts, 2, 1);
        assert_eq!(g.num_edges(), 4);
        // Node 0's nearest is node 1 (dist^2 = 1.01 < 1.21).
        let in0: Vec<u32> = g.edges().filter(|&(_, d)| d == 0).map(|(s, _)| s).collect();
        assert_eq!(in0, vec![1]);
    }

    #[test]
    fn in_degree_is_k_when_enough_points() {
        let pts: Vec<f32> = (0..20)
            .flat_map(|i| [i as f32, (i * i % 7) as f32])
            .collect();
        let g = knn_graph(&pts, 2, 8);
        assert!(g.in_degrees().iter().all(|&d| d == 8));
    }

    #[test]
    fn no_self_loops() {
        let pts: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let g = knn_graph(&pts, 1, 3);
        assert!(g.edges().all(|(s, d)| s != d));
    }

    #[test]
    fn k_larger_than_n_uses_all_others() {
        let pts = [0.0, 1.0, 2.0];
        let g = knn_graph(&pts, 1, 10);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn bad_length_panics() {
        knn_graph(&[1.0, 2.0, 3.0], 2, 1);
    }
}
