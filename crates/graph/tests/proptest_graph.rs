//! Property-based tests of the graph substrate.

use gnn_graph::{disjoint_union, knn_graph, Graph};
use proptest::prelude::*;

fn edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Degree sums equal edge counts.
    #[test]
    fn degree_sums_match_edge_count(edges in edges_strategy(12, 40)) {
        let g = Graph::from_edges(12, &edges);
        let in_sum: u32 = g.in_degrees().iter().sum();
        let out_sum: u32 = g.out_degrees().iter().sum();
        prop_assert_eq!(in_sum as usize, g.num_edges());
        prop_assert_eq!(out_sum as usize, g.num_edges());
    }

    /// to_symmetric is idempotent and produces a symmetric edge set.
    #[test]
    fn symmetrize_idempotent(edges in edges_strategy(10, 30)) {
        let g = Graph::from_edges(10, &edges).to_symmetric();
        let set: std::collections::HashSet<(u32, u32)> = g.edges().collect();
        for &(s, d) in &set {
            prop_assert!(set.contains(&(d, s)), "missing reverse of ({s},{d})");
        }
        let again = g.to_symmetric();
        prop_assert_eq!(again.num_edges(), g.num_edges());
    }

    /// CSC holds exactly the COO edges, grouped by destination.
    #[test]
    fn csc_is_a_permutation_of_coo(edges in edges_strategy(9, 30)) {
        let g = Graph::from_edges(9, &edges);
        let csc = g.csc();
        let mut coo: Vec<(u32, u32)> = g.edges().collect();
        let mut from_csc: Vec<(u32, u32)> = (0..9)
            .flat_map(|d| {
                csc.in_sources(d).iter().map(move |&s| (s, d as u32))
            })
            .collect();
        coo.sort_unstable();
        from_csc.sort_unstable();
        prop_assert_eq!(coo, from_csc);
        // Edge ids are a permutation of 0..E.
        let mut ids: Vec<u32> = (0..9).flat_map(|d| csc.in_edges(d).to_vec()).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(ids, expect);
    }

    /// Disjoint union preserves node/edge counts and never crosses
    /// component boundaries.
    #[test]
    fn union_preserves_and_isolates(
        e1 in edges_strategy(5, 12),
        e2 in edges_strategy(7, 16),
    ) {
        let a = Graph::from_edges(5, &e1);
        let b = Graph::from_edges(7, &e2);
        let u = disjoint_union(&[&a, &b]);
        prop_assert_eq!(u.graph.num_nodes(), 12);
        prop_assert_eq!(u.graph.num_edges(), e1.len() + e2.len());
        for (s, d) in u.graph.edges() {
            prop_assert_eq!(s < 5, d < 5, "edge crosses components");
        }
        prop_assert_eq!(u.graph_ids.iter().filter(|&&g| g == 0).count(), 5);
        prop_assert_eq!(u.graph_ids.iter().filter(|&&g| g == 1).count(), 7);
        // Per-graph degree structure survives relabelling.
        let mut u_deg = u.graph.in_degrees();
        let tail = u_deg.split_off(5);
        prop_assert_eq!(u_deg, a.in_degrees());
        prop_assert_eq!(tail, b.in_degrees());
    }

    /// k-NN graphs: every node has in-degree min(k, n-1) and no self loops.
    #[test]
    fn knn_degree_and_no_self_loops(
        pts in proptest::collection::vec(-10.0f32..10.0, 6..40),
        k in 1usize..6,
    ) {
        // 2-D points: need an even number of coordinates.
        let pts = &pts[..pts.len() / 2 * 2];
        let n = pts.len() / 2;
        let g = knn_graph(pts, 2, k);
        let expect = k.min(n - 1) as u32;
        for (node, &d) in g.in_degrees().iter().enumerate() {
            prop_assert_eq!(d, expect, "node {} in-degree", node);
        }
        prop_assert!(g.edges().all(|(s, d)| s != d));
    }

    /// Self-loop insertion adds exactly the missing loops.
    #[test]
    fn self_loops_complete(edges in edges_strategy(8, 20)) {
        let g = Graph::from_edges(8, &edges);
        let with = g.with_self_loops();
        // Every node ends up with at least one loop...
        for n in 0..8u32 {
            prop_assert!(
                with.edges().any(|(s, d)| s == n && d == n),
                "node {n} missing self loop"
            );
        }
        // ...and exactly the missing loops were added.
        let had_loop = (0..8u32)
            .filter(|&n| g.edges().any(|(s, d)| s == n && d == n))
            .count();
        prop_assert_eq!(with.num_edges(), g.num_edges() + (8 - had_loop));
    }
}
