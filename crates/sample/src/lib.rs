//! Giant-graph sampling for the GNN framework performance study.
//!
//! The paper's five datasets are all full-batch-sized; production GNNs
//! (recommendation, fraud) train and serve by *neighbor sampling* over
//! graphs too large for device memory. This crate supplies that workload
//! class end to end:
//!
//! - [`rmat`] — seeded power-law RMAT generation to CSR, scaling to
//!   millions of nodes, with on-demand (hash-derived) features and labels
//!   so the dense feature matrix is never materialized.
//! - [`sampler`] — GraphSAGE-style per-node fan-out sampling and
//!   FastGCN-flavored layer-wise budgeted sampling, both pure functions of
//!   the seed so blocks replay bit-identically.
//! - [`spec`] — the named catalog of sampled cells (`rmat-1m`, ...) the
//!   sweep, the serving registry, and `gnn-bench sample` share.
//! - [`error`] — typed [`SampleConfigError`] construction errors.
//!
//! The framework-specific collate/transfer tax lives with each framework
//! (`rustyg::sampled`, `rgl::sampled`), the cache/placement pricing in
//! `gnn_device::feature_cache`, training in `gnn_train::sampled`, and
//! serving in `gnn_serve` — this crate owns only the graph and the math.

pub mod error;
pub mod rmat;
pub mod sampler;
pub mod spec;

pub use error::SampleConfigError;
pub use rmat::{RmatConfig, RmatGraph};
pub use sampler::{
    max_union_edges, max_union_nodes, sample_block, validate_fanouts, SampledBlock, SamplerKind,
};
pub use spec::SampleSpec;
