//! Typed configuration errors for the sampling subsystem.
//!
//! Generator and sampler construction never panics on bad input and never
//! returns `Result<_, String>`: every degenerate configuration maps to a
//! [`SampleConfigError`] variant, mirroring the `ServeConfigError` /
//! `WorkloadError` pattern in `gnn-serve`. The `Display` strings are the
//! diagnostics the `sample-config` lint pass and the `gnn-bench sample`
//! binary surface.

use std::fmt;

/// Everything that can be wrong with an RMAT generator, sampler, or cache
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleConfigError {
    /// The RMAT scale is zero — the graph would have one node.
    ZeroScale,
    /// The RMAT scale exceeds 31, overflowing `u32` node ids.
    ScaleTooLarge(u32),
    /// The edge factor is zero — the graph would have no edges.
    ZeroEdgeFactor,
    /// The RMAT quadrant weights are degenerate: non-finite, negative, or
    /// not summing to 1 (within 1e-6).
    BadRmatWeights {
        /// Quadrant probability a (top-left).
        a: f64,
        /// Quadrant probability b (top-right).
        b: f64,
        /// Quadrant probability c (bottom-left).
        c: f64,
        /// Quadrant probability d (bottom-right).
        d: f64,
    },
    /// The synthetic feature dimension is zero.
    ZeroFeatureDim,
    /// The synthetic label space is empty.
    ZeroClasses,
    /// The sampler has no fan-out list: zero hops samples nothing.
    NoFanouts,
    /// A hop's fan-out is zero — the frontier would die at that hop.
    ZeroFanout {
        /// Hop index (0 = the seeds' own neighbors).
        hop: usize,
    },
    /// The per-batch seed count is zero.
    ZeroBatchSeeds,
    /// A requested seed node is outside the graph's node range.
    SeedOutOfRange {
        /// The offending seed node id.
        seed: u32,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// The feature cache is larger than the feature matrix itself — the
    /// cache would never miss and the sweep point is meaningless.
    CacheExceedsFeatures {
        /// Configured cache capacity in rows.
        cache_rows: usize,
        /// Total feature rows (graph nodes).
        num_nodes: usize,
    },
    /// The placement model has zero partitions.
    ZeroPartitions,
    /// The home partition index is outside the partition count.
    HomePartitionOutOfRange {
        /// Configured home partition.
        home: usize,
        /// Configured partition count.
        partitions: usize,
    },
    /// A named spec is not in the catalog.
    UnknownSpec(String),
}

impl fmt::Display for SampleConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleConfigError::ZeroScale => write!(f, "rmat scale must be at least 1"),
            SampleConfigError::ScaleTooLarge(scale) => {
                write!(f, "rmat scale {scale} exceeds 31 (u32 node ids)")
            }
            SampleConfigError::ZeroEdgeFactor => write!(f, "edge factor must be at least 1"),
            SampleConfigError::BadRmatWeights { a, b, c, d } => write!(
                f,
                "rmat weights ({a}, {b}, {c}, {d}) must be non-negative and sum to 1"
            ),
            SampleConfigError::ZeroFeatureDim => write!(f, "feature dimension must be at least 1"),
            SampleConfigError::ZeroClasses => write!(f, "need at least one label class"),
            SampleConfigError::NoFanouts => write!(f, "sampler needs at least one hop fan-out"),
            SampleConfigError::ZeroFanout { hop } => {
                write!(f, "fan-out at hop {hop} must be at least 1")
            }
            SampleConfigError::ZeroBatchSeeds => write!(f, "batch seeds must be at least 1"),
            SampleConfigError::SeedOutOfRange { seed, num_nodes } => {
                write!(f, "seed node {seed} out of range for {num_nodes} nodes")
            }
            SampleConfigError::CacheExceedsFeatures {
                cache_rows,
                num_nodes,
            } => write!(
                f,
                "cache of {cache_rows} rows exceeds the {num_nodes}-row feature matrix"
            ),
            SampleConfigError::ZeroPartitions => write!(f, "need at least one partition"),
            SampleConfigError::HomePartitionOutOfRange { home, partitions } => {
                write!(
                    f,
                    "home partition {home} out of range for {partitions} partitions"
                )
            }
            SampleConfigError::UnknownSpec(name) => write!(f, "unknown sample spec `{name}`"),
        }
    }
}

impl std::error::Error for SampleConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            SampleConfigError::ZeroFanout { hop: 1 }.to_string(),
            "fan-out at hop 1 must be at least 1"
        );
        assert_eq!(
            SampleConfigError::SeedOutOfRange {
                seed: 9,
                num_nodes: 4
            }
            .to_string(),
            "seed node 9 out of range for 4 nodes"
        );
        assert_eq!(
            SampleConfigError::UnknownSpec("x".into()).to_string(),
            "unknown sample spec `x`"
        );
    }
}
