//! GraphSAGE-style neighbor sampling and layer-wise (budgeted) sampling.
//!
//! Both samplers expand a set of seed nodes hop by hop and return one
//! [`SampledBlock`]: the union subgraph with **seeds first** in the node
//! list (so a model head can read logits for rows `0..num_seeds` directly)
//! and edges in local indices oriented source→seedward, matching the
//! message direction the frameworks aggregate.
//!
//! - [`SamplerKind::Neighbor`] — per-node fan-outs: every frontier node
//!   draws up to `fanouts[h]` of its in-neighbors (with replacement,
//!   deduplicated), the GraphSAGE recipe. Union size is bounded by
//!   [`max_union_nodes`].
//! - [`SamplerKind::LayerWise`] — a FastGCN-flavored shared budget: hop
//!   `h` admits at most `frontier_len × fanouts[h]` *draws total*, spread
//!   over the frontier, which caps the union far below per-node fan-outs
//!   on hub-heavy power-law graphs.
//!
//! Sampling is a pure function of `(graph seed, salt, seeds, fanouts)`:
//! the RNG is derived per call, so a retried training step replays the
//! identical block and two runs of the same sweep are bit-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::error::SampleConfigError;
use crate::rmat::RmatGraph;

/// Which expansion strategy a sampled loader uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Per-node fan-out sampling (GraphSAGE).
    Neighbor,
    /// Per-layer shared-budget sampling (FastGCN-flavored).
    LayerWise,
}

impl SamplerKind {
    /// Stable label used in cell paths, CSVs, and traces.
    pub fn label(self) -> &'static str {
        match self {
            SamplerKind::Neighbor => "neighbor",
            SamplerKind::LayerWise => "layerwise",
        }
    }

    /// Both kinds, in sweep order.
    pub fn all() -> [SamplerKind; 2] {
        [SamplerKind::Neighbor, SamplerKind::LayerWise]
    }

    /// Parses a label back into a kind (`None` for unknown labels).
    pub fn parse(label: &str) -> Option<SamplerKind> {
        match label {
            "neighbor" => Some(SamplerKind::Neighbor),
            "layerwise" => Some(SamplerKind::LayerWise),
            _ => None,
        }
    }
}

/// One sampled union subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledBlock {
    /// Global node ids of the union, seeds first (in seed order).
    pub nodes: Vec<u32>,
    /// How many leading entries of `nodes` are seeds.
    pub num_seeds: usize,
    /// Edge sources as local indices into `nodes`.
    pub src: Vec<u32>,
    /// Edge destinations as local indices into `nodes`.
    pub dst: Vec<u32>,
    /// Nodes newly discovered at each hop (diagnostics / fan-out curves).
    pub hop_new_nodes: Vec<usize>,
}

impl SampledBlock {
    /// Union node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sampled edge count.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

/// Closed-form upper bound on the union node count: seeds plus the
/// geometric frontier growth `S·f1 + S·f1·f2 + ...`. Holds for both
/// sampler kinds (layer-wise admits strictly fewer draws). Saturates
/// instead of overflowing.
pub fn max_union_nodes(num_seeds: usize, fanouts: &[usize]) -> u64 {
    let mut total = num_seeds as u64;
    let mut frontier = num_seeds as u64;
    for &f in fanouts {
        frontier = frontier.saturating_mul(f as u64);
        total = total.saturating_add(frontier);
    }
    total
}

/// Closed-form upper bound on sampled edges: one edge per draw,
/// `S·f1 + S·f1·f2 + ...`.
pub fn max_union_edges(num_seeds: usize, fanouts: &[usize]) -> u64 {
    max_union_nodes(num_seeds, fanouts) - num_seeds as u64
}

/// Validates a fan-out list.
///
/// # Errors
///
/// [`SampleConfigError::NoFanouts`] for an empty list,
/// [`SampleConfigError::ZeroFanout`] naming the first zero hop.
pub fn validate_fanouts(fanouts: &[usize]) -> Result<(), SampleConfigError> {
    if fanouts.is_empty() {
        return Err(SampleConfigError::NoFanouts);
    }
    for (hop, &f) in fanouts.iter().enumerate() {
        if f == 0 {
            return Err(SampleConfigError::ZeroFanout { hop });
        }
    }
    Ok(())
}

/// SplitMix64 mix for the per-call RNG derivation.
fn mix(mut x: u64, y: u64) -> u64 {
    x ^= y.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// Samples the union block for `seeds` under `fanouts`.
///
/// `salt` distinguishes call sites (epoch number for training, request
/// hash for serving); the block is a pure function of
/// `(graph.seed, salt, seeds, fanouts, kind)`.
///
/// # Errors
///
/// Returns a typed error for empty/zero fan-outs, an empty seed list, or
/// a seed outside the graph's node range.
pub fn sample_block(
    graph: &RmatGraph,
    seeds: &[u32],
    fanouts: &[usize],
    kind: SamplerKind,
    salt: u64,
) -> Result<SampledBlock, SampleConfigError> {
    validate_fanouts(fanouts)?;
    if seeds.is_empty() {
        return Err(SampleConfigError::ZeroBatchSeeds);
    }
    let n = graph.num_nodes();
    for &s in seeds {
        if s as usize >= n {
            return Err(SampleConfigError::SeedOutOfRange {
                seed: s,
                num_nodes: n,
            });
        }
    }

    let mut key = mix(graph.config().seed, salt ^ 0x5A17);
    for &s in seeds {
        key = mix(key, u64::from(s));
    }
    let mut rng = StdRng::seed_from_u64(key);

    let mut nodes: Vec<u32> = Vec::with_capacity(seeds.len() * 4);
    let mut local: HashMap<u32, u32> = HashMap::with_capacity(seeds.len() * 4);
    for &s in seeds {
        if local.insert(s, nodes.len() as u32).is_none() {
            nodes.push(s);
        }
    }
    let num_seeds = nodes.len();

    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut hop_new_nodes = Vec::with_capacity(fanouts.len());
    // Frontier in local indices: the nodes expanded at the next hop.
    let mut frontier: Vec<u32> = (0..num_seeds as u32).collect();

    for &fanout in fanouts {
        let before = nodes.len();
        let mut next: Vec<u32> = Vec::new();
        match kind {
            SamplerKind::Neighbor => {
                for &lv in &frontier {
                    let v = nodes[lv as usize];
                    let deg = graph.degree(v);
                    if deg == 0 {
                        continue;
                    }
                    let draws = deg.min(fanout);
                    let nbrs = graph.neighbors(v);
                    for _ in 0..draws {
                        let u = nbrs[rng.gen_range(0..deg)];
                        let lu = *local.entry(u).or_insert_with(|| {
                            nodes.push(u);
                            next.push((nodes.len() - 1) as u32);
                            (nodes.len() - 1) as u32
                        });
                        src.push(lu);
                        dst.push(lv);
                    }
                }
            }
            SamplerKind::LayerWise => {
                // Shared budget: frontier_len × fanout draws across the
                // whole layer, round-robin over the frontier.
                let budget = frontier.len() * fanout;
                for i in 0..budget {
                    let lv = frontier[i % frontier.len()];
                    let v = nodes[lv as usize];
                    let deg = graph.degree(v);
                    if deg == 0 {
                        continue;
                    }
                    let u = graph.neighbors(v)[rng.gen_range(0..deg)];
                    let lu = *local.entry(u).or_insert_with(|| {
                        nodes.push(u);
                        next.push((nodes.len() - 1) as u32);
                        (nodes.len() - 1) as u32
                    });
                    src.push(lu);
                    dst.push(lv);
                }
            }
        }
        hop_new_nodes.push(nodes.len() - before);
        if next.is_empty() {
            // Every draw landed on an already-known node: the next hop has
            // no new frontier to expand, so deeper hops sample nothing.
            break;
        }
        frontier = next;
    }

    Ok(SampledBlock {
        nodes,
        num_seeds,
        src,
        dst,
        hop_new_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatConfig;

    fn graph() -> RmatGraph {
        RmatGraph::generate(RmatConfig::graph500(10, 8, 11)).unwrap()
    }

    #[test]
    fn seeds_come_first_and_block_is_consistent() {
        let g = graph();
        let seeds = [5u32, 9, 700];
        let block = sample_block(&g, &seeds, &[4, 2], SamplerKind::Neighbor, 0).unwrap();
        assert_eq!(block.num_seeds, 3);
        assert_eq!(&block.nodes[..3], &seeds);
        assert_eq!(block.src.len(), block.dst.len());
        for (&s, &d) in block.src.iter().zip(&block.dst) {
            assert!((s as usize) < block.num_nodes());
            assert!((d as usize) < block.num_nodes());
        }
        let bound = max_union_nodes(3, &[4, 2]);
        assert!(block.num_nodes() as u64 <= bound);
        assert!(block.num_edges() as u64 <= max_union_edges(3, &[4, 2]));
    }

    #[test]
    fn sampling_is_deterministic_per_salt() {
        let g = graph();
        let seeds = [1u32, 2, 3, 4];
        let a = sample_block(&g, &seeds, &[3, 3], SamplerKind::Neighbor, 7).unwrap();
        let b = sample_block(&g, &seeds, &[3, 3], SamplerKind::Neighbor, 7).unwrap();
        assert_eq!(a, b);
        let c = sample_block(&g, &seeds, &[3, 3], SamplerKind::Neighbor, 8).unwrap();
        assert_ne!(a, c, "different salts sample different blocks");
    }

    #[test]
    fn layerwise_respects_the_shared_budget() {
        let g = graph();
        let seeds: Vec<u32> = (0..32).collect();
        let lw = sample_block(&g, &seeds, &[8, 8], SamplerKind::LayerWise, 1).unwrap();
        // Each hop admits at most frontier_len × fanout draws, and each
        // draw adds one edge and at most one new node.
        assert!(lw.num_edges() as u64 <= max_union_edges(32, &[8, 8]));
        assert!(lw.num_nodes() as u64 <= max_union_nodes(32, &[8, 8]));
        assert_ne!(
            lw,
            sample_block(&g, &seeds, &[8, 8], SamplerKind::Neighbor, 1).unwrap(),
            "the two sampler kinds draw different blocks"
        );
    }

    #[test]
    fn duplicate_seeds_are_deduplicated() {
        let g = graph();
        let block = sample_block(&g, &[5, 5, 5], &[2], SamplerKind::Neighbor, 0).unwrap();
        assert_eq!(block.num_seeds, 1);
    }

    #[test]
    fn typed_errors_for_degenerate_requests() {
        let g = graph();
        assert_eq!(
            sample_block(&g, &[1], &[], SamplerKind::Neighbor, 0),
            Err(SampleConfigError::NoFanouts)
        );
        assert_eq!(
            sample_block(&g, &[1], &[2, 0], SamplerKind::Neighbor, 0),
            Err(SampleConfigError::ZeroFanout { hop: 1 })
        );
        assert_eq!(
            sample_block(&g, &[], &[2], SamplerKind::Neighbor, 0),
            Err(SampleConfigError::ZeroBatchSeeds)
        );
        assert_eq!(
            sample_block(&g, &[5000], &[2], SamplerKind::Neighbor, 0),
            Err(SampleConfigError::SeedOutOfRange {
                seed: 5000,
                num_nodes: 1024
            })
        );
    }

    #[test]
    fn union_bound_saturates() {
        assert_eq!(max_union_nodes(1, &[2]), 3);
        assert_eq!(max_union_nodes(2, &[3, 2]), 2 + 6 + 12);
        // usize::MAX-ish fanouts saturate rather than overflow.
        let huge = max_union_nodes(usize::MAX, &[usize::MAX, usize::MAX]);
        assert_eq!(huge, u64::MAX);
    }
}
