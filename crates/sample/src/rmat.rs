//! Seeded RMAT (recursive-matrix) graph generation to CSR adjacency.
//!
//! The generator follows the Graph500 recipe: each edge picks one of four
//! quadrants per scale bit with probabilities `(a, b, c, d)`, which yields
//! the power-law degree distribution production graphs (social,
//! recommendation, fraud) exhibit. The output is stored as CSR over
//! *incoming* edges — `neighbors(v)` are the message sources of `v` —
//! because that is exactly the set a GraphSAGE-style sampler expands.
//!
//! Two properties matter more than realism here:
//!
//! - **Determinism**: the same [`RmatConfig`] (including its seed)
//!   produces a bit-identical graph on every run, platform, and rerun —
//!   the property the determinism proptests and CI `cmp` checks enforce.
//! - **No materialized features**: a million-node graph at 64 features
//!   would be a 256 MB dense matrix. Features and labels are derived
//!   on demand from a counter-based hash ([`RmatGraph::feature_into`],
//!   [`RmatGraph::label`]), so only sampled unions are ever materialized.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::SampleConfigError;

/// Configuration of one synthetic RMAT graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the node count (`scale` 20 = 1,048,576 nodes).
    pub scale: u32,
    /// Edges per node (total edges = `edge_factor << scale`).
    pub edge_factor: usize,
    /// Quadrant probability a (top-left: hub→hub).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Quadrant probability d (bottom-right).
    pub d: f64,
    /// Synthetic feature dimension.
    pub feature_dim: usize,
    /// Synthetic label classes.
    pub num_classes: usize,
    /// Generator seed: everything (edges, features, labels) derives from it.
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500 quadrant weights at the given scale/edge factor.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            feature_dim: 64,
            num_classes: 8,
            seed,
        }
    }

    /// Node count (`1 << scale`).
    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }

    /// Edge count (`edge_factor << scale`).
    pub fn num_edges(&self) -> usize {
        self.edge_factor << self.scale
    }

    /// Total bytes of the (never materialized) dense feature matrix.
    pub fn feature_bytes_total(&self) -> u64 {
        self.num_nodes() as u64 * self.feature_dim as u64 * 4
    }

    /// Checks the configuration for degeneracy.
    ///
    /// # Errors
    ///
    /// Returns the [`SampleConfigError`] naming the first bad field.
    pub fn validate(&self) -> Result<(), SampleConfigError> {
        if self.scale == 0 {
            return Err(SampleConfigError::ZeroScale);
        }
        if self.scale > 31 {
            return Err(SampleConfigError::ScaleTooLarge(self.scale));
        }
        if self.edge_factor == 0 {
            return Err(SampleConfigError::ZeroEdgeFactor);
        }
        let sum = self.a + self.b + self.c + self.d;
        let finite = [self.a, self.b, self.c, self.d]
            .iter()
            .all(|w| w.is_finite() && *w >= 0.0);
        if !finite || (sum - 1.0).abs() > 1e-6 {
            return Err(SampleConfigError::BadRmatWeights {
                a: self.a,
                b: self.b,
                c: self.c,
                d: self.d,
            });
        }
        if self.feature_dim == 0 {
            return Err(SampleConfigError::ZeroFeatureDim);
        }
        if self.num_classes == 0 {
            return Err(SampleConfigError::ZeroClasses);
        }
        Ok(())
    }
}

/// SplitMix64: the counter-based hash behind on-demand features/labels.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A generated RMAT graph in CSR (incoming-edge) form.
#[derive(Debug, Clone)]
pub struct RmatGraph {
    cfg: RmatConfig,
    /// CSR row pointers over destinations: `indptr[v]..indptr[v+1]` indexes
    /// `adj` with the in-neighbors (message sources) of `v`.
    indptr: Vec<u64>,
    /// Flattened in-neighbor lists.
    adj: Vec<u32>,
}

impl RmatGraph {
    /// Generates the graph for `cfg`. Deterministic per seed: the edge
    /// stream is a pure function of `cfg.seed`.
    ///
    /// # Errors
    ///
    /// Returns the config's validation error; generation itself cannot fail.
    pub fn generate(cfg: RmatConfig) -> Result<RmatGraph, SampleConfigError> {
        cfg.validate()?;
        let n = cfg.num_nodes();
        let m = cfg.num_edges();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Integer thresholds so quadrant choice needs one u64 draw per bit.
        let ta = (cfg.a * u64::MAX as f64) as u64;
        let tb = ((cfg.a + cfg.b) * u64::MAX as f64) as u64;
        let tc = ((cfg.a + cfg.b + cfg.c) * u64::MAX as f64) as u64;

        let mut src = vec![0u32; m];
        let mut dst = vec![0u32; m];
        for i in 0..m {
            let mut u = 0u32;
            let mut v = 0u32;
            for _ in 0..cfg.scale {
                let r = rng.next_u64();
                let (ubit, vbit) = if r < ta {
                    (0, 0)
                } else if r < tb {
                    (0, 1)
                } else if r < tc {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | ubit;
                v = (v << 1) | vbit;
            }
            src[i] = u;
            dst[i] = v;
        }

        // Counting sort by destination into CSR.
        let mut counts = vec![0u64; n + 1];
        for &v in &dst {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut adj = vec![0u32; m];
        for i in 0..m {
            let v = dst[i] as usize;
            adj[cursor[v] as usize] = src[i];
            cursor[v] += 1;
        }

        Ok(RmatGraph { cfg, indptr, adj })
    }

    /// The generating configuration.
    pub fn config(&self) -> &RmatConfig {
        &self.cfg
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        self.cfg.num_edges()
    }

    /// In-neighbors (message sources) of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.indptr[v as usize] as usize;
        let hi = self.indptr[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// In-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Fills `out` (length `feature_dim`) with node `v`'s synthetic
    /// features: a hash-derived stream in `[-0.5, 0.5)` plus a `+1.0` bump
    /// on the class-owned dimension block, so labels are learnable from
    /// features alone.
    pub fn feature_into(&self, v: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.cfg.feature_dim);
        let base = splitmix64(self.cfg.seed ^ (u64::from(v) << 1) ^ 0xFEA7);
        for (j, slot) in out.iter_mut().enumerate() {
            let h = splitmix64(base.wrapping_add(j as u64));
            *slot = (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
        }
        let label = self.label(v) as usize;
        let block = (self.cfg.feature_dim / self.cfg.num_classes).max(1);
        let start = (label * block).min(self.cfg.feature_dim - 1);
        let end = (start + block).min(self.cfg.feature_dim);
        for slot in &mut out[start..end] {
            *slot += 1.0;
        }
    }

    /// Node `v`'s synthetic label in `0..num_classes`.
    pub fn label(&self, v: u32) -> u32 {
        (splitmix64(self.cfg.seed ^ (u64::from(v) << 1) ^ 0x1ABE1) % self.cfg.num_classes as u64)
            as u32
    }

    /// A deterministic pool of `count` distinct node ids, hash-scattered
    /// over the graph; `salt` separates train/validation pools.
    pub fn seed_pool(&self, count: usize, salt: u64) -> Vec<u32> {
        let n = self.num_nodes();
        let count = count.min(n);
        let mut pool = Vec::with_capacity(count);
        let mut seen = vec![false; n];
        let mut i = 0u64;
        while pool.len() < count {
            let v = (splitmix64(self.cfg.seed ^ salt.wrapping_add(i)) % n as u64) as u32;
            if !seen[v as usize] {
                seen[v as usize] = true;
                pool.push(v);
            }
            i += 1;
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RmatConfig {
        RmatConfig::graph500(10, 4, 7)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g1 = RmatGraph::generate(tiny()).unwrap();
        let g2 = RmatGraph::generate(tiny()).unwrap();
        assert_eq!(g1.indptr, g2.indptr);
        assert_eq!(g1.adj, g2.adj);
        let other = RmatGraph::generate(RmatConfig::graph500(10, 4, 8)).unwrap();
        assert_ne!(g1.adj, other.adj, "different seeds should differ");
    }

    #[test]
    fn csr_is_consistent() {
        let g = RmatGraph::generate(tiny()).unwrap();
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 4096);
        assert_eq!(*g.indptr.last().unwrap() as usize, g.num_edges());
        let total: usize = (0..g.num_nodes() as u32).map(|v| g.degree(v)).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn degrees_are_skewed() {
        // RMAT with Graph500 weights concentrates edges on low-id hubs.
        let g = RmatGraph::generate(tiny()).unwrap();
        let max_deg = (0..g.num_nodes() as u32)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        let mean = g.num_edges() / g.num_nodes();
        assert!(
            max_deg > 4 * mean,
            "power-law graph should have hubs: max {max_deg}, mean {mean}"
        );
    }

    #[test]
    fn features_and_labels_are_on_demand_and_stable() {
        let g = RmatGraph::generate(tiny()).unwrap();
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        g.feature_into(3, &mut a);
        g.feature_into(3, &mut b);
        assert_eq!(a, b);
        assert!(g.label(3) < 8);
        // The label's dimension block carries the +1 bump.
        let block = 64 / 8;
        let start = g.label(3) as usize * block;
        assert!(a[start] >= 0.5, "bumped dims sit above the noise band");
    }

    #[test]
    fn seed_pool_is_distinct_and_deterministic() {
        let g = RmatGraph::generate(tiny()).unwrap();
        let p1 = g.seed_pool(100, 1);
        let p2 = g.seed_pool(100, 1);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "pool ids are distinct");
        assert_ne!(p1, g.seed_pool(100, 2), "salt separates pools");
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut cfg = tiny();
        cfg.scale = 0;
        assert_eq!(cfg.validate(), Err(SampleConfigError::ZeroScale));
        let mut cfg = tiny();
        cfg.scale = 40;
        assert_eq!(cfg.validate(), Err(SampleConfigError::ScaleTooLarge(40)));
        let mut cfg = tiny();
        cfg.edge_factor = 0;
        assert_eq!(cfg.validate(), Err(SampleConfigError::ZeroEdgeFactor));
        let mut cfg = tiny();
        cfg.a = 0.9;
        assert!(matches!(
            cfg.validate(),
            Err(SampleConfigError::BadRmatWeights { .. })
        ));
        let mut cfg = tiny();
        cfg.feature_dim = 0;
        assert_eq!(cfg.validate(), Err(SampleConfigError::ZeroFeatureDim));
        let mut cfg = tiny();
        cfg.num_classes = 0;
        assert_eq!(cfg.validate(), Err(SampleConfigError::ZeroClasses));
    }
}
