//! The named catalog of giant-graph sampling cells.
//!
//! A [`SampleSpec`] bundles everything one sampled cell needs — the RMAT
//! graph, the fan-out schedule, the per-batch seed count, and the
//! feature-cache/partition placement policy — under a stable name that
//! appears in cell paths (`sample/rmat-1m/SAGE/PyG`), CSV rows, and lint
//! findings. The catalog is closed so a path component always resolves
//! to the same graph on every machine.

use crate::error::SampleConfigError;
use crate::rmat::RmatConfig;
use crate::sampler::{max_union_edges, max_union_nodes, validate_fanouts};

/// One named sampled-workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSpec {
    /// Catalog name (the cell path's dataset component).
    pub name: &'static str,
    /// The synthetic graph.
    pub rmat: RmatConfig,
    /// Per-hop fan-outs, seed-outward.
    pub fanouts: Vec<usize>,
    /// Seed nodes per training mini-batch.
    pub batch_seeds: usize,
    /// Device feature-cache capacity in rows (0 = no cache).
    pub cache_rows: usize,
    /// Host partitions the features are placed across.
    pub partitions: usize,
    /// The partition the device is attached to.
    pub home_partition: usize,
}

impl SampleSpec {
    /// The full catalog, in sweep order.
    ///
    /// - `rmat-1m` — the million-node headline cell (scale 20, edge
    ///   factor 8): features never fit on-device, the cache earns its keep.
    /// - `rmat-64k` — a mid-size cell for CI-speed sweeps.
    /// - `rmat-4k` — a tiny cell for unit tests and the training sweep.
    pub fn catalog() -> Vec<SampleSpec> {
        vec![
            SampleSpec {
                name: "rmat-1m",
                rmat: RmatConfig::graph500(20, 8, 0x6e1),
                fanouts: vec![10, 5],
                batch_seeds: 512,
                cache_rows: 65_536,
                partitions: 4,
                home_partition: 0,
            },
            SampleSpec {
                name: "rmat-64k",
                rmat: RmatConfig::graph500(16, 8, 0x6e2),
                fanouts: vec![8, 4],
                batch_seeds: 256,
                cache_rows: 8_192,
                partitions: 2,
                home_partition: 0,
            },
            SampleSpec {
                name: "rmat-4k",
                rmat: RmatConfig::graph500(12, 4, 0x6e3),
                fanouts: vec![4, 2],
                batch_seeds: 64,
                cache_rows: 512,
                partitions: 2,
                home_partition: 0,
            },
        ]
    }

    /// Catalog names, in sweep order.
    pub fn names() -> Vec<&'static str> {
        Self::catalog().into_iter().map(|s| s.name).collect()
    }

    /// Looks a spec up by name.
    ///
    /// # Errors
    ///
    /// [`SampleConfigError::UnknownSpec`] when the name is not cataloged.
    pub fn get(name: &str) -> Result<SampleSpec, SampleConfigError> {
        Self::catalog()
            .into_iter()
            .find(|s| s.name == name)
            .ok_or_else(|| SampleConfigError::UnknownSpec(name.to_owned()))
    }

    /// Validates the whole spec (RMAT weights, fan-outs, batch, cache,
    /// placement).
    ///
    /// # Errors
    ///
    /// Returns the first failing field's [`SampleConfigError`].
    pub fn validate(&self) -> Result<(), SampleConfigError> {
        self.rmat.validate()?;
        validate_fanouts(&self.fanouts)?;
        if self.batch_seeds == 0 {
            return Err(SampleConfigError::ZeroBatchSeeds);
        }
        if self.cache_rows > self.rmat.num_nodes() {
            return Err(SampleConfigError::CacheExceedsFeatures {
                cache_rows: self.cache_rows,
                num_nodes: self.rmat.num_nodes(),
            });
        }
        if self.partitions == 0 {
            return Err(SampleConfigError::ZeroPartitions);
        }
        if self.home_partition >= self.partitions {
            return Err(SampleConfigError::HomePartitionOutOfRange {
                home: self.home_partition,
                partitions: self.partitions,
            });
        }
        Ok(())
    }

    /// Upper bound on a training batch's union node count.
    pub fn max_batch_nodes(&self) -> u64 {
        max_union_nodes(self.batch_seeds, &self.fanouts)
    }

    /// Upper bound on a training batch's sampled edge count.
    pub fn max_batch_edges(&self) -> u64 {
        max_union_edges(self.batch_seeds, &self.fanouts)
    }

    /// Feature-row bytes (one cache row).
    pub fn row_bytes(&self) -> u64 {
        self.rmat.feature_dim as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_specs_all_validate() {
        let specs = SampleSpec::catalog();
        assert_eq!(specs.len(), 3);
        for spec in &specs {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn headline_cell_is_a_million_nodes() {
        let spec = SampleSpec::get("rmat-1m").unwrap();
        assert_eq!(spec.rmat.num_nodes(), 1 << 20);
        assert!(spec.rmat.num_edges() >= 8 << 20);
        // The cache holds a fraction of the features, not all of them.
        assert!(spec.cache_rows < spec.rmat.num_nodes());
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert_eq!(
            SampleSpec::get("rmat-9000"),
            Err(SampleConfigError::UnknownSpec("rmat-9000".into()))
        );
    }

    #[test]
    fn validate_catches_cache_and_placement_degeneracy() {
        let mut spec = SampleSpec::get("rmat-4k").unwrap();
        spec.cache_rows = spec.rmat.num_nodes() + 1;
        assert!(matches!(
            spec.validate(),
            Err(SampleConfigError::CacheExceedsFeatures { .. })
        ));
        let mut spec = SampleSpec::get("rmat-4k").unwrap();
        spec.partitions = 0;
        assert_eq!(spec.validate(), Err(SampleConfigError::ZeroPartitions));
        let mut spec = SampleSpec::get("rmat-4k").unwrap();
        spec.home_partition = 5;
        assert!(matches!(
            spec.validate(),
            Err(SampleConfigError::HomePartitionOutOfRange { .. })
        ));
    }
}
