//! Determinism guarantees of the sampling subsystem, property-tested.
//!
//! Everything downstream — byte-reproducible `sample_metrics.csv`,
//! checkpoint/resume of sampled training, replayable serving — rests on
//! two facts these tests pin down over random configurations:
//!
//! 1. an [`RmatConfig`] (seed included) generates a bit-identical graph
//!    every time, and
//! 2. a sampled block is a pure function of
//!    `(graph seed, salt, seeds, fanouts, kind)`.
//!
//! Divergence (different seeds/salts produce different artifacts) is
//! checked on fixed configs rather than property-wide, because a fan-out
//! wider than every frontier degree legitimately collapses both sampler
//! kinds to "take everything", where the salt cannot matter.

use gnn_sample::{
    max_union_edges, max_union_nodes, sample_block, RmatConfig, RmatGraph, SamplerKind,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = RmatConfig> {
    (
        4u32..=8,
        2usize..=8,
        2usize..=8,
        1usize..=4,
        0u64..=u64::MAX,
    )
        .prop_map(|(scale, edge_factor, num_classes, dim_mul, seed)| {
            let mut cfg = RmatConfig::graph500(scale, edge_factor, seed);
            cfg.num_classes = num_classes;
            cfg.feature_dim = num_classes * dim_mul;
            cfg
        })
}

fn fanouts_strategy() -> impl Strategy<Value = Vec<usize>> {
    vec(1usize..=6, 1..=3)
}

fn kind_strategy() -> impl Strategy<Value = SamplerKind> {
    (0usize..SamplerKind::all().len()).prop_map(|i| SamplerKind::all()[i])
}

/// Every accessor-visible part of two graphs agrees: adjacency, features,
/// labels. (Fields are private; the accessors are the public contract.)
fn assert_same_graph(g1: &RmatGraph, g2: &RmatGraph) {
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    assert_eq!(g1.num_edges(), g2.num_edges());
    let dim = g1.config().feature_dim;
    let mut f1 = vec![0.0f32; dim];
    let mut f2 = vec![0.0f32; dim];
    for v in 0..g1.num_nodes() as u32 {
        assert_eq!(g1.neighbors(v), g2.neighbors(v), "adjacency of {v}");
        assert_eq!(g1.label(v), g2.label(v), "label of {v}");
        g1.feature_into(v, &mut f1);
        g2.feature_into(v, &mut f2);
        assert_eq!(
            f1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            f2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "features of {v}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The same config generates a bit-identical graph: every adjacency
    /// list, every feature vector (compared as bits), every label.
    #[test]
    fn identical_configs_generate_bit_identical_graphs(cfg in config_strategy()) {
        let g1 = RmatGraph::generate(cfg).unwrap();
        let g2 = RmatGraph::generate(cfg).unwrap();
        assert_same_graph(&g1, &g2);
    }

    /// A sampled block replays exactly, and always respects its contract:
    /// seeds first in seed order, local edge indices in range, union no
    /// larger than the closed-form fan-out bound.
    #[test]
    fn sampled_blocks_replay_and_respect_their_bounds(
        cfg in config_strategy(),
        fanouts in fanouts_strategy(),
        kind in kind_strategy(),
        count in 1usize..=8,
        pool_salt in 0u64..=u64::MAX,
        salt in 0u64..=u64::MAX,
    ) {
        let g = RmatGraph::generate(cfg).unwrap();
        let seeds = g.seed_pool(count, pool_salt);
        prop_assert_eq!(seeds.len(), count);
        prop_assert!(seeds.iter().all(|&s| (s as usize) < g.num_nodes()));
        prop_assert_eq!(&seeds, &g.seed_pool(count, pool_salt));

        let b1 = sample_block(&g, &seeds, &fanouts, kind, salt).unwrap();
        let b2 = sample_block(&g, &seeds, &fanouts, kind, salt).unwrap();
        prop_assert_eq!(&b1, &b2);

        prop_assert_eq!(b1.num_seeds, seeds.len());
        prop_assert_eq!(&b1.nodes[..b1.num_seeds], &seeds[..]);
        prop_assert!(b1.num_nodes() as u64 <= max_union_nodes(seeds.len(), &fanouts));
        prop_assert!(b1.num_edges() as u64 <= max_union_edges(seeds.len(), &fanouts));
        prop_assert_eq!(b1.src.len(), b1.dst.len());
        let n = b1.num_nodes() as u32;
        prop_assert!(b1.src.iter().all(|&i| i < n));
        prop_assert!(b1.dst.iter().all(|&i| i < n));
        // hop_new_nodes counts per-hop discoveries (seeds excluded) and may
        // stop early when a hop finds nothing new.
        prop_assert_eq!(
            b1.hop_new_nodes.iter().sum::<usize>(),
            b1.num_nodes() - b1.num_seeds
        );
        prop_assert!(b1.hop_new_nodes.len() <= fanouts.len());
    }

    /// A block is a *pure* function of its inputs: recomputing it on a
    /// freshly generated copy of the graph gives the same answer, for both
    /// sampler kinds on the same draw.
    #[test]
    fn blocks_survive_graph_regeneration(
        cfg in config_strategy(),
        fanouts in fanouts_strategy(),
        count in 1usize..=8,
        salt in 0u64..=u64::MAX,
    ) {
        let g1 = RmatGraph::generate(cfg).unwrap();
        let g2 = RmatGraph::generate(cfg).unwrap();
        let seeds = g1.seed_pool(count, salt);
        for kind in SamplerKind::all() {
            prop_assert_eq!(
                sample_block(&g1, &seeds, &fanouts, kind, salt).unwrap(),
                sample_block(&g2, &seeds, &fanouts, kind, salt).unwrap()
            );
        }
    }
}

/// Different generator seeds give different graphs, and on a graph with
/// degrees above the fan-out, different salts give different blocks. Fixed
/// configs: divergence is near-certain but not structural, so we pick a
/// witness where it is known to hold rather than asserting it for all
/// random draws.
#[test]
fn different_seeds_and_salts_actually_diverge() {
    let c1 = RmatConfig::graph500(10, 8, 1);
    let c2 = RmatConfig::graph500(10, 8, 2);
    let g1 = RmatGraph::generate(c1).unwrap();
    let g2 = RmatGraph::generate(c2).unwrap();
    assert!(
        (0..g1.num_nodes() as u32).any(|v| g1.neighbors(v) != g2.neighbors(v)),
        "seeds 1 and 2 generated identical adjacency"
    );
    assert!(
        (0..g1.num_nodes() as u32).any(|v| g1.label(v) != g2.label(v)),
        "seeds 1 and 2 generated identical labels"
    );

    let seeds = g1.seed_pool(16, 7);
    for kind in SamplerKind::all() {
        let a = sample_block(&g1, &seeds, &[2, 2], kind, 0).unwrap();
        let b = sample_block(&g1, &seeds, &[2, 2], kind, 1).unwrap();
        assert_ne!(
            a,
            b,
            "{}: salts 0 and 1 sampled the same block",
            kind.label()
        );
    }
}
