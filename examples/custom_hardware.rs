//! What changes on newer hardware? The same GCN training batch priced under
//! the paper's RTX 2080Ti, an A100, and a near-zero-launch-cost device.
//! Compute-side speedups barely move the epoch — GNN training is host- and
//! loading-bound, so the study's conclusions transfer.
//!
//! ```sh
//! cargo run --release --example custom_hardware
//! ```

use gnn_datasets::TudSpec;
use gnn_device::{CostModel, Session};
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, Loader, ModelBatch, ModelKind};
use gnn_tensor::cross_entropy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_under(model_name: &str, cost: CostModel) -> (f64, f64) {
    let ds = TudSpec::enzymes().scaled(0.3).generate(21);
    let loader = RustygLoader::new(&ds);
    let idx: Vec<u32> = (0..64).collect();
    let handle = gnn_device::session::install(Session::new(cost));
    let mut rng = StdRng::seed_from_u64(7);
    let stack = build::graph_model_rustyg(ModelKind::Gcn, ds.feature_dim, ds.num_classes, &mut rng);
    let batch = loader.load(&idx);
    let logits = stack.forward(&batch, true);
    cross_entropy(&logits, batch.labels()).backward();
    let report = gnn_device::session::finish(handle);
    println!(
        "{model_name:<22} batch {:>7.2} ms   utilization {:>5.1}%",
        report.total_time * 1e3,
        report.utilization() * 100.0
    );
    (report.total_time, report.utilization())
}

fn main() {
    println!("One GCN training batch (64 ENZYMES graphs) under three devices:\n");
    let (t2080, _) = run_under("RTX 2080Ti (paper)", CostModel::rtx2080ti());
    let (ta100, _) = run_under("A100", CostModel::a100());
    let zero_launch = CostModel::builder()
        .launch_overhead(0.5e-6)
        .kernel_overhead(0.2e-6)
        .build();
    let (tzl, _) = run_under("2080Ti, 0.5us launch", zero_launch);

    println!();
    println!(
        "A100's ~2.5x bandwidth buys only {:.0}%; cheap launches buy {:.0}%. Neither",
        (1.0 - ta100 / t2080) * 100.0,
        (1.0 - tzl / t2080) * 100.0
    );
    println!("moves the needle: the batch is host-bound (framework dispatch + autograd");
    println!("engine), and the faster the device, the *lower* its utilization — the");
    println!("paper's Section IV-D finding is hardware-robust.");
}
