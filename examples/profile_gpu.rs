//! GPU-resource profiling: peak memory and compute utilization of GAT
//! across batch sizes — the per-model view behind the paper's Figs. 4–5.
//!
//! ```sh
//! cargo run --release --example profile_gpu
//! # with trace artifacts (Chrome trace + per-epoch JSONL metrics):
//! cargo run --release --example profile_gpu -- out/profile_gpu
//! ```

use gnn_datasets::{stratified_kfold, TudSpec};
use gnn_models::adapt::{RglLoader, RustygLoader};
use gnn_models::{build, ModelKind};
use gnn_train::{run_graph_fold, GraphTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Optional first argument: a directory to write trace.json +
    // metrics.jsonl into (see the gnn-obs crate).
    let trace_dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    let collector = trace_dir
        .is_some()
        .then(|| gnn_obs::install(gnn_obs::Collector::new()));

    let ds = TudSpec::enzymes().scaled(0.3).generate(3);
    let folds = stratified_kfold(&ds.labels(), 10, 3);
    let fold = &folds[0];

    println!(
        "GAT on {} — memory & utilization vs batch size\n",
        ds.stats().name
    );
    println!("framework  batch   peak mem   gpu util   epoch");
    for &batch_size in &[16usize, 32, 64, 128] {
        for fw in ["PyG", "DGL"] {
            let cfg = GraphTaskConfig {
                batch_size,
                init_lr: 1e-3,
                patience: 1000,
                decay_factor: 0.5,
                min_lr: 1e-9,
                max_epochs: 2,
                seed: 3,
                shuffle: true,
            };
            let mut rng = StdRng::seed_from_u64(9);
            let out = if fw == "PyG" {
                let model = build::graph_model_rustyg(
                    ModelKind::Gat,
                    ds.feature_dim,
                    ds.num_classes,
                    &mut rng,
                );
                run_graph_fold(&model, &RustygLoader::new(&ds), fold, &cfg)
            } else {
                let model = build::graph_model_rgl(
                    ModelKind::Gat,
                    ds.feature_dim,
                    ds.num_classes,
                    &mut rng,
                );
                run_graph_fold(&model, &RglLoader::new(&ds), fold, &cfg)
            };
            println!(
                "{fw:<10} {batch_size:<7} {:>7.1}MB   {:>6.1}%   {:>7.1}ms",
                out.report.peak_memory as f64 / 1e6,
                out.report.utilization() * 100.0,
                out.epoch_time * 1e3
            );
        }
    }
    if let (Some(handle), Some(dir)) = (collector, trace_dir) {
        let trace = gnn_obs::finish(handle);
        match trace.save(&dir) {
            Ok((t, m)) => println!("\nwrote {} and {}", t.display(), m.display()),
            Err(e) => eprintln!("error: writing trace artifacts to {}: {e}", dir.display()),
        }
    }
    println!();
    println!("Observations reproduced: memory grows with batch size, utilization");
    println!("stays low (data loading starves the device), and the DGL-like");
    println!("framework uses more memory at equal batch size (paper Section IV-D).");
}
