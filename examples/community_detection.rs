//! Community detection on a stochastic block model — a structure-dominant
//! task where the node features are (almost) uninformative, so success
//! demonstrates that the frameworks' message passing really aggregates
//! neighbourhood information.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use gnn_datasets::SbmSpec;
use gnn_models::{build, ModelKind};
use gnn_train::{run_node_task, NodeTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = SbmSpec::cluster().scaled(0.6).generate(11);
    println!("dataset: {}", ds.stats());
    println!("(features carry only a weak 20% seeding — structure is the signal)\n");

    let cfg = NodeTaskConfig {
        max_epochs: 80,
        lr: 0.01,
    };
    println!("{:<10} {:>9} {:>10}", "model", "test acc", "epoch");
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
        let mut rng = StdRng::seed_from_u64(2);
        let model = build::node_model_rustyg(kind, ds.features.cols(), ds.num_classes, &mut rng);
        let batch = rustyg::loader::full_graph_batch(&ds);
        let out = run_node_task(&model, &batch, &ds, &cfg);
        println!(
            "{:<10} {:>8.1}% {:>8.2}ms",
            kind.label(),
            out.test_acc,
            out.epoch_time * 1e3
        );
    }
    println!();
    println!(
        "Chance is {:.1}%; a feature-only classifier stays near it, while",
        100.0 / ds.num_classes as f64
    );
    println!("message passing recovers the communities from the topology.");
}
