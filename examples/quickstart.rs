//! Quickstart: train GCN on a Cora-scale citation graph under both
//! frameworks and compare accuracy and simulated training time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gnn_datasets::CitationSpec;
use gnn_models::{build, node_hparams, ModelKind};
use gnn_train::{run_node_task, NodeTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 20%-scale Cora stand-in: same feature/class dims, smaller graph.
    let ds = CitationSpec::cora().scaled(0.2).generate(42);
    println!("dataset: {}", ds.stats());

    let cfg = NodeTaskConfig {
        max_epochs: 60,
        lr: node_hparams(ModelKind::Gcn).lr,
    };

    // --- PyG-like framework -------------------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let model =
        build::node_model_rustyg(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rustyg::loader::full_graph_batch(&ds);
    let pyg = run_node_task(&model, &batch, &ds, &cfg);

    // --- DGL-like framework -------------------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let model = build::node_model_rgl(ModelKind::Gcn, ds.features.cols(), ds.num_classes, &mut rng);
    let batch = rgl::loader::full_graph_batch(&ds);
    let dgl = run_node_task(&model, &batch, &ds, &cfg);

    println!();
    println!("framework  epoch        total      test acc   gpu util");
    for (name, out) in [("PyG", &pyg), ("DGL", &dgl)] {
        println!(
            "{name:<10} {:>8.4}s  {:>8.2}s   {:>6.1}%   {:>6.1}%",
            out.epoch_time,
            out.total_time,
            out.test_acc,
            out.report.utilization() * 100.0
        );
    }
    println!();
    println!(
        "PyG is {:.2}x faster per epoch; accuracies are statistically similar —",
        dgl.epoch_time / pyg.epoch_time
    );
    println!("the paper's headline result (Sections IV-A and V).");
}
