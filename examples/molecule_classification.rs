//! Graph classification on ENZYMES-like molecular graphs with the paper's
//! Section IV-B protocol: stratified 10-fold cross-validation, Adam with
//! plateau decay, mean readout + MLP classifier.
//!
//! ```sh
//! cargo run --release --example molecule_classification
//! ```

use gnn_datasets::{stratified_kfold, TudSpec};
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, graph_hparams, ModelKind};
use gnn_train::{mean_std, run_graph_fold, GraphTaskConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = TudSpec::enzymes().scaled(0.3).generate(7);
    println!("dataset: {}", ds.stats());
    let folds = stratified_kfold(&ds.labels(), 10, 7);
    let loader = RustygLoader::new(&ds);

    let model_kind = ModelKind::Gin; // strongest isotropic model in Table V
    let hp = graph_hparams(model_kind);
    let mut cfg = GraphTaskConfig::from_hparams(&hp, 15, 7);
    cfg.batch_size = 32;

    println!(
        "model: {} | layers {} | hidden {} | init lr {} | plateau({}, x{})\n",
        model_kind.label(),
        hp.layers,
        hp.hidden,
        hp.init_lr,
        hp.patience,
        hp.decay_factor,
    );

    let mut accs = Vec::new();
    for (i, fold) in folds.iter().take(3).enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let model = build::graph_model_rustyg(model_kind, ds.feature_dim, ds.num_classes, &mut rng);
        let out = run_graph_fold(&model, &loader, fold, &cfg);
        println!(
            "fold {i}: test acc {:>5.1}%  ({} epochs, {:.1} ms/epoch simulated)",
            out.test_acc,
            out.epochs,
            out.epoch_time * 1e3
        );
        accs.push(out.test_acc);
    }
    let summary = mean_std(&accs);
    println!("\ncross-validated accuracy: {summary} (chance = 16.7%)");
}
