//! Framework face-off: the same GatedGCN model trained on the same batches
//! under both frameworks, with the full epoch-time breakdown — a miniature
//! of the paper's Figs. 1–2 plus its sharpest finding, the GatedGCN gap.
//!
//! ```sh
//! cargo run --release --example framework_faceoff
//! ```

use gnn_core::runner::GraphDs;
use gnn_core::{report, runner, RunConfig};
use gnn_models::{FrameworkKind, ModelKind};

fn main() {
    let mut cfg = RunConfig::quick().with_scale(0.2);
    cfg.batch_sizes = [32, 64, 128];
    cfg.graph_epochs = 2;

    println!("Profiling all models on ENZYMES (scale 0.2)...\n");
    let rows = runner::profile_sweep(&cfg, GraphDs::Enzymes);
    print!("{}", report::breakdown_report(&rows));

    // Zoom in on the paper's sharpest finding: GatedGCN under DGL.
    let gated = |fw: FrameworkKind| {
        rows.iter()
            .find(|r| r.model == ModelKind::GatedGcn && r.framework == fw && r.batch_size == 64)
            .expect("profiled row")
    };
    let pyg = gated(FrameworkKind::RustyG);
    let dgl = gated(FrameworkKind::Rgl);
    println!();
    println!(
        "GatedGCN @ batch 64: DGL epoch = {:.1} ms vs PyG {:.1} ms ({:.2}x) —",
        dgl.epoch_time() * 1e3,
        pyg.epoch_time() * 1e3,
        dgl.epoch_time() / pyg.epoch_time()
    );
    println!("DGL updates an explicit edge-feature tensor through a fully connected");
    println!("layer every layer (paper Section IV-A, observation 3).");
    println!(
        "Peak memory: DGL {:.1} MB vs PyG {:.1} MB.",
        dgl.peak_memory as f64 / 1e6,
        pyg.peak_memory as f64 / 1e6
    );
}
