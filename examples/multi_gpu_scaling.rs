//! Multi-GPU scaling of GCN on MNIST superpixels with simulated
//! `DataParallel` training — the paper's Fig. 6 narrative in miniature:
//! modest gains up to 4 GPUs, nothing (or a regression) at 8, because host
//! data loading never parallelizes.
//!
//! ```sh
//! cargo run --release --example multi_gpu_scaling
//! ```

use gnn_datasets::SuperpixelSpec;
use gnn_models::adapt::RustygLoader;
use gnn_models::{build, ModelKind};
use gnn_train::{data_parallel_epoch_time, MultiGpuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = SuperpixelSpec::mnist().scaled(0.01).generate(5);
    println!("dataset: {}\n", ds.stats());

    let mut rng = StdRng::seed_from_u64(11);
    let model = build::graph_model_rustyg(ModelKind::Gcn, ds.feature_dim, ds.num_classes, &mut rng);
    let loader = RustygLoader::new(&ds);

    println!("GCN / PyG-like framework, batch 256:");
    println!("gpus   epoch time    speedup");
    let mut baseline = None;
    for n_gpus in [1usize, 2, 4, 8] {
        let t = data_parallel_epoch_time(
            &model,
            &loader,
            &MultiGpuConfig {
                n_gpus,
                batch_size: 256,
                epoch_samples: ds.samples.len(),
            },
        );
        let base = *baseline.get_or_insert(t);
        println!("{n_gpus:<6} {:>8.1} ms    {:>5.2}x", t * 1e3, base / t);
    }
    println!();
    println!("Compute shrinks ~1/N but serialized data loading and PCIe parameter");
    println!("broadcast/reduction put a hard floor under the epoch time — adding");
    println!("the 5th..8th GPU buys nothing (paper Section IV-E).");
}
